"""The concurrent query front end.

:class:`QueryService` owns a database handle, a plan cache, and a small
worker pool. Statements are submitted to a bounded admission queue;
when the queue is full the service rejects immediately
(:class:`~repro.errors.AdmissionError`) instead of building an unbounded
backlog — callers see backpressure, not latency collapse.

Execution notes for the concurrent path:

* plans are cached, operator trees are not — a fresh tree is built per
  execution (operators carry per-run state such as probe caches), while
  the expression kernels inside it come from the compile memo the cache
  warmed;
* parameter bindings live in a thread-local scope
  (:mod:`repro.expr.bindings`), so two workers can run the same cached
  plan with different bindings simultaneously;
* per-query I/O counters are meaningless under concurrency, so the
  service never calls ``database.reset_io`` — the buffer pool stays
  warm and shared, like a server's.

Metrics: every completed query records its wall-clock latency; $p50/p95
and cache hit rates are available from :meth:`QueryService.stats` and
the ``service.*`` instrument counters.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api import QueryResult, execute
from repro.core.instrument import count
from repro.cost.model import CostModel
from repro.errors import AdmissionError, ServiceError
from repro.optimizer import OptimizerConfig
from repro.service.cache import PlanCache, config_fingerprint
from repro.storage import Database

_SHUTDOWN = object()


@dataclass
class ServiceStats:
    """A point-in-time summary of service behaviour."""

    queries: int
    rejected: int
    p50_ms: float
    p95_ms: float
    cache: Dict[str, int] = field(default_factory=dict)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


class QueryService:
    """Serve SQL statements concurrently through a parameterized plan
    cache.

    Typical use::

        service = QueryService(db, workers=4, queue_depth=64)
        try:
            future = service.submit("select ... where k = 42")
            result = future.result()
        finally:
            service.close()

    ``query()`` is the synchronous convenience wrapper. Each call may
    override the optimizer config; a config change is a different cache
    key (and stale entries are swept on the next version change).
    """

    LATENCY_WINDOW = 4096

    def __init__(
        self,
        database: Database,
        config: Optional[OptimizerConfig] = None,
        cost_model: Optional[CostModel] = None,
        workers: int = 4,
        queue_depth: int = 64,
        cache_size: int = 128,
        mode: Optional[str] = None,
    ):
        if workers < 1:
            raise ServiceError("need at least one worker")
        self.database = database
        self.config = config or OptimizerConfig()
        self.cost_model = cost_model or CostModel()
        self.cache = PlanCache(cache_size)
        self.mode = mode
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._closed = False
        self._lock = threading.Lock()
        self._latencies_ms: List[float] = []
        self._queries = 0
        self._rejected = 0
        self._last_versions = (
            database.catalog.version,
            database.catalog.stats_version,
        )
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-svc-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        sql: str,
        parameters: Optional[Dict[str, Any]] = None,
        config: Optional[OptimizerConfig] = None,
    ) -> "Future[QueryResult]":
        """Enqueue a statement; returns a future for its result.

        Raises :class:`AdmissionError` when the admission queue is at
        depth — the backpressure contract: callers retry or shed load.
        """
        if self._closed:
            raise ServiceError("service is closed")
        future: "Future[QueryResult]" = Future()
        try:
            self._queue.put_nowait((sql, parameters, config, future))
        except queue.Full:
            with self._lock:
                self._rejected += 1
            count("service.rejected")
            raise AdmissionError(
                f"admission queue full ({self._queue.maxsize} deep); "
                "retry later"
            ) from None
        return future

    def query(
        self,
        sql: str,
        parameters: Optional[Dict[str, Any]] = None,
        config: Optional[OptimizerConfig] = None,
    ) -> QueryResult:
        """Submit and wait."""
        return self.submit(sql, parameters, config).result()

    def explain(
        self,
        sql: str,
        parameters: Optional[Dict[str, Any]] = None,
        config: Optional[OptimizerConfig] = None,
    ) -> str:
        """Plan (through the cache) without executing.

        The rendering includes the cache verdict and current service
        counters, so EXPLAIN output answers "would this replan?".
        """
        plan, _bindings, status = self._plan(sql, parameters, config)
        stats = self.stats()
        lines = [
            plan.explain(show_cost=True),
            f"plan cache: {status} "
            f"(hits={stats.cache['hits']} misses={stats.cache['misses']} "
            f"invalidations={stats.cache['invalidations']})",
            f"service: {stats.queries} queries, "
            f"p50={stats.p50_ms:.2f}ms p95={stats.p95_ms:.2f}ms",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _plan(self, sql, parameters, config):
        catalog = self.database.catalog
        versions = (catalog.version, catalog.stats_version)
        if versions != self._last_versions:
            # DDL or a stats refresh happened: old entries can never be
            # looked up again (versions are in the key); sweep them so
            # they are counted and freed.
            self.cache.invalidate_stale(*versions)
            self._last_versions = versions
        return self.cache.plan_for(
            self.database,
            sql,
            parameters=parameters,
            config=config or self.config,
            cost_model=self.cost_model,
        )

    def _run(self, sql, parameters, config) -> QueryResult:
        started = time.perf_counter()
        plan, bindings, status = self._plan(sql, parameters, config)
        result = execute(
            self.database,
            plan,
            parameters=bindings,
            mode=self.mode,
            reset_io=False,
            cache_status=status,
        )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with self._lock:
            self._queries += 1
            self._latencies_ms.append(elapsed_ms)
            if len(self._latencies_ms) > self.LATENCY_WINDOW:
                del self._latencies_ms[: -self.LATENCY_WINDOW]
        count("service.queries")
        return result

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._queue.task_done()
                return
            sql, parameters, config, future = item
            if not future.set_running_or_notify_cancel():
                self._queue.task_done()
                continue
            try:
                future.set_result(self._run(sql, parameters, config))
            except BaseException as error:  # deliver, don't kill worker
                future.set_exception(error)
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def reconfigure(self, config: OptimizerConfig) -> int:
        """Change the default optimizer config; drops now-mismatched
        cache entries. Returns how many entries were invalidated."""
        self.config = config
        return self.cache.invalidate_config(config_fingerprint(config))

    def stats(self) -> ServiceStats:
        with self._lock:
            latencies = sorted(self._latencies_ms)
            queries = self._queries
            rejected = self._rejected
        return ServiceStats(
            queries=queries,
            rejected=rejected,
            p50_ms=_percentile(latencies, 0.50),
            p95_ms=_percentile(latencies, 0.95),
            cache=self.cache.stats(),
        )

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and shut the workers down."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
