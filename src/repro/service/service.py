"""The concurrent query front end.

:class:`QueryService` owns a database handle, a plan cache, and a small
worker pool. Statements are submitted to a bounded admission queue;
when the queue is full the service rejects immediately
(:class:`~repro.errors.AdmissionError`) instead of building an unbounded
backlog — callers see backpressure, not latency collapse.

The resilience layer (the contract every future resolves under):

* **Deadlines** — ``submit(..., timeout=...)`` (or the service-wide
  ``default_timeout``) arms a :class:`~repro.executor.context.CancelToken`
  at admission. The deadline covers queue wait, planning, and
  execution; executor operators poll the token at batch boundaries, so
  a runaway scan/sort/join raises
  :class:`~repro.errors.QueryTimeout` from inside its pull loop.
* **Cancellation** — :meth:`QueryService.cancel` cancels an unstarted
  future outright and trips the token of a running one
  (:class:`~repro.errors.QueryCancelled` is cooperative, at the next
  checkpoint).
* **Graceful shutdown** — :meth:`QueryService.close` stops admissions
  under the lock (no submit can slip in behind the shutdown
  sentinels), lets in-flight queries finish, and fails every
  still-queued future with :class:`~repro.errors.ServiceClosed`; no
  caller is left hanging on ``.result()``.
* **Single-flight planning** — concurrent misses on one cache key plan
  once (see :class:`repro.service.cache.PlanCache`).

Execution notes for the concurrent path:

* plans are cached, operator trees are not — a fresh tree is built per
  execution (operators carry per-run state such as probe caches), while
  the expression kernels inside it come from the compile memo the cache
  warmed;
* parameter bindings live in a thread-local scope
  (:mod:`repro.expr.bindings`), so two workers can run the same cached
  plan with different bindings simultaneously;
* per-query I/O counters are meaningless under concurrency, so the
  service never calls ``database.reset_io`` — the buffer pool stays
  warm and shared, like a server's.

Metrics: every completed query records its wall-clock latency; p50/p95,
cache hit rates, timeout/cancellation totals, and the in-flight gauge
are available from :meth:`QueryService.stats` and the ``service.*``
instrument counters. Queries slower than ``slow_query_ms`` land in a
bounded slow-query log (:meth:`QueryService.slow_queries`).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, NamedTuple, Optional

from repro.api import QueryResult, execute
from repro.core.instrument import count
from repro.cost.model import CostModel
from repro.errors import (
    AdmissionError,
    QueryCancelled,
    QueryTimeout,
    ServiceClosed,
    ServiceError,
)
from repro.executor.context import CancelToken
from repro.optimizer import OptimizerConfig
from repro.service.cache import PlanCache, config_fingerprint
from repro.storage import Database

_SHUTDOWN = object()


class _Work(NamedTuple):
    """One admitted statement riding the queue to a worker."""

    sql: str
    parameters: Optional[Dict[str, Any]]
    config: Optional[OptimizerConfig]
    future: "Future[QueryResult]"
    token: CancelToken


class SlowQuery(NamedTuple):
    """One slow-query log record."""

    sql: str
    elapsed_ms: float
    cache_status: str


class PlanRegression(NamedTuple):
    """One plan-regression log record (workload feedback gate).

    ``action`` says how the gate resolved it; the only admitting value
    today is ``"incumbent-retained"`` — the challenger plan was
    rejected and the previous plan re-pinned.
    """

    statement: str
    incumbent_fingerprint: str
    challenger_fingerprint: str
    incumbent_ms: float
    challenger_ms: float
    incumbent_sim_io_ms: float
    challenger_sim_io_ms: float
    action: str


@dataclass
class ServiceStats:
    """A point-in-time summary of service behaviour."""

    queries: int
    rejected: int
    timeouts: int
    cancelled: int
    inflight: int
    slow: int
    p50_ms: float
    p95_ms: float
    cache: Dict[str, int] = field(default_factory=dict)
    plan_regressions: int = 0


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


class QueryService:
    """Serve SQL statements concurrently through a parameterized plan
    cache.

    Typical use::

        service = QueryService(db, workers=4, queue_depth=64)
        try:
            future = service.submit("select ... where k = 42", timeout=1.0)
            result = future.result()
        finally:
            service.close()

    ``query()`` is the synchronous convenience wrapper. Each call may
    override the optimizer config; a config change is a different cache
    key (and stale entries are swept on the next version change).

    ``default_timeout`` (seconds) applies to every submit that does not
    pass its own; ``timeout=None`` with no default means unbounded.
    ``slow_query_ms`` sets the slow-query-log threshold.
    """

    LATENCY_WINDOW = 4096

    def __init__(
        self,
        database: Database,
        config: Optional[OptimizerConfig] = None,
        cost_model: Optional[CostModel] = None,
        workers: int = 4,
        queue_depth: int = 64,
        cache_size: int = 128,
        mode: Optional[str] = None,
        default_timeout: Optional[float] = None,
        slow_query_ms: float = 500.0,
        slow_log_size: int = 64,
        feedback_hook: Optional[Callable[[str, QueryResult], None]] = None,
        collect_observations: bool = False,
    ):
        if workers < 1:
            raise ServiceError("need at least one worker")
        if default_timeout is not None and default_timeout <= 0:
            raise ServiceError("default_timeout must be positive")
        self.database = database
        self.config = config or OptimizerConfig()
        self.cost_model = cost_model or CostModel()
        self.cache = PlanCache(cache_size)
        self.mode = mode
        self.default_timeout = default_timeout
        self.slow_query_ms = slow_query_ms
        # Workload feedback: with a hook (or collect_observations),
        # every execution also joins plan estimates against actual
        # per-operator rows; the hook receives (sql, result) after the
        # result is recorded. Hook errors are counted, never fatal.
        self.feedback_hook = feedback_hook
        self.collect_observations = collect_observations
        self._feedback_errors = 0
        self._regressions: List[PlanRegression] = []
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._closed = False
        self._lock = threading.Lock()
        self._latencies_ms: List[float] = []
        self._queries = 0
        self._rejected = 0
        self._timeouts = 0
        self._cancelled = 0
        self._inflight = 0
        self._slow_log: Deque[SlowQuery] = deque(maxlen=slow_log_size)
        self._tokens: Dict["Future[QueryResult]", CancelToken] = {}
        self._last_versions = (
            database.catalog.version,
            database.catalog.stats_version,
        )
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-svc-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        sql: str,
        parameters: Optional[Dict[str, Any]] = None,
        config: Optional[OptimizerConfig] = None,
        timeout: Optional[float] = None,
    ) -> "Future[QueryResult]":
        """Enqueue a statement; returns a future for its result.

        ``timeout`` (seconds, overriding ``default_timeout``) starts
        the deadline clock *now*: time spent queued counts, so a
        statement stuck behind a backlog times out instead of running
        long after its caller gave up.

        Raises :class:`AdmissionError` when the admission queue is at
        depth — the backpressure contract: callers retry or shed load.
        Raises :class:`ServiceClosed` after :meth:`close`.
        """
        if timeout is None:
            timeout = self.default_timeout
        future: "Future[QueryResult]" = Future()
        token = CancelToken(timeout)
        # The closed check and the enqueue are one atomic step: close()
        # flips the flag under this lock before draining, so no submit
        # can land behind the shutdown sentinels and strand its future.
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            try:
                self._queue.put_nowait(
                    _Work(sql, parameters, config, future, token)
                )
            except queue.Full:
                self._rejected += 1
                count("service.rejected")
                raise AdmissionError(
                    f"admission queue full ({self._queue.maxsize} deep); "
                    "retry later"
                ) from None
            self._tokens[future] = token
        return future

    def query(
        self,
        sql: str,
        parameters: Optional[Dict[str, Any]] = None,
        config: Optional[OptimizerConfig] = None,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Submit and wait."""
        return self.submit(sql, parameters, config, timeout=timeout).result()

    def cancel(self, future: "Future[QueryResult]") -> bool:
        """Cancel a submitted query.

        An unstarted future is cancelled outright (it never runs); a
        running one gets its token tripped and raises
        :class:`~repro.errors.QueryCancelled` at the executor's next
        checkpoint. Returns False when the future already finished (or
        was never submitted here).
        """
        if future.cancel():
            return True
        with self._lock:
            token = self._tokens.get(future)
        if token is None:
            return False
        token.cancel()
        return True

    def explain(
        self,
        sql: str,
        parameters: Optional[Dict[str, Any]] = None,
        config: Optional[OptimizerConfig] = None,
    ) -> str:
        """Plan (through the cache) without executing.

        The rendering includes the cache verdict and current service
        counters, so EXPLAIN output answers "would this replan?" and
        "is the service healthy?" in one place.
        """
        plan, _bindings, status = self._plan(sql, parameters, config)
        stats = self.stats()
        lines = [
            plan.explain(show_cost=True),
            f"plan cache: {status} "
            f"(hits={stats.cache['hits']} misses={stats.cache['misses']} "
            f"invalidations={stats.cache['invalidations']} "
            f"single_flight_waits={stats.cache['single_flight_waits']})",
            f"service: {stats.queries} queries, "
            f"p50={stats.p50_ms:.2f}ms p95={stats.p95_ms:.2f}ms",
            f"resilience: inflight={stats.inflight} "
            f"timeouts={stats.timeouts} cancelled={stats.cancelled} "
            f"rejected={stats.rejected} slow={stats.slow}",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _plan(self, sql, parameters, config):
        catalog = self.database.catalog
        versions = (catalog.version, catalog.stats_version)
        # Claim the sweep under the lock: exactly one worker observing
        # a DDL/analyze bump performs it; unsynchronized check-and-set
        # here used to let racing workers double-sweep or skip it.
        with self._lock:
            sweep = versions != self._last_versions
            if sweep:
                self._last_versions = versions
        if sweep:
            # DDL or a stats refresh happened: old entries can never be
            # looked up again (identity+versions are in the key); sweep
            # them so they are counted and freed.
            self.cache.invalidate_stale(catalog.identity, *versions)
        return self.cache.plan_for(
            self.database,
            sql,
            parameters=parameters,
            config=config or self.config,
            cost_model=self.cost_model,
        )

    def _run(self, sql, parameters, config, token) -> QueryResult:
        started = time.perf_counter()
        with self._lock:
            self._inflight += 1
        observe = (
            self.feedback_hook is not None or self.collect_observations
        )
        try:
            plan, bindings, status = self._plan(sql, parameters, config)
            # Planning itself is not checkpointed; charge it against
            # the deadline before starting the (checkpointed) executor.
            token.check()
            result = execute(
                self.database,
                plan,
                parameters=bindings,
                mode=self.mode,
                reset_io=False,
                cache_status=status,
                cancel_token=token,
                observe=observe,
            )
        finally:
            with self._lock:
                self._inflight -= 1
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with self._lock:
            self._queries += 1
            self._latencies_ms.append(elapsed_ms)
            if len(self._latencies_ms) > self.LATENCY_WINDOW:
                del self._latencies_ms[: -self.LATENCY_WINDOW]
            if elapsed_ms >= self.slow_query_ms:
                self._slow_log.append(SlowQuery(sql, elapsed_ms, status))
                count("service.slow_queries")
        count("service.queries")
        if self.feedback_hook is not None:
            try:
                self.feedback_hook(sql, result)
            except Exception:  # the loop must never kill queries
                with self._lock:
                    self._feedback_errors += 1
                count("service.feedback_errors")
        return result

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._queue.task_done()
                return
            future = item.future
            if not future.set_running_or_notify_cancel():
                self._forget(future)
                self._queue.task_done()
                continue
            try:
                # A query that out-waited its deadline in the queue
                # fails here without touching the executor.
                item.token.check()
                result = self._run(
                    item.sql, item.parameters, item.config, item.token
                )
            except BaseException as error:  # deliver, don't kill worker
                if isinstance(error, QueryTimeout):
                    with self._lock:
                        self._timeouts += 1
                    count("service.timeouts")
                elif isinstance(error, QueryCancelled):
                    with self._lock:
                        self._cancelled += 1
                    count("service.cancelled")
                future.set_exception(error)
            else:
                future.set_result(result)
            finally:
                self._forget(future)
                self._queue.task_done()

    def _forget(self, future: "Future[QueryResult]") -> None:
        with self._lock:
            self._tokens.pop(future, None)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def reconfigure(self, config: OptimizerConfig) -> int:
        """Change the default optimizer config; drops now-mismatched
        cache entries. Returns how many entries were invalidated."""
        self.config = config
        return self.cache.invalidate_config(config_fingerprint(config))

    # ------------------------------------------------------------------
    # Workload feedback
    # ------------------------------------------------------------------

    def pin_plan(
        self,
        sql: str,
        plan,
        parameters: Optional[Dict[str, Any]] = None,
        config: Optional[OptimizerConfig] = None,
    ) -> None:
        """Re-key an incumbent plan under the catalog's current versions.

        The regression gate calls this when a feedback-triggered replan
        made a statement worse: the incumbent goes back into the cache
        so subsequent executions of the statement class hit it.
        """
        self.cache.pin(
            self.database,
            sql,
            plan,
            parameters=parameters,
            config=config or self.config,
        )

    def note_plan_regression(self, record: PlanRegression) -> None:
        """Append one gate decision to the regression log."""
        with self._lock:
            self._regressions.append(record)
        count("service.plan_regressions")

    def plan_regressions(self) -> List[PlanRegression]:
        """The plan-regression log, oldest first."""
        with self._lock:
            return list(self._regressions)

    def feedback_errors(self) -> int:
        with self._lock:
            return self._feedback_errors

    def stats(self) -> ServiceStats:
        with self._lock:
            latencies = sorted(self._latencies_ms)
            queries = self._queries
            rejected = self._rejected
            timeouts = self._timeouts
            cancelled = self._cancelled
            inflight = self._inflight
            slow = len(self._slow_log)
            regressions = len(self._regressions)
        return ServiceStats(
            queries=queries,
            rejected=rejected,
            timeouts=timeouts,
            cancelled=cancelled,
            inflight=inflight,
            slow=slow,
            p50_ms=_percentile(latencies, 0.50),
            p95_ms=_percentile(latencies, 0.95),
            cache=self.cache.stats(),
            plan_regressions=regressions,
        )

    def slow_queries(self) -> List[SlowQuery]:
        """The slow-query log, oldest first (bounded ring)."""
        with self._lock:
            return list(self._slow_log)

    def close(self, wait: bool = True, cancel_inflight: bool = False) -> None:
        """Stop accepting work and shut the workers down gracefully.

        In-flight queries run to completion (or, with
        ``cancel_inflight=True``, are cooperatively cancelled); every
        statement still waiting in the admission queue has its future
        failed with :class:`~repro.errors.ServiceClosed`. With
        ``wait=True`` the call returns only after every worker exited.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
        if not already_closed:
            # Admissions are off (flag flipped under the lock submit
            # holds), so the queue only drains from here on. Fail the
            # backlog, then lay down one sentinel per worker.
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:  # pragma: no cover - re-entrant close
                    self._queue.task_done()
                    continue
                if item.future.set_running_or_notify_cancel():
                    item.future.set_exception(
                        ServiceClosed(
                            "service shut down before this query started"
                        )
                    )
                self._forget(item.future)
                self._queue.task_done()
            if cancel_inflight:
                with self._lock:
                    tokens = list(self._tokens.values())
                for token in tokens:
                    token.cancel("service shutting down")
            for _ in self._workers:
                self._queue.put(_SHUTDOWN)
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
