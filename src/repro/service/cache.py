"""The parameterized plan cache.

Entries are keyed on everything a finalized plan depends on:

* the normalized statement fingerprint (see
  :mod:`repro.service.parameterize`),
* the parameter-type signature,
* the catalog *identity* (a process-unique token minted per
  :class:`repro.catalog.Catalog` — version counters only order changes
  within one catalog, so without the identity two databases whose
  counters coincide would share plans and silently return each other's
  columns),
* the catalog DDL version and statistics version
  (:class:`repro.catalog.Catalog` ticks both),
* the :class:`~repro.optimizer.config.OptimizerConfig` fingerprint.

Versions-in-the-key makes staleness structural: after a DDL change or
stats refresh the old entries simply cannot be looked up again. The
explicit :meth:`PlanCache.invalidate_stale` hook additionally *removes*
them (and counts them as invalidations) so the LRU is not clogged by
unreachable plans; the service calls it whenever it observes a version
or config change. The sweep is scoped to one catalog identity, so a
cache shared across databases never drops another database's plans.

Planning is **single-flight**: concurrent misses on one key elect a
single builder; the others park on a per-key barrier and reuse the
built entry (counted in ``single_flight_waits`` and reported as hits —
they did not plan). Without this, N workers racing one cold statement
would plan it N times.

A cached entry stores the finalized physical plan and a warm operator
tree. The warm tree is built once at insert, which drives every one of
the plan's expressions through :func:`repro.expr.compile` — the cache
therefore pins strong references to the compiled kernels, and later
executions (which rebuild a fresh operator tree per run for thread
safety) hit the compile memo instead of recompiling. Re-binding costs
nothing: parameters resolve through the thread-local scope at
evaluation time, so the kernels are byte-for-byte the same closures for
every binding.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.instrument import count
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.plan import Plan


def config_fingerprint(config: OptimizerConfig) -> Tuple[Any, ...]:
    """A hashable identity for an optimizer configuration's behaviour."""
    fields = sorted(vars(config).items())
    return tuple((name, value) for name, value in fields)


@dataclass
class CachedPlan:
    """One plan-cache entry."""

    plan: Plan
    fingerprint: str
    type_signature: Tuple[str, ...]
    catalog_identity: int
    catalog_version: int
    stats_version: int
    config_key: Tuple[Any, ...]
    # Built once at insert to warm the expression-compile memo; holds
    # strong references to the compiled kernels. Executions build fresh
    # trees (operator instances carry per-run state), reusing the memo.
    warm_operator: Any = field(default=None, repr=False)
    hits: int = 0


CacheKey = Tuple[str, Tuple[str, ...], int, int, int, Tuple[Any, ...]]


class PlanCache:
    """Thread-safe LRU cache of finalized plans.

    Counters land in the ``service.cache`` instrument group:
    ``service.cache.hits`` / ``misses`` / ``evictions`` /
    ``invalidations`` / ``single_flight_waits``. The same numbers are
    kept exactly (merged across threads) on the instance for tests and
    ``stats()``. Every :meth:`plan_for` call lands exactly one hit or
    one miss — a single-flight waiter counts as a hit (it reused a plan
    it did not build), keeping the counters deterministic under races.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CachedPlan]" = OrderedDict()
        # Single-flight barriers: key -> Event set when the build ends
        # (successfully or not).
        self._building: Dict[CacheKey, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.single_flight_waits = 0

    @staticmethod
    def key_for(
        fingerprint: str,
        type_signature: Tuple[str, ...],
        catalog_identity: int,
        catalog_version: int,
        stats_version: int,
        config_key: Tuple[Any, ...],
    ) -> CacheKey:
        return (
            fingerprint,
            type_signature,
            catalog_identity,
            catalog_version,
            stats_version,
            config_key,
        )

    def get(self, key: CacheKey) -> Optional[CachedPlan]:
        with self._lock:
            entry = self._hit_locked(key)
            if entry is None:
                self.misses += 1
                count("service.cache.misses")
            return entry

    def _hit_locked(self, key: CacheKey) -> Optional[CachedPlan]:
        """LRU-touch and count a hit; None (uncounted) on absence."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.hits += 1
        count("service.cache.hits")
        return entry

    def put(self, key: CacheKey, entry: CachedPlan) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                count("service.cache.evictions")

    def invalidate_stale(
        self,
        catalog_identity: int,
        catalog_version: int,
        stats_version: int,
    ) -> int:
        """Drop *this catalog's* entries planned under older versions.

        Version-in-key already makes them unreachable; this hook frees
        them and counts the invalidation. Entries belonging to other
        catalog identities are untouched — one database's DDL must not
        sweep a co-tenant's plans. Returns the number dropped.
        """
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if entry.catalog_identity == catalog_identity
                and (
                    entry.catalog_version != catalog_version
                    or entry.stats_version != stats_version
                )
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            count("service.cache.invalidations", len(stale))
            return len(stale)

    def invalidate_config(self, config_key: Tuple[Any, ...]) -> int:
        """Drop entries planned under a different optimizer config."""
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if entry.config_key != config_key
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            count("service.cache.invalidations", len(stale))
            return len(stale)

    def clear(self) -> int:
        """Drop everything (counted as invalidations)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            count("service.cache.invalidations", dropped)
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "single_flight_waits": self.single_flight_waits,
            }

    # ------------------------------------------------------------------
    # The one-call front door (used by QueryService and api.run_query)
    # ------------------------------------------------------------------

    def plan_for(
        self,
        database,
        sql: str,
        parameters: Optional[Dict[str, Any]] = None,
        config: Optional[OptimizerConfig] = None,
        cost_model=None,
    ) -> Tuple[Plan, Dict[str, Any], str]:
        """Plan ``sql`` through the cache.

        Returns ``(plan, bindings, status)`` where ``bindings`` merges
        the auto-extracted literals with the caller's host variables and
        ``status`` is ``"hit"`` or ``"miss"``. The plan still contains
        its parameter markers; execute it inside a binding scope (the
        ``parameters=`` argument of :func:`repro.api.execute` does it).

        Concurrent misses on one key are single-flighted: one caller
        plans, the rest wait on the build barrier and return the cached
        entry as a hit.
        """
        from repro.optimizer import Optimizer
        from repro.service.parameterize import _type_name, parameterize

        config = config or OptimizerConfig()
        parameterized = parameterize(sql)
        bindings = dict(parameterized.bindings)
        if parameters:
            bindings.update(parameters)
        signature = parameterized.type_signature + tuple(
            f"{name}={_type_name(value)}"
            for name, value in sorted((parameters or {}).items())
        )
        catalog = database.catalog
        config_key = config_fingerprint(config)
        key = self.key_for(
            parameterized.fingerprint,
            signature,
            catalog.identity,
            catalog.version,
            catalog.stats_version,
            config_key,
        )
        while True:
            with self._lock:
                entry = self._hit_locked(key)
                if entry is not None:
                    return entry.plan, bindings, "hit"
                barrier = self._building.get(key)
                if barrier is None:
                    barrier = self._building[key] = threading.Event()
                    break  # we are the elected builder
                self.single_flight_waits += 1
            count("service.cache.single_flight_waits")
            barrier.wait()
            # Re-check: normally a hit now; if the builder failed (its
            # exception propagated to its caller) the loop elects a new
            # builder instead of failing every waiter.

        with self._lock:
            self.misses += 1
        count("service.cache.misses")
        try:
            from repro.executor.build import build_executor

            plan = Optimizer(database, config, cost_model).plan_sql(
                parameterized.text
            )
            entry = CachedPlan(
                plan=plan,
                fingerprint=parameterized.fingerprint,
                type_signature=signature,
                catalog_identity=catalog.identity,
                catalog_version=catalog.version,
                stats_version=catalog.stats_version,
                config_key=config_key,
                warm_operator=build_executor(plan, database),
            )
            self.put(key, entry)
        finally:
            with self._lock:
                self._building.pop(key, None)
            barrier.set()
        return plan, bindings, "miss"

    def pin(
        self,
        database,
        sql: str,
        plan: Plan,
        parameters: Optional[Dict[str, Any]] = None,
        config: Optional[OptimizerConfig] = None,
    ) -> CacheKey:
        """Install ``plan`` as the entry for ``sql`` under the catalog's
        *current* versions.

        This is the regression gate's keep-the-incumbent lever: after a
        stats bump invalidates a statement's entry and the re-optimized
        plan turns out worse, pinning re-keys the incumbent under the
        new ``stats_version`` so subsequent lookups hit it instead of
        re-planning against the corrected statistics. The plan must
        come from planning the same statement class (its parameter
        markers line up with the parameterized text by construction).
        """
        from repro.executor.build import build_executor
        from repro.service.parameterize import _type_name, parameterize

        config = config or OptimizerConfig()
        parameterized = parameterize(sql)
        signature = parameterized.type_signature + tuple(
            f"{name}={_type_name(value)}"
            for name, value in sorted((parameters or {}).items())
        )
        catalog = database.catalog
        config_key = config_fingerprint(config)
        key = self.key_for(
            parameterized.fingerprint,
            signature,
            catalog.identity,
            catalog.version,
            catalog.stats_version,
            config_key,
        )
        entry = CachedPlan(
            plan=plan,
            fingerprint=parameterized.fingerprint,
            type_signature=signature,
            catalog_identity=catalog.identity,
            catalog_version=catalog.version,
            stats_version=catalog.stats_version,
            config_key=config_key,
            warm_operator=build_executor(plan, database),
        )
        self.put(key, entry)
        return key
