"""The query service: auto-parameterization, plan caching, and a
concurrent front end.

This is the first subsystem that treats the engine as a *server*: SQL
statements arrive repeatedly with varying literals, and re-running the
parser and optimizer for each arrival wastes the work the paper's order
algebra already made value-independent. §4.1 is what makes that safe —
``col = constant`` enters Reduce Order as the structural FD
``{} -> {col}`` whether the constant is a literal or a host variable,
so the optimizer produces the *same* plan for ``seg = 3`` and
``seg = :p``. The service exploits this:

* :mod:`repro.service.parameterize` rewrites literal tokens into host
  variables plus a binding vector (conservative carve-outs for literals
  that change plan shape);
* :mod:`repro.service.cache` keys finalized plans on the normalized
  statement fingerprint, parameter-type signature, catalog *identity*,
  catalog and stats versions, and the optimizer-config fingerprint,
  with single-flight planning on concurrent misses;
* :mod:`repro.service.service` runs queries on a worker pool with a
  bounded admission queue, per-query deadlines and cooperative
  cancellation, graceful shutdown, a slow-query log, and per-query
  latency metrics.

Layering: ``service`` sits above ``api`` (it orchestrates planning and
execution); nothing below imports it.
"""

from repro.service.cache import CachedPlan, PlanCache, config_fingerprint
from repro.service.parameterize import ParameterizedQuery, parameterize
from repro.service.service import (
    PlanRegression,
    QueryService,
    ServiceStats,
    SlowQuery,
)

__all__ = [
    "CachedPlan",
    "PlanCache",
    "config_fingerprint",
    "ParameterizedQuery",
    "parameterize",
    "PlanRegression",
    "QueryService",
    "ServiceStats",
    "SlowQuery",
]
