"""Auto-parameterization: literals out, host variables in.

Works on the token stream, not the parse tree, so the warm path of the
plan cache never builds a QGM graph at all: tokenize, swap literal
tokens for ``:__pN`` markers, and the re-rendered statement *is* the
cache fingerprint. Two statements that differ only in literal spelling
("WHERE seg=3" vs "where  SEG = 7") normalize to the same fingerprint
and share one plan.

What gets parameterized:

* NUMBER and STRING literal tokens;
* ``date('...')`` constructs, collapsed into a single date-valued
  parameter (this is what varies across TPC-D replay workloads).

Conservative carve-outs — literals that change plan *shape* stay
inline:

* IN-list elements: selectivity scales with list arity, so two IN
  predicates of different lengths must not share a fingerprint (they
  cannot — the arity is in the token stream), and folding the list into
  parameters would defeat the compiler's hoisted-membership kernel.
  The carve-out applies to *value lists only*: ``IN (SELECT ...)`` is a
  subquery, not an arity-bearing list, and its interior literals
  parameterize like any other predicate constants — otherwise replay
  workloads that only vary subquery literals would never share plans.
* FETCH FIRST n: the row count steers the Top-N-vs-full-sort choice and
  LIMIT placement; it stays a plan property, not a binding.
* ORDER BY numbers: the grammar only admits numbers there as output
  ordinals (``order by 2 desc``), which are sort keys — pure plan
  shape.
* NULL keywords: ``col = NULL`` is never true and is analyzed
  differently from ``col = :p`` (no structural FD), so masking NULL as
  a parameter would change predicate analysis.

The §4.1 safety argument: a host variable "qualifies as a constant" for
order reasoning, so every plan decision the optimizer makes for the
parameterized statement — sargable index bounds included, since the
scan resolves parameter bounds at execution — is valid for all
bindings.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.parser.lexer import Token, TokenKind, tokenize


@dataclass(frozen=True)
class ParameterizedQuery:
    """A statement with its literals hoisted into bindings.

    ``text`` is the normalized, re-parseable SQL with ``:__pN`` markers;
    it doubles as the plan-cache fingerprint. ``bindings`` maps marker
    names to the extracted values; ``type_signature`` is the value types
    in marker order (part of the cache key).
    """

    text: str
    bindings: Dict[str, Any] = field(compare=False)
    type_signature: Tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        return self.text


def _type_name(value: Any) -> str:
    if value is None:
        return "null"
    return type(value).__name__


def _render(token: Token) -> str:
    if token.kind is TokenKind.STRING:
        escaped = token.text.replace("'", "''")
        return f"'{escaped}'"
    if token.kind is TokenKind.PARAM:
        return f":{token.text}"
    return token.text


def _number_value(text: str) -> Any:
    if "." in text:
        import decimal

        return decimal.Decimal(text)
    return int(text)


def parameterize(sql: str) -> ParameterizedQuery:
    """Extract literal constants from ``sql`` into a binding vector."""
    tokens = tokenize(sql)
    taken = {
        token.text for token in tokens if token.kind is TokenKind.PARAM
    }

    counter = 0

    def fresh_name() -> str:
        nonlocal counter
        while True:
            name = f"__p{counter}"
            counter += 1
            if name not in taken:
                return name

    out: List[Token] = []
    bindings: Dict[str, Any] = {}
    types: List[str] = []
    in_list_depth = 0  # paren depth inside an IN (...) list, 0 = outside
    in_order_by = False  # numbers are output ordinals here

    def emit_parameter(value: Any, at: Token) -> None:
        name = fresh_name()
        bindings[name] = value
        types.append(_type_name(value))
        out.append(Token(TokenKind.PARAM, name, at.line, at.column))

    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token.kind is TokenKind.EOF:
            break
        if in_list_depth:
            if token.kind is TokenKind.PUNCT and token.text == "(":
                in_list_depth += 1
            elif token.kind is TokenKind.PUNCT and token.text == ")":
                in_list_depth -= 1
            out.append(token)
            index += 1
            continue
        if (
            token.is_keyword("in")
            and tokens[index + 1].kind is TokenKind.PUNCT
            and tokens[index + 1].text == "("
            # IN (SELECT ...) is a subquery, not a value list: no
            # carve-out, its literals become parameters like any other.
            and not tokens[index + 2].is_keyword("select")
        ):
            in_list_depth = 1
            out.append(token)
            out.append(tokens[index + 1])
            index += 2
            continue
        if (
            token.kind is TokenKind.IDENT
            and token.text.lower() == "date"
            and index + 3 < len(tokens)
            and tokens[index + 1].kind is TokenKind.PUNCT
            and tokens[index + 1].text == "("
            and tokens[index + 2].kind is TokenKind.STRING
            and tokens[index + 3].kind is TokenKind.PUNCT
            and tokens[index + 3].text == ")"
        ):
            try:
                value = datetime.date.fromisoformat(tokens[index + 2].text)
            except ValueError:
                value = None
            if value is not None:
                emit_parameter(value, token)
                index += 4
                continue
        if token.kind is TokenKind.KEYWORD:
            if token.text == "order":
                in_order_by = True
            elif token.text in ("fetch", "union", "select"):
                in_order_by = False
        elif token.kind is TokenKind.PUNCT and token.text == ")":
            # Closing a derived table / parenthesized branch ends any
            # ORDER BY clause that was open inside it.
            in_order_by = False
        if token.kind is TokenKind.NUMBER:
            # FETCH FIRST n and ORDER BY ordinals stay literal: both
            # are plan shape, not predicate constants.
            if in_order_by or (out and out[-1].is_keyword("first")):
                out.append(token)
            else:
                emit_parameter(_number_value(token.text), token)
            index += 1
            continue
        if token.kind is TokenKind.STRING:
            emit_parameter(token.text, token)
            index += 1
            continue
        out.append(token)
        index += 1

    text = " ".join(_render(token) for token in out)
    return ParameterizedQuery(
        text=text, bindings=bindings, type_signature=tuple(types)
    )
