"""Heap files: unordered pages of records addressed by RID."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Tuple

from repro.errors import StorageError
from repro.storage.buffer import BufferPool


@dataclass(frozen=True)
class Rid:
    """Record identifier: page number + slot within the page."""

    page_no: int
    slot: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"rid({self.page_no},{self.slot})"


class HeapFile:
    """A paged bag of tuples.

    ``rows_per_page`` is derived from the schema's estimated row width by
    the owning :class:`~repro.storage.database.StoredTable`; the heap
    itself only needs the number.
    """

    def __init__(self, file_id: str, buffer_pool: BufferPool, rows_per_page: int):
        if rows_per_page < 1:
            raise StorageError("rows_per_page must be positive")
        self.file_id = file_id
        self.buffer_pool = buffer_pool
        self.rows_per_page = rows_per_page
        self._pages: List[List[Tuple[Any, ...]]] = []

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def row_count(self) -> int:
        return sum(len(page) for page in self._pages)

    def append(self, row: Tuple[Any, ...]) -> Rid:
        """Store one record, returning its RID. No I/O is charged: loading
        is setup, not measured query work."""
        if not self._pages or len(self._pages[-1]) >= self.rows_per_page:
            self._pages.append([])
        page_no = len(self._pages) - 1
        self._pages[page_no].append(row)
        return Rid(page_no, len(self._pages[page_no]) - 1)

    def fetch(self, rid: Rid) -> Tuple[Any, ...]:
        """Random-access one record by RID (charges one page access)."""
        try:
            page = self._pages[rid.page_no]
            row = page[rid.slot]
        except IndexError:
            raise StorageError(f"bad {rid} in heap {self.file_id}") from None
        self.buffer_pool.access((self.file_id, rid.page_no))
        return row

    def scan(self) -> Iterator[Tuple[Rid, Tuple[Any, ...]]]:
        """Full sequential scan in physical order."""
        for page_no, page in enumerate(self._pages):
            self.buffer_pool.access((self.file_id, page_no))
            for slot, row in enumerate(page):
                yield Rid(page_no, slot), row

    def scan_pages(self) -> Iterator[List[Tuple[Any, ...]]]:
        """Sequential scan, one page of records at a time.

        Charges the same page accesses as :meth:`scan` but skips the
        per-record Rid construction for callers that only want rows.
        The yielded lists are the live pages — do not mutate them.
        """
        access = self.buffer_pool.access
        file_id = self.file_id
        for page_no, page in enumerate(self._pages):
            access((file_id, page_no))
            yield page

    def truncate(self) -> None:
        self._pages.clear()
        self.buffer_pool.invalidate(self.file_id)
