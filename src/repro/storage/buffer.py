"""Buffer pool with LRU replacement and I/O accounting.

Pages live in Python memory regardless; the pool exists to *model* I/O.
Every page access is classified as a hit (page resident) or a miss, and
misses as sequential (the page follows the previously missed page of the
same file, the prefetch-friendly pattern the paper's ordered
nested-loop join exploits) or random.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

PageId = Tuple[Hashable, int]  # (file identifier, page number)


@dataclass
class IoStats:
    """Counters accumulated by a buffer pool."""

    hits: int = 0
    sequential_misses: int = 0
    random_misses: int = 0

    # Calibrated "milliseconds" per event; sequential misses are cheap
    # because prefetching and big-block I/O amortize the seek (the paper's
    # configuration drove the CPU to 100% utilization this way).
    SEQUENTIAL_MS = 0.1
    RANDOM_MS = 2.0

    @property
    def total_misses(self) -> int:
        return self.sequential_misses + self.random_misses

    @property
    def total_accesses(self) -> int:
        return self.hits + self.total_misses

    def simulated_io_ms(self) -> float:
        """Modelled I/O time for the recorded access pattern."""
        return (
            self.sequential_misses * self.SEQUENTIAL_MS
            + self.random_misses * self.RANDOM_MS
        )

    def snapshot(self) -> "IoStats":
        return IoStats(self.hits, self.sequential_misses, self.random_misses)

    def delta_since(self, earlier: "IoStats") -> "IoStats":
        return IoStats(
            self.hits - earlier.hits,
            self.sequential_misses - earlier.sequential_misses,
            self.random_misses - earlier.random_misses,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IoStats(hits={self.hits}, seq={self.sequential_misses}, "
            f"rand={self.random_misses})"
        )


class BufferPool:
    """An LRU page cache that records its own hit/miss behaviour.

    A miss counts as *sequential* when it lands within ``PREFETCH_WINDOW``
    pages ahead of the previous miss in the same file — modelling the
    big-block prefetching the paper's configuration used ("using a
    combination of big-block I/O, prefetching, and I/O parallelism").
    Monotone-but-sparse access patterns (ordered index probes that skip
    keys) therefore register as prefetch-friendly, exactly the ordered
    nested-loop-join effect of Section 8.1.
    """

    PREFETCH_WINDOW = 32

    def __init__(self, capacity_pages: int = 1024):
        if capacity_pages < 1:
            capacity_pages = 1
        self.capacity_pages = capacity_pages
        self.stats = IoStats()
        self._resident: "OrderedDict[PageId, None]" = OrderedDict()
        self._last_missed_page: Dict[Hashable, int] = {}
        # The query service executes plans on a worker pool; LRU
        # reordering and eviction are multi-step OrderedDict mutations
        # that must not interleave.
        self._lock = threading.Lock()

    def access(self, page_id: PageId) -> bool:
        """Record an access to ``page_id``; returns True on a hit."""
        with self._lock:
            if page_id in self._resident:
                self._resident.move_to_end(page_id)
                self.stats.hits += 1
                return True
            file_id, page_no = page_id
            previous = self._last_missed_page.get(file_id)
            if (
                previous is not None
                and 0 < page_no - previous <= self.PREFETCH_WINDOW
            ):
                self.stats.sequential_misses += 1
            else:
                self.stats.random_misses += 1
            self._last_missed_page[file_id] = page_no
            self._resident[page_id] = None
            if len(self._resident) > self.capacity_pages:
                self._resident.popitem(last=False)
            return False

    def invalidate(self, file_id: Hashable) -> None:
        """Evict every page of one file (e.g. after a table reload)."""
        with self._lock:
            for page_id in [
                resident
                for resident in self._resident
                if resident[0] == file_id
            ]:
                del self._resident[page_id]
            self._last_missed_page.pop(file_id, None)

    def reset_stats(self) -> None:
        self.stats = IoStats()

    def clear(self) -> None:
        """Drop all resident pages (cold cache) and reset counters."""
        with self._lock:
            self._resident.clear()
            self._last_missed_page.clear()
            self.reset_stats()

    def resident_count(self) -> int:
        return len(self._resident)
