"""A B+-tree index with linked leaves and I/O accounting.

Keys are tuples of sort-key-encoded column values (so mixed directions
and NULLs-high semantics come for free); values are heap RIDs. Duplicate
keys are allowed — each leaf entry is an independent (key, rid) pair.

Every node visit is charged to the buffer pool: descents are random
accesses, walking the leaf chain is sequential in leaf numbering (which
matches physical order after bulk load, so range scans model as
prefetch-friendly I/O).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.heap import Rid

Key = Tuple[Any, ...]


class _Node:
    __slots__ = ("node_id", "keys", "is_leaf")

    def __init__(self, node_id: int, is_leaf: bool):
        self.node_id = node_id
        self.keys: List[Key] = []
        self.is_leaf = is_leaf


class _Leaf(_Node):
    __slots__ = ("values", "next_leaf", "prev_leaf")

    def __init__(self, node_id: int):
        super().__init__(node_id, True)
        self.values: List[Rid] = []
        self.next_leaf: Optional["_Leaf"] = None
        self.prev_leaf: Optional["_Leaf"] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self, node_id: int):
        super().__init__(node_id, False)
        self.children: List[_Node] = []


class BPlusTree:
    """B+-tree mapping composite keys to RIDs."""

    def __init__(self, file_id: str, buffer_pool: BufferPool, fanout: int = 64):
        if fanout < 4:
            raise StorageError("fanout must be at least 4")
        self.file_id = file_id
        self.buffer_pool = buffer_pool
        self.fanout = fanout
        self._next_node_id = 0
        self._root: _Node = self._new_leaf()
        self._height = 1
        self._entry_count = 0

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------

    def _new_leaf(self) -> _Leaf:
        leaf = _Leaf(self._next_node_id)
        self._next_node_id += 1
        return leaf

    def _new_internal(self) -> _Internal:
        node = _Internal(self._next_node_id)
        self._next_node_id += 1
        return node

    def _touch(self, node: _Node) -> None:
        self.buffer_pool.access((self.file_id, node.node_id))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return self._entry_count

    @property
    def height(self) -> int:
        return self._height

    def insert(self, key: Key, rid: Rid) -> None:
        """Insert one entry (duplicates allowed)."""
        split = self._insert_into(self._root, key, rid)
        if split is not None:
            separator, new_node = split
            new_root = self._new_internal()
            new_root.keys = [separator]
            new_root.children = [self._root, new_node]
            self._root = new_root
            self._height += 1
        self._entry_count += 1

    def _insert_into(
        self, node: _Node, key: Key, rid: Rid
    ) -> Optional[Tuple[Key, _Node]]:
        if node.is_leaf:
            leaf = node  # type: ignore[assignment]
            position = bisect.bisect_right(leaf.keys, key)
            leaf.keys.insert(position, key)
            leaf.values.insert(position, rid)
            if len(leaf.keys) > self.fanout:
                return self._split_leaf(leaf)
            return None
        internal = node  # type: ignore[assignment]
        child_index = bisect.bisect_right(internal.keys, key)
        split = self._insert_into(internal.children[child_index], key, rid)
        if split is None:
            return None
        separator, new_child = split
        internal.keys.insert(child_index, separator)
        internal.children.insert(child_index + 1, new_child)
        if len(internal.children) > self.fanout:
            return self._split_internal(internal)
        return None

    def _split_leaf(self, leaf: _Leaf) -> Tuple[Key, _Node]:
        middle = len(leaf.keys) // 2
        sibling = self._new_leaf()
        sibling.keys = leaf.keys[middle:]
        sibling.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        sibling.next_leaf = leaf.next_leaf
        if sibling.next_leaf is not None:
            sibling.next_leaf.prev_leaf = sibling
        sibling.prev_leaf = leaf
        leaf.next_leaf = sibling
        return sibling.keys[0], sibling

    def _split_internal(self, node: _Internal) -> Tuple[Key, _Node]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        sibling = self._new_internal()
        sibling.keys = node.keys[middle + 1 :]
        sibling.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, sibling

    def bulk_load(self, entries: Sequence[Tuple[Key, Rid]]) -> None:
        """Replace the tree's contents from pre-sorted (or not) entries.

        Builds packed leaves bottom-up; resulting leaf numbering is
        monotone in key order so chain walks register as sequential I/O.
        """
        ordered = sorted(entries, key=lambda entry: entry[0])
        self._next_node_id = 0
        self._entry_count = len(ordered)
        per_leaf = max(2, (self.fanout * 3) // 4)
        leaves: List[_Leaf] = []
        for start in range(0, len(ordered), per_leaf):
            leaf = self._new_leaf()
            chunk = ordered[start : start + per_leaf]
            leaf.keys = [key for key, _rid in chunk]
            leaf.values = [rid for _key, rid in chunk]
            if leaves:
                leaves[-1].next_leaf = leaf
                leaf.prev_leaf = leaves[-1]
            leaves.append(leaf)
        if not leaves:
            self._root = self._new_leaf()
            self._height = 1
            return
        level: List[_Node] = list(leaves)
        self._height = 1
        while len(level) > 1:
            parents: List[_Node] = []
            per_parent = max(2, (self.fanout * 3) // 4)
            for start in range(0, len(level), per_parent):
                parent = self._new_internal()
                group = level[start : start + per_parent]
                parent.children = group
                parent.keys = [
                    self._smallest_key(child) for child in group[1:]
                ]
                parents.append(parent)
            level = parents
            self._height += 1
        self._root = level[0]

    def _smallest_key(self, node: _Node) -> Key:
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        return node.keys[0]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _descend(self, key: Optional[Key], rightmost: bool = False) -> _Leaf:
        node = self._root
        self._touch(node)
        while not node.is_leaf:
            internal = node  # type: ignore[assignment]
            if key is None:
                child = (
                    internal.children[-1] if rightmost else internal.children[0]
                )
            else:
                child_index = bisect.bisect_left(internal.keys, key)
                # bisect_left sends equal keys to the left child, where
                # the first duplicate lives.
                child = internal.children[child_index]
            node = child
            self._touch(node)
        return node  # type: ignore[return-value]

    def probe(self, key: Key) -> List[Rid]:
        """Equality point-probe: RIDs of every entry whose key prefix
        equals ``key``, in leaf order.

        Touches exactly the pages ``scan_range(low=key, high=key)``
        would, but returns a plain list — index-nested-loop joins issue
        thousands of these, and the generator frames plus per-entry
        bound re-slicing of the general range scan are pure overhead
        for a point lookup.
        """
        if self._entry_count == 0:
            return []
        leaf = self._descend(key)
        width = len(key)
        out: List[Rid] = []
        append = out.append
        while leaf is not None:
            keys = leaf.keys
            full = keys and width == len(keys[0])
            for position, stored in enumerate(keys):
                prefix = stored if full else stored[:width]
                if prefix < key:
                    continue
                if prefix > key:
                    return out
                append(leaf.values[position])
            next_leaf = leaf.next_leaf
            if next_leaf is not None:
                self._touch(next_leaf)
            leaf = next_leaf
        return out

    def scan_range(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        descending: bool = False,
    ) -> Iterator[Tuple[Key, Rid]]:
        """Iterate entries with ``low <= key <= high`` (bounds optional).

        Bounds are prefix bounds: a bound tuple shorter than stored keys
        compares against the key's prefix of the same length.
        """
        if self._entry_count == 0:
            return
        if descending:
            yield from self._scan_descending(low, high, low_inclusive, high_inclusive)
            return
        leaf = self._descend(low)
        while leaf is not None:
            for position in range(len(leaf.keys)):
                key = leaf.keys[position]
                if low is not None:
                    prefix = key[: len(low)]
                    if prefix < low or (not low_inclusive and prefix == low):
                        continue
                if high is not None:
                    prefix = key[: len(high)]
                    if prefix > high or (not high_inclusive and prefix == high):
                        return
                yield key, leaf.values[position]
            next_leaf = leaf.next_leaf
            if next_leaf is not None:
                self._touch(next_leaf)
            leaf = next_leaf

    def _scan_descending(
        self,
        low: Optional[Key],
        high: Optional[Key],
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> Iterator[Tuple[Key, Rid]]:
        leaf = self._descend(high, rightmost=high is None)
        # The first qualifying entry may be in a later leaf when ``high``
        # lands at a leaf boundary with duplicates; walk right first.
        while leaf.next_leaf is not None and (
            high is None or leaf.next_leaf.keys[0][: len(high)] <= high
        ):
            leaf = leaf.next_leaf
            self._touch(leaf)
        while leaf is not None:
            for position in range(len(leaf.keys) - 1, -1, -1):
                key = leaf.keys[position]
                if high is not None:
                    prefix = key[: len(high)]
                    if prefix > high or (not high_inclusive and prefix == high):
                        continue
                if low is not None:
                    prefix = key[: len(low)]
                    if prefix < low or (not low_inclusive and prefix == low):
                        return
                yield key, leaf.values[position]
            previous = leaf.prev_leaf
            if previous is not None:
                self._touch(previous)
            leaf = previous

    def probe(self, key: Key) -> List[Rid]:
        """Exact-match lookup of a full or prefix key."""
        return [rid for _key, rid in self.scan_range(low=key, high=key)]
