"""Partitioned storage: per-partition heap files and B+-trees.

A partitioned table stores each partition in its own
:class:`~repro.storage.heap.HeapFile` (file id ``heap:{name}#{p}``) and
each index in per-partition :class:`~repro.storage.btree.BPlusTree`
instances (``index:{name}#{p}``). Distinct file ids keep the buffer
pool's sequential-prefetch detection per partition, so the I/O
simulation charges a pruned or partition-parallel scan exactly the
pages it touches — nothing about the accounting is approximated.

RIDs stay global: a partitioned heap encodes the partition into the
page number (``global_page = partition * _STRIDE + local_page``), so
index entries, key enforcement, and ``fetch`` all keep working on one
address space while every physical access lands on the right
partition's file.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.btree import BPlusTree, Key
from repro.storage.heap import HeapFile, Rid

# Pages per partition in the global RID space. A partition would need
# ~64M rows at 64 rows/page to overflow; loads stay far below that.
_STRIDE = 1 << 20


class PartitionedHeap:
    """Heap-file facade over one file per partition.

    Mirrors the :class:`HeapFile` surface (``fetch``/``scan``/
    ``scan_pages``/``truncate``/counts) so :class:`StoredTable` and the
    executor treat partitioned and plain tables alike, and adds the
    per-partition entry points the exchange operators and pruned scans
    use (``append_to``, ``scan_partition``, ``scan_pages_partition``).
    """

    def __init__(
        self,
        name: str,
        buffer_pool: BufferPool,
        rows_per_page: int,
        partition_count: int,
    ):
        if partition_count < 2:
            raise StorageError("partitioned heap needs >= 2 partitions")
        self.file_id = f"heap:{name}"
        self.rows_per_page = rows_per_page
        self._parts: List[HeapFile] = [
            HeapFile(f"heap:{name}#{part}", buffer_pool, rows_per_page)
            for part in range(partition_count)
        ]

    @property
    def partition_count(self) -> int:
        return len(self._parts)

    @property
    def page_count(self) -> int:
        return sum(part.page_count for part in self._parts)

    @property
    def row_count(self) -> int:
        return sum(part.row_count for part in self._parts)

    def partition(self, index: int) -> HeapFile:
        return self._parts[index]

    def partition_page_count(self, index: int) -> int:
        return self._parts[index].page_count

    def append_to(self, partition: int, row: Tuple[Any, ...]) -> Rid:
        """Store one record in ``partition``, returning its global RID."""
        local = self._parts[partition].append(row)
        if local.page_no >= _STRIDE:
            raise StorageError(
                f"partition {partition} of {self.file_id} overflowed "
                f"{_STRIDE} pages"
            )
        return Rid(partition * _STRIDE + local.page_no, local.slot)

    def fetch(self, rid: Rid) -> Tuple[Any, ...]:
        partition, page_no = divmod(rid.page_no, _STRIDE)
        try:
            part = self._parts[partition]
        except IndexError:
            raise StorageError(f"bad {rid} in {self.file_id}") from None
        return part.fetch(Rid(page_no, rid.slot))

    def scan(self) -> Iterator[Tuple[Rid, Tuple[Any, ...]]]:
        """Full scan across partitions in partition order (global RIDs)."""
        for partition in range(len(self._parts)):
            yield from self.scan_partition(partition)

    def scan_partition(
        self, partition: int
    ) -> Iterator[Tuple[Rid, Tuple[Any, ...]]]:
        base = partition * _STRIDE
        for rid, row in self._parts[partition].scan():
            yield Rid(base + rid.page_no, rid.slot), row

    def scan_pages(self) -> Iterator[List[Tuple[Any, ...]]]:
        for part in self._parts:
            yield from part.scan_pages()

    def scan_pages_partition(
        self, partition: int
    ) -> Iterator[List[Tuple[Any, ...]]]:
        return self._parts[partition].scan_pages()

    def truncate(self) -> None:
        for part in self._parts:
            part.truncate()


def rid_partition(rid: Rid) -> int:
    """The partition a global RID addresses."""
    return rid.page_no // _STRIDE


class PartitionedTree:
    """B+-tree facade over one tree per partition.

    Entries route by the partition already encoded in their RID, so the
    index is automatically co-partitioned with the heap. A global
    ``scan_range`` k-way merges the per-partition leaf walks — ties
    break toward lower partitions, keeping the merge deterministic —
    while per-partition scans back the order-preserving merge-exchange
    plans.
    """

    def __init__(
        self,
        name: str,
        buffer_pool: BufferPool,
        fanout: int,
        partition_count: int,
    ):
        if partition_count < 2:
            raise StorageError("partitioned index needs >= 2 partitions")
        self.file_id = f"index:{name}"
        self._trees: List[BPlusTree] = [
            BPlusTree(f"index:{name}#{part}", buffer_pool, fanout)
            for part in range(partition_count)
        ]

    @property
    def partition_count(self) -> int:
        return len(self._trees)

    @property
    def entry_count(self) -> int:
        return sum(tree.entry_count for tree in self._trees)

    @property
    def height(self) -> int:
        return max(tree.height for tree in self._trees)

    def partition(self, index: int) -> BPlusTree:
        return self._trees[index]

    def insert(self, key: Key, rid: Rid) -> None:
        self._trees[rid_partition(rid)].insert(key, rid)

    def bulk_load(self, entries: Sequence[Tuple[Key, Rid]]) -> None:
        buckets: List[List[Tuple[Key, Rid]]] = [
            [] for _ in self._trees
        ]
        for key, rid in entries:
            buckets[rid_partition(rid)].append((key, rid))
        for tree, bucket in zip(self._trees, buckets):
            tree.bulk_load(bucket)

    def probe(self, key: Key) -> List[Rid]:
        """Point-probe every partition; each probe charges its own
        descent, which is exactly the physical work a partitioned index
        lookup does."""
        out: List[Rid] = []
        for tree in self._trees:
            out.extend(tree.probe(key))
        return out

    def scan_range(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        descending: bool = False,
    ) -> Iterator[Tuple[Key, Rid]]:
        streams = [
            tree.scan_range(
                low, high, low_inclusive, high_inclusive, descending
            )
            for tree in self._trees
        ]
        # heapq.merge is stable across input order, so equal keys come
        # out in partition order — matching bulk_load's global ordering.
        return heapq.merge(
            *streams, key=lambda entry: entry[0], reverse=descending
        )
