"""The database: catalog + storage + statistics in one handle.

A :class:`Database` owns the buffer pool, a heap file per table, and a
B+-tree per index. It is the object examples and benchmarks construct,
load, and hand to the optimizer/executor.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog import Catalog, Index, TableSchema, TableStats
from repro.core.ordering import SortDirection
from repro.errors import CatalogError, StorageError
from repro.sqltypes import sort_key
from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile, Rid
from repro.storage.partition import PartitionedHeap, PartitionedTree

PAGE_SIZE_BYTES = 4096


def encode_index_key(
    values: Sequence[Any], directions: Sequence[SortDirection]
) -> Tuple[Any, ...]:
    """Encode column values as a tree key honouring per-column direction.

    Descending columns are stored under reversed sort keys, so a forward
    leaf walk always yields the index's declared order.
    """
    return tuple(
        sort_key(value, descending=(direction is SortDirection.DESC))
        for value, direction in zip(values, directions)
    )


class StoredTable:
    """One table's physical presence: heap file + index trees.

    Declared keys (primary and unique) are *enforced* on insert and
    load: the optimizer turns keys into functional dependencies, so a
    violated key would silently license unsound sort eliminations.
    """

    def __init__(self, schema: TableSchema, buffer_pool: BufferPool):
        self.schema = schema
        rows_per_page = max(1, PAGE_SIZE_BYTES // max(1, schema.row_width()))
        self.rows_per_page = rows_per_page
        self.partitioning = schema.partitioning
        if self.partitioning is not None:
            self.heap: HeapFile = PartitionedHeap(
                schema.name,
                buffer_pool,
                rows_per_page,
                self.partitioning.partition_count,
            )
            self._partition_positions: List[int] = [
                schema.position(name) for name in self.partitioning.columns
            ]
        else:
            self.heap = HeapFile(
                f"heap:{schema.name}", buffer_pool, rows_per_page
            )
            self._partition_positions = []
        self.indexes: Dict[str, Tuple[Index, BPlusTree]] = {}
        self._buffer_pool = buffer_pool
        self._key_positions: List[Tuple[Tuple[str, ...], List[int]]] = [
            (key, [schema.position(name) for name in key])
            for key in schema.keys()
        ]
        self._key_values: List[set] = [set() for _key in self._key_positions]

    def _check_keys(self, row: Tuple[Any, ...]) -> None:
        for (key, positions), seen in zip(
            self._key_positions, self._key_values
        ):
            values = tuple(row[position] for position in positions)
            if any(value is None for value in values):
                continue  # SQL: NULLs never collide in unique constraints
            if values in seen:
                raise CatalogError(
                    f"duplicate key {key} = {values!r} in table "
                    f"{self.schema.name}"
                )
            seen.add(values)

    def _append(self, row: Tuple[Any, ...]) -> Rid:
        """Store one validated row, routing to its partition if any.

        Key enforcement stays global (``_check_keys`` runs before this),
        so partitioning never weakens uniqueness.
        """
        if self.partitioning is None:
            return self.heap.append(row)
        partition = self.partitioning.route(
            [row[position] for position in self._partition_positions]
        )
        return self.heap.append_to(partition, row)

    def insert(self, row: Sequence[Any]) -> Rid:
        """Validate, key-check, store, and index one row."""
        coerced = self.schema.validate_row(row)
        self._check_keys(coerced)
        rid = self._append(coerced)
        for index, tree in self.indexes.values():
            tree.insert(self._index_key(index, coerced), rid)
        return rid

    def load(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-load rows, rebuild indexes packed, refresh statistics."""
        count = 0
        validated: List[Tuple[Any, ...]] = []
        self._key_values = [set() for _key in self._key_positions]
        for row in rows:
            coerced = self.schema.validate_row(row)
            self._check_keys(coerced)
            validated.append(coerced)
            count += 1
        self.heap.truncate()
        rids = [self._append(row) for row in validated]
        for index, tree in self.indexes.values():
            tree.bulk_load(
                [
                    (self._index_key(index, row), rid)
                    for row, rid in zip(validated, rids)
                ]
            )
        self.analyze()
        return count

    def _index_key(self, index: Index, row: Sequence[Any]) -> Tuple[Any, ...]:
        positions = [self.schema.position(name) for name in index.key_names]
        directions = [column.direction for column in index.key]
        return encode_index_key(
            [row[position] for position in positions], directions
        )

    def add_index(self, index: Index, fanout: int = 64) -> BPlusTree:
        if index.name in self.indexes:
            raise StorageError(f"index {index.name} already stored")
        if self.partitioning is not None:
            # Per-partition trees, co-partitioned with the heap via the
            # partition encoded in each RID.
            tree: BPlusTree = PartitionedTree(
                index.name,
                self._buffer_pool,
                fanout,
                self.partitioning.partition_count,
            )
        else:
            tree = BPlusTree(f"index:{index.name}", self._buffer_pool, fanout)
        entries = [
            (self._index_key(index, row), rid) for rid, row in self.heap.scan()
        ]
        tree.bulk_load(entries)
        self.indexes[index.name] = (index, tree)
        return tree

    def analyze(self) -> TableStats:
        """Recompute exact statistics from the stored rows."""
        self.schema.stats = TableStats.collect(
            self.schema.column_names,
            (row for _rid, row in self.heap.scan()),
            page_rows=self.rows_per_page,
        )
        return self.schema.stats

    def row_count(self) -> int:
        return self.heap.row_count


class Database:
    """Catalog + storage, the one-stop handle for examples and benches."""

    def __init__(self, buffer_pool_pages: int = 2048):
        self.catalog = Catalog()
        self.buffer_pool = BufferPool(buffer_pool_pages)
        self._stores: Dict[str, StoredTable] = {}

    def create_table(
        self,
        schema: TableSchema,
        rows: Optional[Iterable[Sequence[Any]]] = None,
    ) -> StoredTable:
        self.catalog.create_table(schema)
        store = StoredTable(schema, self.buffer_pool)
        self._stores[schema.name.lower()] = store
        if rows is not None:
            store.load(rows)
        return store

    def create_index(self, index: Index) -> BPlusTree:
        self.catalog.create_index(index)
        return self.store(index.table_name).add_index(index)

    def store(self, table_name: str) -> StoredTable:
        try:
            return self._stores[table_name.lower()]
        except KeyError:
            raise CatalogError(f"no stored table {table_name}") from None

    def index_tree(self, index_name: str) -> BPlusTree:
        index = self.catalog.index(index_name)
        return self.store(index.table_name).indexes[index.name][1]

    def analyze_all(self) -> None:
        for stored in self._stores.values():
            stored.analyze()
        self.catalog.note_stats_refresh()

    def analyze_table(self, table_name: str) -> None:
        """Refresh one table's statistics (a versioned stats change)."""
        self.store(table_name).analyze()
        self.catalog.note_stats_refresh()

    def reset_io(self, cold: bool = False) -> None:
        """Reset I/O counters; ``cold=True`` also empties the cache."""
        if cold:
            self.buffer_pool.clear()
        else:
            self.buffer_pool.reset_stats()
