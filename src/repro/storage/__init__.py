"""Storage layer: pages, buffer pool, heap files, B+-tree indexes.

Everything the engine reads flows through a :class:`BufferPool`, which
counts sequential and random page accesses. Those counts drive both the
cost model's calibration and the simulated-I/O component of benchmark
timings — this layer is the stand-in for the paper's disks, prefetching,
and big-block I/O.
"""

from repro.storage.buffer import BufferPool, IoStats
from repro.storage.heap import HeapFile, Rid
from repro.storage.btree import BPlusTree
from repro.storage.partition import (
    PartitionedHeap,
    PartitionedTree,
    rid_partition,
)
from repro.storage.database import Database, StoredTable

__all__ = [
    "BufferPool",
    "IoStats",
    "HeapFile",
    "Rid",
    "BPlusTree",
    "PartitionedHeap",
    "PartitionedTree",
    "rid_partition",
    "Database",
    "StoredTable",
]
