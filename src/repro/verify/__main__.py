"""CLI entry point: ``python -m repro.verify <command> [...]``.

Commands:

* ``smoke`` — a fast fixed-seed pass: a small fuzz batch under the
  tier-1 config matrix with property auditing, plus the §5.2.1 audit
  battery. This is the invariant safety net CI and CLAUDE.md point at.
* ``fuzz --seed S --n N [--sf F] [--tables T] [--tier1]`` — N random
  queries under the *full* feature-toggle matrix; failures are
  delta-debugged to a minimal repro and printed as pytest cases.
* ``audit`` — the fixed plan-property audit battery alone.
* ``fleet [--rounds N]`` — the workload-feedback differential: one
  feedback round over the skewed fleet under all three executor
  engines; rows must be byte-identical pre/post feedback and across
  engines, with no regression admitted by the gate.

Exit status is non-zero when any mismatch survives.
"""

from __future__ import annotations

import argparse
import sys

from repro.verify.gen import GenConfig
from repro.verify.oracle import (
    full_matrix,
    run_audit_battery,
    run_fuzz,
    tier1_matrix,
)
from repro.verify.shrink import shrink


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential plan-oracle harness.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("smoke", help="fast fixed-seed correctness pass")

    fuzz = commands.add_parser(
        "fuzz", help="config-matrix fuzz with automatic failure shrinking"
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--n", type=int, default=100, help="query count")
    fuzz.add_argument(
        "--sf",
        type=float,
        default=1.0,
        help="row-count scale factor for generated tables (default 1.0)",
    )
    fuzz.add_argument(
        "--tables",
        type=int,
        default=3,
        help="tables per generated schema (default 3)",
    )
    fuzz.add_argument(
        "--tier1",
        action="store_true",
        help="use the 4-config tier-1 matrix instead of the full 17",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without delta-debugging them",
    )

    commands.add_parser("audit", help="plan-property audit battery")

    fleet = commands.add_parser(
        "fleet", help="three-engine workload-feedback differential"
    )
    fleet.add_argument(
        "--rounds",
        type=int,
        default=4,
        help="literal-rotation rounds (8 statements each, default 4)",
    )

    arguments = parser.parse_args(argv)
    if arguments.command == "smoke":
        return _smoke()
    if arguments.command == "fuzz":
        return _fuzz(arguments)
    if arguments.command == "fleet":
        return _fleet(arguments)
    return _audit()


def _smoke() -> int:
    # compare_exec_modes re-runs every chosen plan under both executor
    # engines (compiled kernels and the tree-walking interpreter) and
    # requires identical rows in identical order.
    report = run_fuzz(
        seed=2026,
        n=12,
        configs=tier1_matrix(),
        audit_configs=("full", "disabled"),
        compare_exec_modes=True,
    )
    print(f"fuzz smoke: {report.summary()}")
    failed = _report_failures(report, do_shrink=False)
    audit_mismatches = run_audit_battery()
    print(
        "audit battery: "
        + ("ok" if not audit_mismatches else f"{len(audit_mismatches)} FAILURES")
    )
    for mismatch in audit_mismatches:
        print(f"  {mismatch}")
    return 1 if (failed or audit_mismatches) else 0


def _fuzz(arguments) -> int:
    gen_config = GenConfig(
        tables=arguments.tables, row_scale=arguments.sf
    )
    configs = tier1_matrix() if arguments.tier1 else full_matrix()
    report = run_fuzz(
        seed=arguments.seed,
        n=arguments.n,
        gen_config=gen_config,
        configs=configs,
        audit_configs=("full",),
    )
    print(f"fuzz: {report.summary()}")
    return 1 if _report_failures(
        report, do_shrink=not arguments.no_shrink, configs=configs
    ) else 0


def _report_failures(report, do_shrink: bool, configs=None) -> bool:
    for failure in report.failures:
        print(f"\nFAILING QUERY: {failure.spec.sql()}")
        for mismatch in failure.mismatches:
            print(f"  {mismatch}")
        if do_shrink and failure.spec.raw is None:
            result = shrink(failure.schema, failure.spec, configs)
            print(
                f"shrunk to {result.spec.clause_count()} clauses "
                f"in {result.trials} trials: {result.sql}"
            )
            print("--- paste into tests/ ---")
            print(result.pytest_case())
    return bool(report.failures)


def _fleet(arguments) -> int:
    from repro.verify.fleet import run_fleet_differential

    report = run_fleet_differential(rounds=arguments.rounds)
    print(f"fleet differential: {report.summary()}")
    for failure in report.failures:
        print(f"  {failure}")
    return 0 if report.ok() else 1


def _audit() -> int:
    mismatches = run_audit_battery()
    if mismatches:
        print(f"audit: {len(mismatches)} FAILURES")
        for mismatch in mismatches:
            print(f"  {mismatch}")
        return 1
    print("audit: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
