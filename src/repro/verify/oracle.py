"""Differential plan oracle: config-matrix execution diffing + auditing.

Three layers of checking, all returning :class:`Mismatch` records
instead of raising, so callers (pytest, the CLI, the shrinker) can
decide what a failure means:

* **Row-set diffing** — every query runs under an optimizer-config
  matrix (by default *all* feature-toggle combinations of
  reduction/cover/sort-ahead/hash-ops plus the paper's
  order-optimization-disabled baseline, not a hand-picked subset) and
  each result's row multiset is compared against the brute-force
  reference evaluator (:mod:`repro.verify.reference`).
* **Output-order checking** — ordered queries must come out physically
  sorted by their ORDER BY; with FETCH FIRST and ties any valid top-k is
  accepted by comparing the multiset of sort-key tuples instead of rows.
* **Property auditing** — every node of a chosen plan is re-executed in
  isolation and its claimed properties (candidate keys unique, FDs
  functional, order physically true, constants constant, one-record
  means ≤ 1 row) are checked against the rows it actually produced.
  This is the strongest guard against unsound reductions: a wrong key
  or FD would silently license removing a sort the data needs.

All comparisons use :func:`repro.sqltypes.values.sort_key` (NULLs high),
the same convention as the reference and the executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api import execute, plan_query, run_query
from repro.core.ordering import SortDirection
from repro.executor.build import build_operator
from repro.executor.context import (
    MODE_COMPILED,
    MODE_INTERPRETED,
    MODE_VECTOR,
    ExecutionContext,
)
from repro.optimizer import OptimizerConfig, Plan
from repro.optimizer.plan import PlanNode
from repro.sqltypes.values import sort_key
from repro.storage import Database
from repro.verify.gen import GenConfig, QueryGenerator, SchemaSpec, generate_schema
from repro.verify.reference import reference_query


# ----------------------------------------------------------------------
# Config matrices
# ----------------------------------------------------------------------

_MATRIX_FEATURES = ("red", "cov", "sa", "hash", "od", "ps", "part")


def full_matrix(include_disabled: bool = True) -> Dict[str, OptimizerConfig]:
    """Every combination of reduction/cover/sort-ahead/hash-operators/
    order-dependencies/partial-sort/partitioning (128 configs), plus
    the paper's master-switch-off baseline."""
    configs: Dict[str, OptimizerConfig] = {}
    for bits in range(128):
        red, cov, sa, hash_ops, od, ps, part = (
            bool(bits & 64),
            bool(bits & 32),
            bool(bits & 16),
            bool(bits & 8),
            bool(bits & 4),
            bool(bits & 2),
            bool(bits & 1),
        )
        name = "".join(
            flag if on else flag.upper()
            for flag, on in zip(
                _MATRIX_FEATURES, (red, cov, sa, hash_ops, od, ps, part)
            )
        )
        configs[name] = OptimizerConfig(
            enable_reduction=red,
            enable_cover=cov,
            enable_sort_ahead=sa,
            enable_hash_join=hash_ops,
            enable_hash_group_by=hash_ops,
            use_order_dependencies=od,
            enable_partial_sort=ps,
            enable_partitioning=part,
        )
    if include_disabled:
        configs["disabled"] = OptimizerConfig.disabled()
    return configs


def tier1_matrix() -> Dict[str, OptimizerConfig]:
    """The historical fuzz configs plus the OD-off, partial-sort-off,
    and partitioning-off builds — the cheap tier-1 subset."""
    return {
        "full": OptimizerConfig(),
        "disabled": OptimizerConfig.disabled(),
        "no-hash": OptimizerConfig(
            enable_hash_join=False, enable_hash_group_by=False
        ),
        "no-sortahead": OptimizerConfig(enable_sort_ahead=False),
        "no-od": OptimizerConfig(use_order_dependencies=False),
        "no-partial-sort": OptimizerConfig(enable_partial_sort=False),
        "no-partitioning": OptimizerConfig(enable_partitioning=False),
    }


# ----------------------------------------------------------------------
# Mismatch records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Mismatch:
    """One divergence between a configured run and the reference."""

    sql: str
    config: str
    kind: str  # rows | order | count | audit | error
    detail: str

    def __str__(self) -> str:
        return f"[{self.config}/{self.kind}] {self.sql!r}: {self.detail}"


def normalized(rows: Iterable[tuple]) -> List[tuple]:
    """Rows sorted by total-order sort keys, for multiset comparison."""
    return sorted(
        rows, key=lambda row: tuple(sort_key(value) for value in row)
    )


# ----------------------------------------------------------------------
# Output-order introspection
# ----------------------------------------------------------------------


def output_order_positions(
    database: Database, sql: str
) -> List[Tuple[int, bool]]:
    """(output position, descending) for each *visible* ORDER BY key.

    Keys on hidden (non-selected) columns are skipped — their effect is
    only observable through the visible prefix anyway.
    """
    from repro.parser import parse_query
    from repro.qgm import normalize, rewrite
    from repro.qgm.boxes import UnionBox

    box = rewrite(parse_query(sql, database.catalog))
    if isinstance(box, UnionBox):
        outputs = [item.output for item in box.output_items()]
        order = box.output_order
    else:
        block = normalize(box)
        outputs = []
        seen = set()
        for item in block.select_items:
            if item.output in seen:
                continue
            seen.add(item.output)
            outputs.append(item.output)
        order = block.order_by
    positions = {column: index for index, column in enumerate(outputs)}
    plan: List[Tuple[int, bool]] = []
    for key in order:
        if key.column not in positions:
            continue
        plan.append(
            (positions[key.column], key.direction is SortDirection.DESC)
        )
    return plan


def _order_violation(
    rows: Sequence[tuple], order_plan: Sequence[Tuple[int, bool]]
) -> Optional[str]:
    markers = [
        tuple(
            sort_key(row[position], descending)
            for position, descending in order_plan
        )
        for row in rows
    ]
    for index in range(1, len(markers)):
        if markers[index - 1] > markers[index]:
            return (
                f"rows {index - 1} and {index} out of order: "
                f"{rows[index - 1]!r} then {rows[index]!r}"
            )
    return None


# ----------------------------------------------------------------------
# Per-query differential check
# ----------------------------------------------------------------------


def check_query(
    database: Database,
    sql: str,
    configs: Optional[Dict[str, OptimizerConfig]] = None,
    audit_configs: Sequence[str] = (),
    expected: Optional[List[tuple]] = None,
    compare_exec_modes: bool = False,
) -> List[Mismatch]:
    """Run ``sql`` under every config and diff against the reference.

    ``expected`` short-circuits the reference evaluation (callers that
    batch-check the same query reuse it). ``audit_configs`` names matrix
    entries whose chosen plan additionally gets a full per-node property
    audit. ``compare_exec_modes`` re-executes each chosen plan under
    all three executor engines (compiled, interpreted, and vector,
    explicitly — so a global ``REPRO_EXEC`` override cannot make the
    check vacuous) and requires byte-identical rows in identical order.
    """
    if configs is None:
        configs = full_matrix()
    mismatches: List[Mismatch] = []
    try:
        if expected is None:
            expected = reference_query(database, sql)
        order_plan = output_order_positions(database, sql)
    except Exception as error:  # pragma: no cover - reference bugs
        return [
            Mismatch(sql, "reference", "error", f"{type(error).__name__}: {error}")
        ]
    fetch_limited = "fetch first" in sql.lower()

    for name, config in configs.items():
        try:
            result = run_query(database, sql, config=config)
        except Exception as error:
            mismatches.append(
                Mismatch(sql, name, "error", f"{type(error).__name__}: {error}")
            )
            continue
        rows = result.rows
        if order_plan:
            violation = _order_violation(rows, order_plan)
            if violation is not None:
                mismatches.append(Mismatch(sql, name, "order", violation))
        if fetch_limited and order_plan:
            # With ties at the cut-off any valid top-k is correct:
            # compare counts and the multiset of visible sort keys.
            if len(rows) != len(expected):
                mismatches.append(
                    Mismatch(
                        sql,
                        name,
                        "count",
                        f"{len(rows)} rows, expected {len(expected)}",
                    )
                )
            else:
                keys_of = lambda rs: sorted(
                    tuple(sort_key(row[p]) for p, _d in order_plan)
                    for row in rs
                )
                if keys_of(rows) != keys_of(expected):
                    mismatches.append(
                        Mismatch(
                            sql,
                            name,
                            "rows",
                            "top-k sort-key multiset differs from reference",
                        )
                    )
        elif fetch_limited:
            if len(rows) != len(expected):
                mismatches.append(
                    Mismatch(
                        sql,
                        name,
                        "count",
                        f"{len(rows)} rows, expected {len(expected)}",
                    )
                )
        else:
            if normalized(rows) != normalized(expected):
                mismatches.append(
                    Mismatch(
                        sql,
                        name,
                        "rows",
                        f"{len(rows)} rows vs {len(expected)} reference rows "
                        f"(multisets differ)\n{result.plan.explain()}",
                    )
                )
        if compare_exec_modes:
            divergence = _exec_mode_divergence(database, result.plan)
            if divergence is not None:
                mismatches.append(Mismatch(sql, name, "exec", divergence))
        if name in audit_configs:
            for violation in audit_plan(database, result.plan):
                mismatches.append(Mismatch(sql, name, "audit", violation))
    return mismatches


def _exec_mode_divergence(database: Database, plan: Plan) -> Optional[str]:
    """Run ``plan`` under every executor engine; describe any difference.

    The interpreter is the semantic reference; compiled and vector are
    each diffed against it pairwise. The comparison is exact (list
    equality), not multiset: the engines must agree on row order too.
    """
    interpreted = execute(
        database,
        plan,
        context=ExecutionContext(database, mode=MODE_INTERPRETED),
    )
    for mode in (MODE_COMPILED, MODE_VECTOR):
        challenger = execute(
            database, plan, context=ExecutionContext(database, mode=mode)
        )
        if challenger.rows == interpreted.rows:
            continue
        if len(challenger.rows) != len(interpreted.rows):
            return (
                f"{mode} produced {len(challenger.rows)} rows, interpreted "
                f"{len(interpreted.rows)}\n{plan.explain()}"
            )
        for index, (left, right) in enumerate(
            zip(challenger.rows, interpreted.rows)
        ):
            if left != right:
                return (
                    f"row {index} differs: {mode} {left!r} vs interpreted "
                    f"{right!r}\n{plan.explain()}"
                )
        return f"{mode} rows differ\n{plan.explain()}"  # pragma: no cover
    return None


# ----------------------------------------------------------------------
# Plan property auditing (§5.2.1 against executed data)
# ----------------------------------------------------------------------


def walk(node: PlanNode):
    yield node
    for child in node.children:
        yield from walk(child)


def _marker(row, positions):
    return tuple(sort_key(row[p]) for p in positions)


def audit_node(database: Database, node: PlanNode) -> List[str]:
    """Execute just ``node``'s subtree and check every claimed property
    against the rows it produced. Returns violation descriptions."""
    violations: List[str] = []
    operator = build_operator(node, database)
    rows = operator.execute(ExecutionContext(database))
    schema = node.properties.schema
    properties = node.properties

    if properties.key_property.one_record and len(rows) > 1:
        violations.append(f"one-record violated at {node.describe()}")
    for key in properties.key_property.keys:
        if not all(column in schema for column in key):
            continue  # key expressed on equivalence heads outside schema
        positions = [schema.position(column) for column in key]
        markers = [_marker(row, positions) for row in rows]
        if len(markers) != len(set(markers)):
            violations.append(
                f"key {sorted(map(str, key))} not unique at {node.describe()}"
            )

    for dependency in properties.fds:
        head = list(dependency.head)
        tail = list(dependency.tail)
        if not all(c in schema for c in head + tail):
            continue
        head_positions = [schema.position(c) for c in head]
        tail_positions = [schema.position(c) for c in tail]
        mapping = {}
        for row in rows:
            key = _marker(row, head_positions)
            value = _marker(row, tail_positions)
            previous = mapping.setdefault(key, value)
            if previous != value:
                violations.append(
                    f"FD {dependency} violated at {node.describe()}"
                )
                break

    for column in properties.constants:
        if column not in schema:
            continue
        position = schema.position(column)
        values = {sort_key(row[position]) for row in rows}
        if len(values) > 1:
            violations.append(
                f"constant {column} not constant at {node.describe()}"
            )

    for dependency in properties.ods:
        # OD axiom on real rows: grouped by source value, the target is
        # single-valued (the implied FD), and walking groups in source
        # order the target markers never decrease (never increase for a
        # flipped edge — checked through the descending sort key).
        if dependency.source not in schema or dependency.target not in schema:
            continue
        source_position = schema.position(dependency.source)
        target_position = schema.position(dependency.target)
        groups: Dict[Any, set] = {}
        for row in rows:
            groups.setdefault(
                sort_key(row[source_position]), set()
            ).add(sort_key(row[target_position], dependency.flip))
        sequence = sorted(groups.items())
        violated = any(len(markers) > 1 for _key, markers in sequence)
        if not violated:
            flattened = [
                next(iter(markers)) for _key, markers in sequence
            ]
            violated = flattened != sorted(flattened)
        if violated:
            violations.append(
                f"OD {dependency} violated at {node.describe()}"
            )

    if not properties.order.is_empty():
        plan_keys = [
            (
                schema.position(key.column),
                key.direction is SortDirection.DESC,
            )
            for key in properties.order
            if key.column in schema
        ]
        markers_sequence = [
            tuple(sort_key(row[p], d) for p, d in plan_keys) for row in rows
        ]
        if markers_sequence != sorted(markers_sequence):
            violations.append(
                f"order property {properties.order} violated at "
                f"{node.describe()}"
            )
    return violations


def audit_plan(database: Database, plan: Plan) -> List[str]:
    """Audit every node of ``plan`` (see :func:`audit_node`)."""
    violations: List[str] = []
    for node in walk(plan.root):
        violations.extend(audit_node(database, node))
    return violations


# ----------------------------------------------------------------------
# Fixed audit battery (the original property-validation fixture)
# ----------------------------------------------------------------------

AUDIT_QUERIES = (
    "select k, grp from d where grp = 3 order by k",
    "select d.k, d.grp, f.v from d, f where d.k = f.k order by d.k",
    "select d.grp, count(*) as n from d, f where d.k = f.k group by d.grp",
    "select d.k, f.seq, f.v from d, f where d.k = f.k and d.k = 5",
    "select distinct grp from d order by grp",
    "select d.k, f.v from d left join f on d.k = f.k order by d.k",
    "select k, grp from d order by k desc",
    "select d.grp, count(*) as n from d group by d.grp order by n desc, d.grp",
    # Order-dependency coverage: the claimed ODs (k |-> k2, grp |-> g2)
    # and the orders they license get checked on real rows.
    "select k, k + 1 as k2 from d order by k2",
    "select grp, 2 * grp as g2, name from d order by grp desc, g2 desc",
)


def build_audit_database() -> Database:
    """The two-table schema the §5.2.1 audit battery runs against."""
    import random as _random

    from repro.catalog import Column, Index, TableSchema
    from repro.sqltypes import INTEGER, varchar

    rng = _random.Random(17)
    database = Database()
    database.create_table(
        TableSchema(
            "d",
            [
                Column("k", INTEGER, nullable=False),
                Column("grp", INTEGER),
                Column("name", varchar(8)),
            ],
            primary_key=("k",),
        ),
        rows=[(i, rng.randint(0, 6), f"n{i % 9}") for i in range(40)],
    )
    database.create_table(
        TableSchema(
            "f",
            [
                Column("k", INTEGER, nullable=False),
                Column("seq", INTEGER, nullable=False),
                Column("v", INTEGER),
            ],
            primary_key=("k", "seq"),
        ),
        rows=[
            (k, seq, rng.randint(0, 99))
            for k in range(50)
            for seq in range(rng.randint(1, 4))
        ],
    )
    database.create_index(
        Index.on("d_k", "d", ["k"], unique=True, clustered=True)
    )
    database.create_index(Index.on("f_k", "f", ["k"], clustered=True))
    return database


def audit_matrix() -> Dict[str, OptimizerConfig]:
    """Configs the audit battery planes under (sort-heavy + hash-heavy)."""
    return {
        "full": OptimizerConfig(),
        "no-hash": OptimizerConfig(
            enable_hash_join=False, enable_hash_group_by=False
        ),
    }


def run_audit_battery(
    configs: Optional[Dict[str, OptimizerConfig]] = None,
) -> List[Mismatch]:
    """Plan + audit every battery query under every config."""
    database = build_audit_database()
    if configs is None:
        configs = audit_matrix()
    mismatches: List[Mismatch] = []
    for sql in AUDIT_QUERIES:
        for name, config in configs.items():
            plan = plan_query(database, sql, config=config)
            for violation in audit_plan(database, plan):
                mismatches.append(Mismatch(sql, name, "audit", violation))
    return mismatches


# ----------------------------------------------------------------------
# Fuzz driver
# ----------------------------------------------------------------------


@dataclass
class FuzzFailure:
    """One failing query with enough context to rebuild and shrink it."""

    schema: SchemaSpec
    spec: object  # QuerySpec
    mismatches: List[Mismatch]


@dataclass
class FuzzReport:
    queries: int = 0
    configs: int = 0
    executions: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        state = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"{self.queries} queries x {self.configs} configs "
            f"({self.executions} executions): {state}"
        )


def run_fuzz(
    seed: int,
    n: int,
    gen_config: GenConfig = GenConfig(),
    configs: Optional[Dict[str, OptimizerConfig]] = None,
    audit_configs: Sequence[str] = (),
    batch: int = 25,
    compare_exec_modes: bool = False,
) -> FuzzReport:
    """Fuzz ``n`` queries under the config matrix, a fresh random schema
    every ``batch`` queries so index/key shapes vary within one run."""
    if configs is None:
        configs = full_matrix()
    report = FuzzReport(configs=len(configs))
    generated = 0
    batch_index = 0
    while generated < n:
        batch_seed = seed + 1009 * batch_index
        schema = generate_schema(batch_seed, gen_config)
        database = schema.build()
        generator = QueryGenerator(schema, batch_seed, gen_config)
        for _ in range(min(batch, n - generated)):
            spec = generator.generate()
            sql = spec.sql()
            mismatches = check_query(
                database,
                sql,
                configs,
                audit_configs=audit_configs,
                compare_exec_modes=compare_exec_modes,
            )
            report.queries += 1
            report.executions += len(configs)
            generated += 1
            if mismatches:
                report.failures.append(
                    FuzzFailure(schema, spec, mismatches)
                )
        batch_index += 1
    return report
