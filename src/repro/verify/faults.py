"""Fault injection for the resilient service runtime.

The executor's cancellation checkpoints
(:meth:`repro.executor.context.CancelToken.check`) consult one
module-level hook slot that is ``None`` by default — the hooks are
"compiled out" of production runs; the only standing cost is a pointer
test per checkpoint. This module installs hooks that deterministically
trip tokens *mid-plan* so tests can assert the failure contract: no
worker dies, no future dangles, and the non-faulted statements still
produce byte-identical rows.

Determinism: faults are counted **per token** (one token = one query),
so under a multi-worker service the Nth checkpoint of a given query
trips regardless of how the scheduler interleaved other queries.
Queries that reach fewer than N checkpoints complete normally — the
same corpus splits into the same survivors/victims on every run for a
given engine.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator
from weakref import WeakKeyDictionary

from repro.executor.context import CancelToken, set_fault_hook


@contextmanager
def inject_token_faults(
    after_checks: int, kind: str = "timeout"
) -> Iterator[None]:
    """Trip every cancellation token at its ``after_checks``-th
    checkpoint.

    ``kind`` selects the failure: ``"timeout"`` forces the token's
    deadline into the past (the next check raises
    :class:`~repro.errors.QueryTimeout`, exactly the production
    deadline path), ``"cancel"`` trips it as an explicit cancellation
    (:class:`~repro.errors.QueryCancelled`). Tokens that never reach
    ``after_checks`` checkpoints are untouched, so short queries
    survive and long ones fail — a corpus replay exercises both paths
    in one pass.

    Restores the previous hook on exit, so nests and never leaks into
    unrelated tests.
    """
    if after_checks < 1:
        raise ValueError("after_checks must be >= 1")
    if kind not in ("timeout", "cancel"):
        raise ValueError(f"unknown fault kind {kind!r}")
    visits: "WeakKeyDictionary[CancelToken, int]" = WeakKeyDictionary()
    lock = threading.Lock()

    def hook(token: CancelToken) -> None:
        with lock:
            seen = visits.get(token, 0) + 1
            visits[token] = seen
        if seen == after_checks:
            if kind == "timeout":
                token.expire()
            else:
                token.cancel("fault injection")

    previous = set_fault_hook(hook)
    try:
        yield
    finally:
        set_fault_hook(previous)
