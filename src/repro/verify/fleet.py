"""Fleet-replay differential: feedback must never change results.

The workload loop rewrites *estimates* — selectivity overrides, NDV
corrections, re-planned and re-pinned cache entries. None of that may
change a single result byte. This harness runs a full feedback round
over the skewed proving-ground fleet under each executor engine and
checks two invariants:

* **within-engine**: every statement's rows are identical across the
  baseline, re-optimized, and gated-final replays
  (``FeedbackReport.mismatches``);
* **across engines**: the three engines' final rows agree statement by
  statement — the trio contract (compiled / vector / interpreted byte
  identical) holds with feedback in the loop.

Each engine gets a freshly built database (its own catalog identity),
so one engine's overrides and pinned plans cannot leak into another's
cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.workload import (
    FleetRunner,
    build_skewed_database,
    build_skewed_fleet,
)

ENGINES = ("compiled", "vector", "interpreted")


@dataclass
class FleetDifferentialReport:
    """Outcome of the three-engine fleet differential."""

    statements: int = 0
    engines: Tuple[str, ...] = ENGINES
    failures: List[str] = field(default_factory=list)
    qerror_before: Dict[str, float] = field(default_factory=dict)
    qerror_after: Dict[str, float] = field(default_factory=dict)
    regressions_admitted: int = 0

    def ok(self) -> bool:
        return not self.failures and self.regressions_admitted == 0

    def summary(self) -> str:
        if self.ok():
            spans = ", ".join(
                f"{engine} {self.qerror_before[engine]:.2f}->"
                f"{self.qerror_after[engine]:.2f}"
                for engine in self.engines
            )
            return (
                f"ok: {self.statements} statements x "
                f"{len(self.engines)} engines byte-identical "
                f"pre/post feedback (q-error geomean {spans})"
            )
        return f"{len(self.failures)} FAILURES"


def run_fleet_differential(
    rounds: int = 4,
    seed: int = 7,
    engines: Tuple[str, ...] = ENGINES,
) -> FleetDifferentialReport:
    """One feedback round per engine; check both invariants."""
    fleet = build_skewed_fleet(rounds=rounds)
    report = FleetDifferentialReport(
        statements=len(fleet), engines=tuple(engines)
    )
    final_rows: Dict[str, List[List[tuple]]] = {}
    for engine in engines:
        database = build_skewed_database(seed=seed)
        with FleetRunner(database, fleet, mode=engine) as runner:
            round_report = runner.run_feedback_round()
            for name in round_report.mismatches():
                report.failures.append(
                    f"[{engine}] rows changed across feedback round: {name}"
                )
            report.qerror_before[engine] = round_report.baseline.qerror().geomean
            report.qerror_after[engine] = round_report.final.qerror().geomean
            # The gate may reject challengers (incumbent-retained is
            # fine); an *admitted* regression would be a gate bug.
            for record in runner.service.plan_regressions():
                if record.action != "incumbent-retained":
                    report.regressions_admitted += 1
                    report.failures.append(
                        f"[{engine}] regression admitted: {record.statement}"
                    )
            final_rows[engine] = [
                run.rows for run in round_report.final.runs
            ]
    reference_engine = engines[0]
    for engine in engines[1:]:
        for index, statement in enumerate(fleet):
            if final_rows[engine][index] != final_rows[reference_engine][index]:
                report.failures.append(
                    f"[{engine} vs {reference_engine}] rows differ: "
                    f"{statement.name} #{index}"
                )
    return report
