"""repro.verify — the differential plan-oracle subsystem.

A reusable correctness harness for the order-optimization engine:

* :mod:`repro.verify.gen` — seeded random schema + query generators;
* :mod:`repro.verify.reference` — the brute-force SQL evaluator used as
  the ground-truth oracle;
* :mod:`repro.verify.oracle` — config-matrix differential execution,
  output-order checking, and per-node plan-property auditing;
* :mod:`repro.verify.shrink` — delta-debugging minimizer that turns a
  failure into a minimal repro and a ready-to-paste pytest case;
* :mod:`repro.verify.faults` — deterministic fault injection that trips
  cancellation tokens mid-plan (compiled out of production runs) to
  exercise the service's timeout/cancellation contract.

Runs standalone as ``python -m repro.verify {smoke,fuzz,audit}`` and
backs the tier-1 fuzz/property tests.
"""

from repro.verify.faults import inject_token_faults
from repro.verify.gen import (
    GenConfig,
    QueryGenerator,
    QuerySpec,
    SchemaSpec,
    TableSpec,
    generate_schema,
)
from repro.verify.oracle import (
    FuzzFailure,
    FuzzReport,
    Mismatch,
    audit_node,
    audit_plan,
    check_query,
    full_matrix,
    normalized,
    run_audit_battery,
    run_fuzz,
    tier1_matrix,
)
from repro.verify.reference import reference_query
from repro.verify.shrink import ShrinkResult, shrink

__all__ = [
    "inject_token_faults",
    "GenConfig",
    "QueryGenerator",
    "QuerySpec",
    "SchemaSpec",
    "TableSpec",
    "generate_schema",
    "FuzzFailure",
    "FuzzReport",
    "Mismatch",
    "audit_node",
    "audit_plan",
    "check_query",
    "full_matrix",
    "normalized",
    "run_audit_battery",
    "run_fuzz",
    "tier1_matrix",
    "reference_query",
    "ShrinkResult",
    "shrink",
]
