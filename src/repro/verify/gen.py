"""Seeded random schema and query generators for differential testing.

Extracted and generalized from the original hand-rolled fuzz fixture in
``tests/integration/test_fuzz_queries.py``. A :class:`SchemaGen` builds a
star-shaped :class:`SchemaSpec` (one fact table, a configurable number of
child/dimension tables, randomized key, index, and partitioning shapes); a
:class:`QueryGenerator` then produces :class:`QuerySpec` values over that
schema covering joins (inner and left outer), filters, grouping with
every aggregate kind, DISTINCT, mixed-direction ORDER BY, FETCH FIRST,
UNION [ALL] and derived tables.

Everything is driven by ``random.Random(seed)`` with no dependence on
set/dict iteration order or hash randomization, so a fixed seed yields
byte-identical SQL across runs and interpreters — pinned by
``tests/verify/test_gen.py``. Refactors that change the draw sequence
change fuzz coverage and must do so consciously (the pin will fail).

:class:`QuerySpec` is deliberately structured (tables, conjuncts, order
keys as separate fields) rather than a SQL string so that
:mod:`repro.verify.shrink` can delta-debug failures clause by clause.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.catalog import (
    Column,
    Index,
    PartitionSpec,
    TableSchema,
    hash_spec,
    range_spec,
)
from repro.sqltypes import DATE, INTEGER, varchar
from repro.storage import Database


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GenConfig:
    """Knobs for schema and query generation.

    ``tables`` counts every table including the fact table; extra tables
    alternate between fk-children (joinable on the fact key) and
    dimensions (joinable on the fact's grouping column). ``row_scale``
    multiplies every table's row count (the CLI's ``--sf``).
    """

    tables: int = 3
    fact_rows: int = 30
    child_rows: int = 60
    dim_rows: int = 16
    row_scale: float = 1.0
    grp_domain: int = 4
    unions: bool = True
    derived: bool = True
    outer_joins: bool = True

    def scaled(self, count: int) -> int:
        return max(4, int(round(count * self.row_scale)))


# ----------------------------------------------------------------------
# Schema specification
# ----------------------------------------------------------------------


@dataclass
class TableSpec:
    """One generated table: schema, index shapes, and literal rows."""

    name: str
    columns: List[Column]
    rows: List[tuple]
    primary_key: Optional[Tuple[str, ...]] = None
    # (index name, columns, unique, clustered)
    indexes: List[Tuple[str, Tuple[str, ...], bool, bool]] = field(
        default_factory=list
    )
    role: str = "fact"  # fact | child | dim
    partitioning: Optional[PartitionSpec] = None

    @property
    def key_column(self) -> str:
        """The numeric join/order column for this table's role."""
        return {"fact": "id", "child": "rid", "dim": "g"}[self.role]

    @property
    def value_column(self) -> str:
        """The numeric aggregation column for this table's role."""
        return {"fact": "val", "child": "amt", "dim": "w"}[self.role]


@dataclass
class SchemaSpec:
    """A buildable database description (used by the shrinker to rebuild
    smaller databases with rows removed)."""

    tables: List[TableSpec]

    def build(self) -> Database:
        database = Database()
        for table in self.tables:
            database.create_table(
                TableSchema(
                    table.name,
                    list(table.columns),
                    primary_key=table.primary_key or (),
                    partitioning=table.partitioning,
                ),
                rows=list(table.rows),
            )
            for name, columns, unique, clustered in table.indexes:
                database.create_index(
                    Index.on(
                        name,
                        table.name,
                        list(columns),
                        unique=unique,
                        clustered=clustered,
                    )
                )
        return database

    def table(self, name: str) -> TableSpec:
        for table in self.tables:
            if table.name == name:
                return table
        raise KeyError(name)

    def with_rows(self, name: str, rows: Sequence[tuple]) -> "SchemaSpec":
        """A copy with ``name``'s rows replaced (shrinker support)."""
        tables = [
            replace(table, rows=list(rows))
            if table.name == name
            else table
            for table in self.tables
        ]
        return SchemaSpec(tables)

    @property
    def fact(self) -> TableSpec:
        return self.tables[0]

    def children(self) -> List[TableSpec]:
        return [t for t in self.tables if t.role == "child"]

    def dims(self) -> List[TableSpec]:
        return [t for t in self.tables if t.role == "dim"]


def generate_schema(seed: int, config: GenConfig = GenConfig()) -> SchemaSpec:
    """A seeded random star schema: fact table ``r`` plus children
    (``s``, ``s2``, ...) and dimensions (``u``, ``u2``, ...)."""
    # A str seed is hashed deterministically (sha512) regardless of
    # PYTHONHASHSEED; a tuple seed would not be.
    rng = random.Random(f"schema-{seed}")
    tables: List[TableSpec] = []

    fact_rows = config.scaled(config.fact_rows)
    grp_choices = list(range(config.grp_domain)) + [None]
    fact = TableSpec(
        name="r",
        columns=[
            Column("id", INTEGER, nullable=False),
            Column("grp", INTEGER),
            Column("val", INTEGER),
            # NOT NULL date: fuzzed date-part extraction (year(r.d))
            # exercises non-strict order dependencies.
            Column("d", DATE, nullable=False),
        ],
        rows=[
            (
                i,
                rng.choice(grp_choices),
                rng.randint(0, 50),
                datetime.date(
                    1992 + i % 7, 1 + (i * 5) % 12, 1 + (i * 3) % 28
                ),
            )
            for i in range(fact_rows)
        ],
        primary_key=("id",),
        indexes=[("r_id", ("id",), True, True)],
        role="fact",
    )
    if rng.random() < 0.7:
        fact.indexes.append(("r_grp", ("grp",), False, False))
    tables.append(fact)

    child_count = 0
    dim_count = 0
    for extra in range(max(0, config.tables - 1)):
        if extra % 2 == 0:
            child_count += 1
            tables.append(_child_table(rng, config, fact_rows, child_count))
        else:
            dim_count += 1
            tables.append(_dim_table(rng, config, dim_count))
    _assign_partitioning(seed, tables)
    return SchemaSpec(tables)


def _assign_partitioning(seed: int, tables: List[TableSpec]) -> None:
    """Hash- or range-partition a random subset of the fact/child tables.

    Draws from an rng stream *independent* of the schema rng so adding
    partitioning did not perturb the historical row/index draw sequence:
    a fixed seed still yields the same rows, indexes, and SQL corpus —
    only the tables' physical layout gained variety. Partition columns
    are always the table's join key, so declared primary keys remain
    enforceable by the per-partition trees (all rows sharing a key
    prefix land in one partition).
    """
    rng = random.Random(f"partition-{seed}")
    for table in tables:
        if table.role == "dim":
            continue  # tiny tables: partitioning is pure overhead
        roll = rng.random()
        if roll < 0.45:
            continue
        key = "id" if table.role == "fact" else "rid"
        count = rng.choice((2, 3, 4))
        values = sorted({row[0] for row in table.rows})
        if roll < 0.75 or len(values) < count:
            table.partitioning = hash_spec([key], count)
        else:
            step = len(values) // count
            boundaries = [values[step * i] for i in range(1, count)]
            table.partitioning = range_spec([key], boundaries)


def _child_table(
    rng: random.Random, config: GenConfig, fact_rows: int, ordinal: int
) -> TableSpec:
    name = "s" if ordinal == 1 else f"s{ordinal}"
    tags = ["a", "b", "c"]
    composite_key = rng.random() < 0.4
    if composite_key:
        # (rid, seq) primary key: dense fk values, 1-3 rows per rid.
        rows = []
        for rid in range(config.scaled(config.child_rows) // 2):
            for seq in range(rng.randint(1, 3)):
                rows.append(
                    (rid, seq, rng.choice(tags), rng.randint(1, 20))
                )
        columns = [
            Column("rid", INTEGER, nullable=False),
            Column("seq", INTEGER, nullable=False),
            Column("tag", varchar(4)),
            Column("amt", INTEGER),
        ]
        primary_key: Optional[Tuple[str, ...]] = ("rid", "seq")
    else:
        # Heap of fk rows; rids range past the fact's max id so joins
        # see dangling foreign keys.
        rows = [
            (
                rng.randint(0, fact_rows + fact_rows // 2),
                rng.choice(tags),
                rng.randint(1, 20),
            )
            for _ in range(config.scaled(config.child_rows))
        ]
        columns = [
            Column("rid", INTEGER, nullable=False),
            Column("tag", varchar(4)),
            Column("amt", INTEGER),
        ]
        primary_key = None
    indexes = []
    if rng.random() < 0.8:
        indexes.append(
            (f"{name}_rid", ("rid",), False, rng.random() < 0.7)
        )
    return TableSpec(
        name=name,
        columns=columns,
        rows=rows,
        primary_key=primary_key,
        indexes=indexes,
        role="child",
    )


def _dim_table(
    rng: random.Random, config: GenConfig, ordinal: int
) -> TableSpec:
    name = "u" if ordinal == 1 else f"u{ordinal}"
    rows = [
        (i % config.grp_domain, rng.randint(0, 9))
        for i in range(config.scaled(config.dim_rows))
    ]
    return TableSpec(
        name=name,
        columns=[
            Column("g", INTEGER, nullable=False),
            Column("w", INTEGER),
        ],
        rows=rows,
        primary_key=None,
        indexes=[],
        role="dim",
    )


# ----------------------------------------------------------------------
# Query specification
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QuerySpec:
    """One generated query in clause-structured form.

    ``raw`` holds the full SQL for UNION/derived-table queries, which do
    not decompose into this clause structure; the shrinker treats those
    opaquely. For everything else ``sql()`` renders the clauses.
    """

    tables: Tuple[str, ...] = ()
    # alias -> ON condition text, for LEFT OUTER JOINed tables.
    outer_on: Tuple[Tuple[str, str], ...] = ()
    join_filters: Tuple[str, ...] = ()
    filters: Tuple[str, ...] = ()
    select: Tuple[str, ...] = ()
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[str, ...] = ()
    distinct: bool = False
    order_by: Tuple[Tuple[str, bool], ...] = ()  # (expression, descending)
    fetch_first: Optional[int] = None
    raw: Optional[str] = None

    def sql(self) -> str:
        if self.raw is not None:
            return self.raw
        outer = dict(self.outer_on)
        from_parts: List[str] = []
        for table in self.tables:
            if table in outer:
                from_parts.append(f" left join {table} on {outer[table]}")
            elif from_parts:
                from_parts.append(f", {table}")
            else:
                from_parts.append(table)
        select_list = list(self.group_by) + list(self.aggregates)
        if not select_list:
            select_list = list(self.select)
        prefix = "distinct " if self.distinct else ""
        sql = f"select {prefix}{', '.join(select_list)} from " + "".join(
            from_parts
        )
        conjuncts = list(self.join_filters) + list(self.filters)
        if conjuncts:
            sql += " where " + " and ".join(conjuncts)
        if self.group_by:
            sql += " group by " + ", ".join(self.group_by)
        if self.order_by:
            rendered = [
                expression + (" desc" if descending else "")
                for expression, descending in self.order_by
            ]
            sql += " order by " + ", ".join(rendered)
        if self.fetch_first is not None:
            sql += f" fetch first {self.fetch_first} rows only"
        return sql

    def clause_count(self) -> int:
        """Structural clause count — the shrinker's minimality measure."""
        if self.raw is not None:
            return self.raw.lower().count("select") + len(
                self.raw.lower().split(" order by ")
            ) - 1
        return (
            len(self.tables)
            + len(self.join_filters)
            + len(self.filters)
            + len(self.group_by)
            + len(self.aggregates)
            + int(self.distinct)
            + len(self.order_by)
            + int(self.fetch_first is not None)
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.sql()


# ----------------------------------------------------------------------
# Query generation
# ----------------------------------------------------------------------


class QueryGenerator:
    """Seeded random single-block/UNION/derived query generator over a
    generated :class:`SchemaSpec`."""

    def __init__(
        self,
        schema: SchemaSpec,
        seed: int,
        config: GenConfig = GenConfig(),
    ):
        self.schema = schema
        self.config = config
        self.rng = random.Random(f"query-{seed}")

    # -- public ---------------------------------------------------------

    def generate(self) -> QuerySpec:
        rng = self.rng
        children = self.schema.children()
        dims = self.schema.dims()
        if self.config.unions and children and rng.random() < 0.12:
            return self._generate_union()
        if self.config.derived and children and rng.random() < 0.12:
            return self._generate_derived()

        shapes = ["single", "single"]
        if children:
            shapes += ["join", "join"]
            if self.config.outer_joins:
                shapes.append("outer")
        if children and dims:
            shapes.append("triple")
        shape = rng.choice(shapes)

        fact = self.schema.fact
        tables: List[str] = [fact.name]
        outer_on: List[Tuple[str, str]] = []
        join_filters: List[str] = []
        columns = [
            f"{fact.name}.id",
            f"{fact.name}.grp",
            f"{fact.name}.val",
            f"{fact.name}.d",
        ]
        child = children[0] if children else None
        if shape in ("join", "outer", "triple"):
            tables.append(child.name)
            columns += [f"{child.name}.tag", f"{child.name}.amt"]
            join_condition = f"{fact.name}.id = {child.name}.rid"
            if rng.random() < 0.15:
                # Monotone-wrapped join key: same join semantics, but
                # the planner sees an expression equality instead of a
                # column equality.
                join_condition = f"{fact.name}.id + 1 = {child.name}.rid + 1"
            if shape == "outer":
                outer_on.append((child.name, join_condition))
            else:
                join_filters.append(join_condition)
        if shape == "triple":
            dim = dims[0]
            tables.append(dim.name)
            columns = [
                f"{fact.name}.id",
                f"{fact.name}.grp",
                f"{child.name}.amt",
                f"{dim.name}.w",
            ]
            join_filters.append(f"{fact.name}.grp = {dim.name}.g")

        filters = self._filters(shape, child)
        group_by, select, aggregates, order_candidates = self._select(
            shape, columns
        )
        distinct = bool(
            not group_by and not aggregates and rng.random() < 0.2
        )
        order_by: Tuple[Tuple[str, bool], ...] = ()
        fetch_first = None
        if order_candidates and rng.random() < 0.8:
            count = rng.randint(1, min(2, len(order_candidates)))
            keys = rng.sample(order_candidates, count)
            order_by = tuple(
                (key, rng.random() < 0.4) for key in keys
            )
            if rng.random() < 0.25:
                fetch_first = rng.randint(1, 8)
        return QuerySpec(
            tables=tuple(tables),
            outer_on=tuple(outer_on),
            join_filters=tuple(join_filters),
            filters=tuple(filters),
            select=tuple(select),
            group_by=tuple(group_by),
            aggregates=tuple(aggregates),
            distinct=distinct,
            order_by=order_by,
            fetch_first=fetch_first,
        )

    # -- internals ------------------------------------------------------

    def _filters(self, shape: str, child) -> List[str]:
        rng = self.rng
        fact = self.schema.fact.name
        domain = self.config.grp_domain
        options = [
            f"{fact}.val > 25",
            f"{fact}.val between 10 and 40",
            f"{fact}.grp = {rng.randrange(domain)}",
            f"{fact}.grp is null",
            f"{fact}.grp is not null",
            f"{fact}.id < 20",
        ]
        if shape in ("join", "outer", "triple"):
            options += [
                f"{child.name}.amt > 10",
                f"{child.name}.tag in ('a', 'b')",
                f"{child.name}.tag = 'c'",
            ]
        return rng.sample(options, rng.randint(0, 2))

    def _select(self, shape: str, columns: List[str]):
        rng = self.rng
        if rng.random() < 0.4:
            # Aggregation query: group on non-value columns.
            group_by = rng.sample(
                [c for c in columns if "amt" not in c and "val" not in c],
                rng.randint(1, 2),
            )
            value = next(
                (c for c in columns if c.endswith(".amt")),
                f"{self.schema.fact.name}.val",
            )
            aggregates = rng.sample(
                [
                    "count(*) as n",
                    f"sum({value}) as total",
                    f"min({value}) as lo",
                    f"max({value}) as hi",
                    f"avg({value}) as mean",
                    f"count(distinct {value}) as nd",
                ],
                rng.randint(1, 2),
            )
            order_candidates = group_by + [
                a.split(" as ")[1] for a in aggregates
            ]
            return group_by, [], aggregates, order_candidates
        chosen = rng.sample(columns, rng.randint(1, len(columns)))
        order_candidates = list(chosen)
        if rng.random() < 0.35:
            # Monotonic derived select item, orderable via its alias —
            # exercises order-dependency harvesting and the
            # post-projection sort fallback when ODs are off.
            fact = self.schema.fact.name
            derived = [
                (f"{fact}.val + 3 as vplus", "vplus"),
                (f"2 * {fact}.val as vdub", "vdub"),
                # id is NOT NULL, so the direction-flipping edge is
                # harvestable despite the NULL-ordering gate.
                (f"30 - {fact}.id as idrev", "idrev"),
                (f"year({fact}.d) as dy", "dy"),
                (f"month({fact}.d) as dm", "dm"),
            ]
            if shape in ("join", "outer", "triple"):
                child = self.schema.children()[0].name
                derived.append((f"{child}.amt + 5 as aplus", "aplus"))
            item, alias = rng.choice(derived)
            chosen = chosen + [item]
            order_candidates.append(alias)
        return [], chosen, [], order_candidates

    def _generate_union(self) -> QuerySpec:
        rng = self.rng
        fact = self.schema.fact.name
        child = self.schema.children()[0].name
        all_kw = " all" if rng.random() < 0.5 else ""
        left = rng.choice(
            [f"select id, val from {fact}", f"select rid, amt from {child}"]
        )
        rights = [
            f"select rid, amt from {child} where amt > 5",
            f"select id, val from {fact} where val < 30",
        ]
        if self.schema.dims():
            rights.append(f"select g, w from {self.schema.dims()[0].name}")
        right = rng.choice(rights)
        sql = f"{left} union{all_kw} {right}"
        if rng.random() < 0.7:
            direction = " desc" if rng.random() < 0.4 else ""
            sql += f" order by 1{direction}, 2"
        return QuerySpec(raw=sql)

    def _generate_derived(self) -> QuerySpec:
        rng = self.rng
        fact = self.schema.fact.name
        child = self.schema.children()[0].name
        view = rng.choice(
            [
                f"(select rid, count(*) as n, sum(amt) as total "
                f"from {child} group by rid)",
                f"(select distinct tag, rid from {child})",
                f"(select grp, max(val) as hi from {fact} group by grp)",
                # Computed monotonic view columns: the first merges into
                # the parent block, the second stays derived and lets
                # the outer ORDER BY push through the view head.
                f"(select rid, amt + 1 as a1 from {child})",
                f"(select val + 1 as g2, count(*) as n2 "
                f"from {fact} group by val)",
            ]
        )
        if "g2" in view:
            columns = ["v.g2", "v.n2"]
        elif "a1" in view:
            columns = ["v.rid", "v.a1"]
        elif "as n" in view:
            columns = ["v.rid", "v.n", "v.total"]
        elif "tag" in view:
            columns = ["v.tag", "v.rid"]
        else:
            columns = ["v.grp", "v.hi"]
        chosen = rng.sample(columns, rng.randint(1, len(columns)))
        sql = f"select {', '.join(chosen)} from {view} v"
        if rng.random() < 0.5 and "v.rid" in columns:
            sql = (
                f"select {fact}.id, {', '.join(chosen)} from {view} v, "
                f"{fact} where v.rid = {fact}.id"
            )
            chosen = [f"{fact}.id"] + chosen
        if rng.random() < 0.7:
            key = rng.choice(chosen)
            direction = " desc" if rng.random() < 0.4 else ""
            sql += f" order by {key}{direction}"
        return QuerySpec(raw=sql)
