"""Delta-debugging minimizer for oracle failures.

Given a schema and a failing :class:`~repro.verify.gen.QuerySpec`, the
shrinker repeatedly tries structural edits — dropping filter conjuncts,
order keys, aggregates, grouping, DISTINCT, FETCH FIRST, whole joined
tables — and then ddmin-style row removal per table, keeping every edit
under which the failure (same mismatch kinds, ignoring incidental
errors) still reproduces. The result is a minimal failing repro plus a
ready-to-paste pytest case (:meth:`ShrinkResult.pytest_case`), so a
fuzz finding lands in the tree as a named regression test rather than a
seed number.

The failure signature is the set of non-``error`` mismatch kinds (or
``{"error"}`` when the original failure *is* an engine crash): an edit
that merely turns a wrong-rows failure into a parse error is rejected,
otherwise shrinking would walk toward trivially broken SQL.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.optimizer import OptimizerConfig
from repro.sqltypes.types import DateType, VarcharType
from repro.verify.gen import QuerySpec, SchemaSpec
from repro.verify.oracle import Mismatch, check_query, full_matrix


@dataclass
class ShrinkResult:
    """The minimal failing (schema, query) pair the shrinker reached."""

    schema: SchemaSpec
    spec: QuerySpec
    mismatches: List[Mismatch]
    trials: int

    @property
    def sql(self) -> str:
        return self.spec.sql()

    def pytest_case(self, name: str = "test_shrunk_repro") -> str:
        """A self-contained pytest function reproducing the failure."""
        used = _used_tables(self.schema, self.spec)
        lines = [
            f"def {name}():",
            "    import datetime",
            "",
            "    from repro import Column, Database, Index, TableSchema",
            "    from repro.sqltypes import DATE, INTEGER, varchar",
            "    from repro.verify.oracle import check_query, full_matrix",
            "",
            "    db = Database()",
        ]
        for table in self.schema.tables:
            if table.name not in used:
                continue
            columns = ", ".join(
                _render_column(column) for column in table.columns
            )
            pk = (
                f", primary_key={tuple(table.primary_key)!r}"
                if table.primary_key
                else ""
            )
            lines.append(
                f"    db.create_table(TableSchema({table.name!r}, "
                f"[{columns}]{pk}),"
            )
            lines.append(f"        rows={list(table.rows)!r})")
            for index_name, index_columns, unique, clustered in table.indexes:
                lines.append(
                    f"    db.create_index(Index.on({index_name!r}, "
                    f"{table.name!r}, {list(index_columns)!r}, "
                    f"unique={unique}, clustered={clustered}))"
                )
        lines += [
            f"    sql = {self.sql!r}",
            "    assert not check_query(db, sql, full_matrix())",
            "",
        ]
        return "\n".join(lines)


def _render_column(column) -> str:
    if isinstance(column.datatype, VarcharType):
        datatype = f"varchar({column.datatype.max_length})"
    elif isinstance(column.datatype, DateType):
        datatype = "DATE"
    else:
        datatype = "INTEGER"
    nullable = "" if column.nullable else ", nullable=False"
    return f"Column({column.name!r}, {datatype}{nullable})"


def _used_tables(schema: SchemaSpec, spec: QuerySpec) -> FrozenSet[str]:
    if spec.raw is None:
        return frozenset(spec.tables)
    sql = spec.raw.lower()
    return frozenset(
        table.name
        for table in schema.tables
        if f" {table.name}" in sql or f"from {table.name}" in sql
    )


# ----------------------------------------------------------------------
# The shrinking loop
# ----------------------------------------------------------------------


def shrink(
    schema: SchemaSpec,
    spec: QuerySpec,
    configs: Optional[Dict[str, OptimizerConfig]] = None,
    max_trials: int = 2000,
) -> ShrinkResult:
    """Minimize a failing (schema, spec) pair under ``configs``."""
    if configs is None:
        configs = full_matrix()

    trials = [0]

    def failure(
        candidate_schema: SchemaSpec, candidate_spec: QuerySpec
    ) -> List[Mismatch]:
        trials[0] += 1
        try:
            database = candidate_schema.build()
            return check_query(database, candidate_spec.sql(), configs)
        except Exception:
            # A schema/spec the engine cannot even build is not a valid
            # reduction of the original failure.
            return []

    original = failure(schema, spec)
    if not original:
        raise ValueError("shrink() called on a non-failing query")
    signature = _signature(original)

    def still_fails(
        candidate_schema: SchemaSpec, candidate_spec: QuerySpec
    ) -> Optional[List[Mismatch]]:
        if trials[0] >= max_trials:
            return None
        mismatches = failure(candidate_schema, candidate_spec)
        if mismatches and _signature(mismatches) & signature:
            return mismatches
        return None

    current = original
    # Alternate clause and row shrinking until a full pass changes
    # nothing (clause drops can unlock row drops and vice versa).
    changed = True
    while changed and trials[0] < max_trials:
        changed = False
        spec, current, spec_changed = _shrink_clauses(
            schema, spec, current, still_fails
        )
        changed = changed or spec_changed
        schema, current, rows_changed = _shrink_rows(
            schema, spec, current, still_fails
        )
        changed = changed or rows_changed
    return ShrinkResult(schema, spec, current, trials[0])


def _signature(mismatches: Sequence[Mismatch]) -> FrozenSet[str]:
    kinds = frozenset(m.kind for m in mismatches) - {"error"}
    return kinds or frozenset({"error"})


def _shrink_clauses(
    schema: SchemaSpec,
    spec: QuerySpec,
    current: List[Mismatch],
    still_fails: Callable,
):
    changed = False
    progress = True
    while progress:
        progress = False
        for candidate in _clause_edits(schema, spec):
            mismatches = still_fails(schema, candidate)
            if mismatches is not None:
                spec, current = candidate, mismatches
                progress = changed = True
                break
    return spec, current, changed


def _clause_edits(schema: SchemaSpec, spec: QuerySpec):
    """Candidate one-step reductions of ``spec``, most aggressive first."""
    if spec.raw is not None:
        yield from _raw_edits(spec)
        return

    # Drop whole joined tables (never the first FROM entry).
    for table in spec.tables[1:]:
        yield _without_table(schema, spec, table)
    if spec.fetch_first is not None:
        yield replace(spec, fetch_first=None)
    if spec.distinct:
        yield replace(spec, distinct=False)
    # Drop the aggregation wholesale (grouped query becomes a plain
    # projection of its former grouping columns).
    if spec.group_by or spec.aggregates:
        yield replace(
            spec,
            group_by=(),
            aggregates=(),
            select=spec.group_by or (_any_column(schema, spec),),
            order_by=tuple(
                key
                for key in spec.order_by
                if key[0] in spec.group_by
            ),
        )
    for index in range(len(spec.filters)):
        yield replace(
            spec,
            filters=spec.filters[:index] + spec.filters[index + 1 :],
        )
    for index in range(len(spec.aggregates)):
        if len(spec.aggregates) > 1 or spec.group_by:
            kept = spec.aggregates[:index] + spec.aggregates[index + 1 :]
            dropped_alias = spec.aggregates[index].split(" as ")[-1]
            yield replace(
                spec,
                aggregates=kept,
                order_by=tuple(
                    key
                    for key in spec.order_by
                    if key[0] != dropped_alias
                ),
            )
    for index in range(len(spec.order_by)):
        yield replace(
            spec,
            order_by=spec.order_by[:index] + spec.order_by[index + 1 :],
        )
    if len(spec.select) > 1:
        for index in range(len(spec.select)):
            dropped = spec.select[index]
            if any(key[0] == dropped for key in spec.order_by):
                continue  # keep ORDER BY targets selected
            yield replace(
                spec,
                select=spec.select[:index] + spec.select[index + 1 :],
            )


def _raw_edits(spec: QuerySpec):
    """Coarse reductions for opaque UNION/derived-table SQL."""
    sql = spec.raw
    lowered = sql.lower()
    if " order by " in lowered:
        yield replace(spec, raw=sql[: lowered.index(" order by ")])
    for separator in (" union all ", " union "):
        if separator in lowered:
            cut = lowered.index(separator)
            yield replace(spec, raw=sql[:cut])
            yield replace(spec, raw=sql[cut + len(separator) :])
            break


def _without_table(
    schema: SchemaSpec, spec: QuerySpec, table: str
) -> QuerySpec:
    prefix = f"{table}."
    mentions = lambda text: prefix in text
    tables = tuple(t for t in spec.tables if t != table)
    select = tuple(c for c in spec.select if not mentions(c))
    group_by = tuple(c for c in spec.group_by if not mentions(c))
    aggregates = tuple(a for a in spec.aggregates if not mentions(a))
    dropped_aliases = {
        a.split(" as ")[-1] for a in spec.aggregates if mentions(a)
    }
    order_by = tuple(
        key
        for key in spec.order_by
        if not mentions(key[0]) and key[0] not in dropped_aliases
    )
    if not (select or group_by or aggregates):
        select = (_first_column(schema, tables[0]),)
    return replace(
        spec,
        tables=tables,
        outer_on=tuple(
            entry for entry in spec.outer_on if entry[0] != table
        ),
        join_filters=tuple(
            c for c in spec.join_filters if not mentions(c)
        ),
        filters=tuple(c for c in spec.filters if not mentions(c)),
        select=select,
        group_by=group_by,
        aggregates=aggregates,
        order_by=order_by,
    )


def _first_column(schema: SchemaSpec, table: str) -> str:
    return f"{table}.{schema.table(table).columns[0].name}"


def _any_column(schema: SchemaSpec, spec: QuerySpec) -> str:
    return _first_column(schema, spec.tables[0])


def _shrink_rows(
    schema: SchemaSpec,
    spec: QuerySpec,
    current: List[Mismatch],
    still_fails: Callable,
):
    """ddmin-style row removal, each table independently."""
    changed = False
    for table in [t.name for t in schema.tables]:
        rows = list(schema.table(table).rows)
        chunk = max(1, len(rows) // 2)
        while True:
            index = 0
            while index < len(rows):
                candidate_rows = rows[:index] + rows[index + chunk :]
                candidate = schema.with_rows(table, candidate_rows)
                mismatches = still_fails(candidate, spec)
                if mismatches is not None:
                    rows = candidate_rows
                    schema, current = candidate, mismatches
                    changed = True
                else:
                    index += chunk
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return schema, current, changed
