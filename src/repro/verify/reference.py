"""A naive reference evaluator used as the differential-testing oracle.

Evaluates a :class:`~repro.qgm.block.QueryBlock` by brute force:
Cartesian product, predicate filter, hash grouping, then sorting — no
optimizer, no indexes, no cleverness. Slow but obviously correct.

NULL-ordering convention
------------------------
Every comparison of row values in this module — sorting, grouping,
DISTINCT, UNION dedup — goes through
:func:`repro.sqltypes.values.sort_key`, the single documented total
order: NULLs sort *after* all non-NULL values ascending and therefore
*first* descending (DB2 sorts NULLs high). The executor's sort operators
use the same function, so the reference and the engine cannot drift;
``tests/verify/test_reference_nulls.py`` pins the placement on both
sides. Never compare or hash raw row values here — always ``sort_key``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.executor.aggregate import _Accumulator, _COUNT_STAR
from repro.expr.evaluate import evaluate, evaluate_predicate
from repro.expr.nodes import ColumnRef
from repro.expr.schema import RowSchema
from repro.core.ordering import SortDirection
from repro.qgm.block import QueryBlock
from repro.sqltypes import sort_key
from repro.storage import Database


def evaluate_block(database: Database, block: QueryBlock) -> List[tuple]:
    """Evaluate ``block`` naively and return its rows (sorted per the
    block's ORDER BY; unordered otherwise)."""
    schema, rows = _cartesian(database, block)
    if block.predicate is not None:
        rows = [
            row
            for row in rows
            if evaluate_predicate(block.predicate, schema, row)
        ]
    if block.has_group_by():
        schema, rows = _group(schema, rows, block)
    if block.having is not None:
        rows = [
            row
            for row in rows
            if evaluate_predicate(block.having, schema, row)
        ]
    items = _unique_items(block)
    visible = len(items)
    # ORDER BY may reference columns outside the select list; carry them
    # as hidden trailing columns and strip after sorting.
    present = {item.output for item in items}
    hidden = [
        key.column
        for key in block.order_by
        if key.column not in present
    ]
    out_schema = RowSchema([item.output for item in items] + hidden)
    projected = [
        tuple(evaluate(item.expression, schema, row) for item in items)
        + tuple(evaluate(column, schema, row) for column in hidden)
        for row in rows
    ]
    if block.distinct:
        seen = set()
        deduped = []
        for row in projected:
            marker = tuple(sort_key(value) for value in row)
            if marker in seen:
                continue
            seen.add(marker)
            deduped.append(row)
        projected = deduped
    if not block.order_by.is_empty():
        plan = []
        for key in block.order_by:
            position = out_schema.position(key.column)
            plan.append((position, key.direction is SortDirection.DESC))
        projected.sort(
            key=lambda row: tuple(
                sort_key(row[position], descending)
                for position, descending in plan
            )
        )
    if block.fetch_first is not None:
        projected = projected[: block.fetch_first]
    if hidden:
        projected = [row[:visible] for row in projected]
    return projected


def _unique_items(block: QueryBlock):
    seen = set()
    unique = []
    for item in block.select_items:
        if item.output in seen:
            continue
        seen.add(item.output)
        unique.append(item)
    return unique


def _cartesian(
    database: Database, block: QueryBlock
) -> Tuple[RowSchema, List[tuple]]:
    """FROM-clause evaluation: Cartesian for comma joins, sequential
    LEFT OUTER JOIN with padding for outer-joined entries."""
    schema_columns: List[ColumnRef] = []
    rows: List[tuple] = [()]
    for alias, table_name in block.tables.items():
        if block.is_derived(alias):
            table_columns, table_rows = _derived_rows(
                database, alias, block.derived[alias]
            )
        else:
            table = database.catalog.table(table_name)
            table_columns = [
                ColumnRef(alias, column.name) for column in table.columns
            ]
            table_rows = [
                row for _rid, row in database.store(table_name).heap.scan()
            ]
        on_predicate = block.outer_joins.get(alias)
        if on_predicate is None:
            rows = [
                existing + candidate
                for existing in rows
                for candidate in table_rows
            ]
        else:
            joined_schema = RowSchema(schema_columns + table_columns)
            padding = (None,) * len(table_columns)
            joined_rows: List[tuple] = []
            for existing in rows:
                matched = False
                for candidate in table_rows:
                    combined = existing + candidate
                    if evaluate_predicate(
                        on_predicate, joined_schema, combined
                    ):
                        matched = True
                        joined_rows.append(combined)
                if not matched:
                    joined_rows.append(existing + padding)
            rows = joined_rows
        schema_columns.extend(table_columns)
    return RowSchema(schema_columns), rows


def _derived_rows(database: Database, alias: str, box):
    """Evaluate a derived table and expose its columns as alias.name."""
    from repro.qgm import normalize as qgm_normalize
    from repro.qgm.boxes import UnionBox

    if isinstance(box, UnionBox):
        rows = _evaluate_union(database, box)
        names = [item.name for item in box.output_items()]
    else:
        inner_block = qgm_normalize(box)
        rows = evaluate_block(database, inner_block)
        seen = set()
        names = []
        for item in inner_block.select_items:
            if item.output in seen:
                continue
            seen.add(item.output)
            names.append(item.name)
    columns = [ColumnRef(alias, name) for name in names]
    return columns, rows


def _group(
    schema: RowSchema, rows: Sequence[tuple], block: QueryBlock
) -> Tuple[RowSchema, List[tuple]]:
    out_columns = list(block.group_columns) + [
        ColumnRef("", name) for name, _agg in block.aggregates
    ]
    out_schema = RowSchema(out_columns)
    positions = [schema.position(column) for column in block.group_columns]
    groups: Dict[tuple, Tuple[tuple, list]] = {}
    for row in rows:
        raw = tuple(row[position] for position in positions)
        marker = tuple(sort_key(value) for value in raw)
        entry = groups.get(marker)
        if entry is None:
            accumulators = [
                _Accumulator(aggregate.kind, aggregate.distinct)
                for _name, aggregate in block.aggregates
            ]
            entry = (raw, accumulators)
            groups[marker] = entry
        for accumulator, (_name, aggregate) in zip(
            entry[1], block.aggregates
        ):
            if aggregate.argument is None:
                accumulator.add(_COUNT_STAR)
            else:
                accumulator.add(evaluate(aggregate.argument, schema, row))
    if not groups and not block.group_columns:
        accumulators = [
            _Accumulator(aggregate.kind, aggregate.distinct)
            for _name, aggregate in block.aggregates
        ]
        return out_schema, [tuple(acc.result() for acc in accumulators)]
    out_rows = [
        raw + tuple(accumulator.result() for accumulator in accumulators)
        for raw, accumulators in groups.values()
    ]
    return out_schema, out_rows


def reference_query(database: Database, sql: str) -> List[tuple]:
    """Parse + rewrite + naively evaluate ``sql`` (UNIONs included)."""
    from repro.parser import parse_query
    from repro.qgm import normalize, rewrite
    from repro.qgm.boxes import UnionBox

    box = rewrite(parse_query(sql, database.catalog))
    if isinstance(box, UnionBox):
        return _evaluate_union(database, box)
    return evaluate_block(database, normalize(box))


def _evaluate_union(database: Database, union) -> List[tuple]:
    from repro.qgm import normalize

    rows: List[tuple] = []
    for branch in union.branches:
        rows.extend(evaluate_block(database, normalize(branch)))
    if not union.all_rows:
        seen = set()
        deduped = []
        for row in rows:
            key = tuple(sort_key(value) for value in row)
            if key in seen:
                continue
            seen.add(key)
            deduped.append(row)
        rows = deduped
    if not union.output_order.is_empty():
        outputs = [item.output for item in union.output_items()]
        positions = {column: index for index, column in enumerate(outputs)}
        plan = [
            (positions[key.column], key.direction is SortDirection.DESC)
            for key in union.output_order
        ]
        rows.sort(
            key=lambda row: tuple(
                sort_key(row[position], descending)
                for position, descending in plan
            )
        )
    if union.fetch_first is not None:
        rows = rows[: union.fetch_first]
    return rows
