"""Cost model and cardinality estimation.

Stands in for DB2's cost estimates (Section 8: "an optimizer would simply
pick a better alternative using its cost estimates"). Costs separate I/O
from CPU so the ordered-nested-loop-join effect — sequential, prefetch-
friendly probes instead of random ones — is visible to plan choice.
"""

from repro.cost.model import Cost, CostModel
from repro.cost.estimate import (
    SelectivityEstimator,
    StatsView,
    join_selectivity,
)

__all__ = [
    "Cost",
    "CostModel",
    "SelectivityEstimator",
    "StatsView",
    "join_selectivity",
]
