"""Cardinality estimation: System-R style selectivities from statistics."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from repro.catalog import ColumnStats, TableSchema
from repro.expr.analysis import conjuncts_of
from repro.expr.nodes import (
    BooleanExpr,
    BooleanOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Parameter,
)

DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_OTHER_SELECTIVITY = 0.5


class StatsView:
    """Maps qualified column references to their base-table statistics."""

    def __init__(self, tables_by_alias: Dict[str, TableSchema]):
        self._tables = dict(tables_by_alias)

    def table(self, alias: str) -> Optional[TableSchema]:
        return self._tables.get(alias)

    def column_stats(self, column: ColumnRef) -> Optional[ColumnStats]:
        table = self._tables.get(column.qualifier)
        if table is None or not table.has_column(column.name):
            return None
        return table.stats.column(column.name)

    def row_count(self, alias: str) -> int:
        table = self._tables.get(alias)
        return table.stats.row_count if table is not None else 0

    def joint_ndv(self, columns: Sequence[ColumnRef]) -> Optional[float]:
        """Joint distinct-combination estimate for a column set.

        Answers only when every column resolves to the *same* base
        table (the row sample is per-table); the caller falls back to
        the independence product otherwise.
        """
        qualifiers = {column.qualifier for column in columns}
        if len(qualifiers) != 1:
            return None
        table = self._tables.get(next(iter(qualifiers)))
        if table is None:
            return None
        return table.stats.joint_ndv(
            [column.name for column in columns]
        )

    def aliases(self) -> Iterable[str]:
        return self._tables.keys()


class SelectivityEstimator:
    """Estimates predicate selectivities from a :class:`StatsView`."""

    def __init__(self, stats: StatsView):
        self.stats = stats

    def selectivity(self, predicate: Optional[Expression]) -> float:
        """Selectivity of an arbitrary predicate (conjuncts multiply)."""
        if predicate is None:
            return 1.0
        result = 1.0
        for conjunct in conjuncts_of(predicate):
            result *= self._conjunct_selectivity(conjunct)
        return max(1e-9, min(1.0, result))

    def _conjunct_selectivity(self, predicate: Expression) -> float:
        if isinstance(predicate, BooleanExpr) and predicate.op is BooleanOp.OR:
            # Independence-union bound.
            miss = 1.0
            for operand in predicate.operands:
                miss *= 1.0 - self.selectivity(operand)
            return 1.0 - miss
        if isinstance(predicate, Not):
            return max(0.0, 1.0 - self.selectivity(predicate.operand))
        if isinstance(predicate, IsNull):
            return DEFAULT_EQ_SELECTIVITY
        if isinstance(predicate, InList):
            if isinstance(predicate.operand, ColumnRef):
                single = self._equality_selectivity(predicate.operand)
                return min(1.0, single * max(1, len(predicate.values)))
            return DEFAULT_OTHER_SELECTIVITY
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate)
        return DEFAULT_OTHER_SELECTIVITY

    def _comparison_selectivity(self, predicate: Comparison) -> float:
        left, right, op = predicate.left, predicate.right, predicate.op
        if isinstance(left, (Literal, Parameter)) and isinstance(
            right, ColumnRef
        ):
            left, right = right, left
            op = op.flipped()
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            if op is ComparisonOp.EQ:
                return self._equality_selectivity(left)
            if op is ComparisonOp.NE:
                return max(0.0, 1.0 - self._equality_selectivity(left))
            return self._range_selectivity(left, op, right.value)
        if isinstance(left, ColumnRef) and isinstance(right, Parameter):
            # Host variable: an unknown constant (§4.1). Equality keeps
            # the 1/NDV uniform-value estimate; ranges get the classic
            # System-R magic fraction since the cutpoint is unknown.
            if op is ComparisonOp.EQ:
                return self._equality_selectivity(left)
            if op is ComparisonOp.NE:
                return max(0.0, 1.0 - self._equality_selectivity(left))
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            if op is ComparisonOp.EQ:
                return join_selectivity(
                    self.stats.column_stats(left),
                    self.stats.column_stats(right),
                )
            return DEFAULT_RANGE_SELECTIVITY
        return DEFAULT_OTHER_SELECTIVITY

    def _equality_selectivity(self, column: ColumnRef) -> float:
        stats = self.stats.column_stats(column)
        if stats is None or stats.ndv <= 0:
            return DEFAULT_EQ_SELECTIVITY
        return 1.0 / stats.ndv

    def _range_selectivity(
        self, column: ColumnRef, op: ComparisonOp, value: Any
    ) -> float:
        stats = self.stats.column_stats(column)
        if stats is None:
            return DEFAULT_RANGE_SELECTIVITY
        if op in (ComparisonOp.LT, ComparisonOp.LE):
            return stats.selectivity_range(None, value)
        return stats.selectivity_range(value, None)


def term_selectivity_hints(
    predicate: Expression, estimator: SelectivityEstimator
) -> Dict[Expression, float]:
    """Per-subtree selectivity estimates for a filter predicate.

    Covers the predicate itself plus every AND/OR operand and NOT
    operand, recursively — exactly the terms the vector engine's
    cost-ordered evaluation (:mod:`repro.expr.vector`) can reorder.
    The estimates only seed the ordering; observed per-batch
    selectivities take over once enough rows have flowed.
    """
    hints: Dict[Expression, float] = {}

    def record(expression: Expression) -> None:
        hints[expression] = estimator.selectivity(expression)
        if isinstance(expression, BooleanExpr):
            for operand in expression.operands:
                record(operand)
        elif isinstance(expression, Not):
            record(expression.operand)

    record(predicate)
    return hints


def join_selectivity(
    left: Optional[ColumnStats], right: Optional[ColumnStats]
) -> float:
    """Selectivity of an equi-join predicate: 1 / max(NDV_l, NDV_r)."""
    candidates = [
        stats.ndv for stats in (left, right) if stats is not None and stats.ndv > 0
    ]
    if not candidates:
        return DEFAULT_EQ_SELECTIVITY
    return 1.0 / max(candidates)
