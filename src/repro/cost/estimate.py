"""Cardinality estimation: System-R style selectivities from statistics."""

from __future__ import annotations

from dataclasses import replace as _replace
from typing import Any, Dict, Iterable, Optional, Sequence, Union

from repro.catalog import ColumnStats, StatsOverrides, TableSchema
from repro.expr.analysis import conjuncts_of
from repro.expr.nodes import (
    BooleanExpr,
    BooleanOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Parameter,
)

DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_OTHER_SELECTIVITY = 0.5


def predicate_fingerprint(predicate: Expression) -> str:
    """Stable text form of one predicate's *parameterized* shape.

    Every expression node renders deterministically via ``__str__``,
    and host variables render as ``:name`` — so all bindings of one
    auto-parameterized statement class share a fingerprint. Feedback
    selectivity overrides key on this: a plan-time estimate can never
    depend on one binding's value (plans are cached and re-bound), so
    the override must summarize the whole statement class.
    """
    return str(predicate)


def conjunction_fingerprint(
    predicate: Union[Expression, Sequence[Expression], None]
) -> Optional[str]:
    """Order-insensitive fingerprint of a conjunction.

    Accepts a single predicate (flattened through its AND structure) or
    a sequence of conjuncts; both forms of the same condition — one
    combined ``AND`` expression in a FILTER node versus the planner's
    list of local predicates — map to the same key.
    """
    if predicate is None:
        return None
    if isinstance(predicate, Expression):
        conjuncts = conjuncts_of(predicate)
    else:
        conjuncts = []
        for part in predicate:
            conjuncts.extend(conjuncts_of(part))
    if not conjuncts:
        return None
    return " & ".join(sorted(predicate_fingerprint(c) for c in conjuncts))


class StatsView:
    """Maps qualified column references to their base-table statistics.

    When constructed with the catalog's :class:`StatsOverrides`, the
    view splices workload-feedback corrections in front of the
    collected statistics: NDV overrides replace ``ColumnStats.ndv``,
    joint-NDV overrides answer before the sample-based estimator, and
    observed selectivities are exposed for the estimator's
    fingerprint lookup.
    """

    def __init__(
        self,
        tables_by_alias: Dict[str, TableSchema],
        overrides: Optional[StatsOverrides] = None,
    ):
        self._tables = dict(tables_by_alias)
        self._overrides = overrides
        self._adjusted: Dict[Any, ColumnStats] = {}

    def table(self, alias: str) -> Optional[TableSchema]:
        return self._tables.get(alias)

    def column_stats(self, column: ColumnRef) -> Optional[ColumnStats]:
        table = self._tables.get(column.qualifier)
        if table is None or not table.has_column(column.name):
            return None
        stats = table.stats.column(column.name)
        if self._overrides is not None:
            adjusted = self._overrides.ndv(table.name, column.name)
            if adjusted is not None:
                key = (table.name, column.name)
                cached = self._adjusted.get(key)
                if cached is None:
                    cached = _replace(stats, ndv=max(1, round(adjusted)))
                    self._adjusted[key] = cached
                return cached
        return stats

    def row_count(self, alias: str) -> int:
        table = self._tables.get(alias)
        return table.stats.row_count if table is not None else 0

    def joint_ndv(self, columns: Sequence[ColumnRef]) -> Optional[float]:
        """Joint distinct-combination estimate for a column set.

        Answers only when every column resolves to the *same* base
        table (the row sample is per-table); the caller falls back to
        the independence product otherwise.
        """
        qualifiers = {column.qualifier for column in columns}
        if len(qualifiers) != 1:
            return None
        table = self._tables.get(next(iter(qualifiers)))
        if table is None:
            return None
        names = [column.name for column in columns]
        if self._overrides is not None:
            observed = self._overrides.joint_ndv(table.name, names)
            if observed is not None:
                return max(
                    1.0, min(observed, float(max(1, table.stats.row_count)))
                )
        return table.stats.joint_ndv(names)

    def selectivity_override(
        self, fingerprint: Optional[str]
    ) -> Optional[float]:
        """Observed selectivity for a conjunction fingerprint, if any."""
        if self._overrides is None or fingerprint is None:
            return None
        return self._overrides.selectivity(fingerprint)

    def aliases(self) -> Iterable[str]:
        return self._tables.keys()


class SelectivityEstimator:
    """Estimates predicate selectivities from a :class:`StatsView`."""

    def __init__(self, stats: StatsView):
        self.stats = stats

    def selectivity(self, predicate: Optional[Expression]) -> float:
        """Selectivity of an arbitrary predicate (conjuncts multiply).

        A workload-feedback override for the predicate's conjunction
        fingerprint wins over the per-conjunct independence product:
        the override *is* the observed selectivity of exactly this
        (parameterized) condition.
        """
        if predicate is None:
            return 1.0
        observed = self.stats.selectivity_override(
            conjunction_fingerprint(predicate)
        )
        if observed is not None:
            return observed
        result = 1.0
        for conjunct in conjuncts_of(predicate):
            result *= self._conjunct_selectivity(conjunct)
        return max(1e-9, min(1.0, result))

    def conjunction_selectivity(
        self, predicates: Sequence[Expression]
    ) -> float:
        """Combined selectivity of a predicate list applied together.

        The planner's per-quantifier local predicates become one FILTER
        node, and the workload loop observes that node's combined
        selectivity — so the override lookup must see the whole
        conjunction, not each predicate separately.
        """
        if not predicates:
            return 1.0
        observed = self.stats.selectivity_override(
            conjunction_fingerprint(predicates)
        )
        if observed is not None:
            return observed
        result = 1.0
        for predicate in predicates:
            result *= self.selectivity(predicate)
        return max(1e-9, min(1.0, result))

    def _conjunct_selectivity(self, predicate: Expression) -> float:
        if isinstance(predicate, BooleanExpr) and predicate.op is BooleanOp.OR:
            # Independence-union bound.
            miss = 1.0
            for operand in predicate.operands:
                miss *= 1.0 - self.selectivity(operand)
            return 1.0 - miss
        if isinstance(predicate, Not):
            return max(0.0, 1.0 - self.selectivity(predicate.operand))
        if isinstance(predicate, IsNull):
            return self._is_null_selectivity(predicate)
        if isinstance(predicate, InList):
            if isinstance(predicate.operand, ColumnRef):
                single = self._equality_selectivity(predicate.operand)
                return min(1.0, single * max(1, len(predicate.values)))
            return DEFAULT_OTHER_SELECTIVITY
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate)
        return DEFAULT_OTHER_SELECTIVITY

    def _comparison_selectivity(self, predicate: Comparison) -> float:
        left, right, op = predicate.left, predicate.right, predicate.op
        if isinstance(left, (Literal, Parameter)) and isinstance(
            right, ColumnRef
        ):
            left, right = right, left
            op = op.flipped()
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            if op is ComparisonOp.EQ:
                return self._equality_selectivity(left)
            if op is ComparisonOp.NE:
                return max(0.0, 1.0 - self._equality_selectivity(left))
            return self._range_selectivity(left, op, right.value)
        if isinstance(left, ColumnRef) and isinstance(right, Parameter):
            # Host variable: an unknown constant (§4.1). Equality keeps
            # the 1/NDV uniform-value estimate; ranges get the classic
            # System-R magic fraction since the cutpoint is unknown.
            if op is ComparisonOp.EQ:
                return self._equality_selectivity(left)
            if op is ComparisonOp.NE:
                return max(0.0, 1.0 - self._equality_selectivity(left))
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            if op is ComparisonOp.EQ:
                return join_selectivity(
                    self.stats.column_stats(left),
                    self.stats.column_stats(right),
                )
            return DEFAULT_RANGE_SELECTIVITY
        return DEFAULT_OTHER_SELECTIVITY

    def _is_null_selectivity(self, predicate: IsNull) -> float:
        if isinstance(predicate.operand, ColumnRef):
            stats = self.stats.column_stats(predicate.operand)
            row_count = self.stats.row_count(predicate.operand.qualifier)
            if stats is not None and row_count > 0:
                null_fraction = 1.0 - stats.not_null_fraction(row_count)
                return (
                    1.0 - null_fraction if predicate.negated else null_fraction
                )
        return DEFAULT_EQ_SELECTIVITY

    def _equality_selectivity(self, column: ColumnRef) -> float:
        stats = self.stats.column_stats(column)
        if stats is None or stats.ndv <= 0:
            return DEFAULT_EQ_SELECTIVITY
        # NULLs never satisfy an equality: 1/NDV holds only for the
        # non-null share of the table.
        return stats.selectivity_equal(self.stats.row_count(column.qualifier))

    def _range_selectivity(
        self, column: ColumnRef, op: ComparisonOp, value: Any
    ) -> float:
        stats = self.stats.column_stats(column)
        if stats is None:
            return DEFAULT_RANGE_SELECTIVITY
        row_count = self.stats.row_count(column.qualifier)
        if op in (ComparisonOp.LT, ComparisonOp.LE):
            return stats.selectivity_range(None, value, row_count)
        return stats.selectivity_range(value, None, row_count)


def term_selectivity_hints(
    predicate: Expression, estimator: SelectivityEstimator
) -> Dict[Expression, float]:
    """Per-subtree selectivity estimates for a filter predicate.

    Covers the predicate itself plus every AND/OR operand and NOT
    operand, recursively — exactly the terms the vector engine's
    cost-ordered evaluation (:mod:`repro.expr.vector`) can reorder.
    The estimates only seed the ordering; observed per-batch
    selectivities take over once enough rows have flowed.
    """
    hints: Dict[Expression, float] = {}

    def record(expression: Expression) -> None:
        hints[expression] = estimator.selectivity(expression)
        if isinstance(expression, BooleanExpr):
            for operand in expression.operands:
                record(operand)
        elif isinstance(expression, Not):
            record(expression.operand)

    record(predicate)
    return hints


def join_selectivity(
    left: Optional[ColumnStats], right: Optional[ColumnStats]
) -> float:
    """Selectivity of an equi-join predicate: 1 / max(NDV_l, NDV_r)."""
    candidates = [
        stats.ndv for stats in (left, right) if stats is not None and stats.ndv > 0
    ]
    if not candidates:
        return DEFAULT_EQ_SELECTIVITY
    return 1.0 / max(candidates)
