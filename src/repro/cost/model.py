"""The cost model: I/O + CPU estimates per physical operator.

Calibrated against the storage layer's :class:`IoStats` charge rates so
that estimated I/O time and simulated execution I/O time live on the
same scale. The decisive asymmetry for this paper: random page accesses
cost ~20x a sequential (prefetched) access, which is exactly why an
*ordered* nested-loop join — probes arriving in index order — beats an
unordered one (Section 8.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.storage.buffer import IoStats


@dataclass(frozen=True)
class Cost:
    """An additive (io_ms, cpu_ms) cost pair."""

    io_ms: float = 0.0
    cpu_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.io_ms + self.cpu_ms

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.io_ms + other.io_ms, self.cpu_ms + other.cpu_ms)

    def scaled(self, factor: float) -> "Cost":
        return Cost(self.io_ms * factor, self.cpu_ms * factor)

    def __lt__(self, other: "Cost") -> bool:
        return self.total_ms < other.total_ms

    def __le__(self, other: "Cost") -> bool:
        return self.total_ms <= other.total_ms

    def __str__(self) -> str:
        return f"{self.total_ms:.2f}ms (io {self.io_ms:.2f} + cpu {self.cpu_ms:.2f})"


ZERO_COST = Cost()


class CostModel:
    """Estimates operator costs from cardinalities and physical layout."""

    # Charge rates; I/O rates mirror IoStats so estimate and simulation
    # are commensurable.
    SEQ_PAGE_MS = IoStats.SEQUENTIAL_MS
    RANDOM_PAGE_MS = IoStats.RANDOM_MS
    CPU_ROW_MS = 0.002
    CPU_COMPARE_MS = 0.0008
    CPU_HASH_MS = 0.0015

    def __init__(self, sort_memory_rows: int = 100_000, buffer_pages: int = 2048):
        self.sort_memory_rows = sort_memory_rows
        self.buffer_pages = buffer_pages

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def table_scan(self, pages: int, rows: float) -> Cost:
        return Cost(pages * self.SEQ_PAGE_MS, rows * self.CPU_ROW_MS)

    def index_scan(
        self,
        table_pages: int,
        table_rows: float,
        matched_rows: float,
        tree_height: int,
        clustered: bool,
        fetch_rows: bool = True,
    ) -> Cost:
        """Range/full scan through an index, optionally fetching rows.

        Unclustered fetches are random page reads per row (bounded by the
        table's page count per distinct key region — we keep the simple
        per-row bound, which is the classical pessimistic estimate).
        """
        descent = tree_height * self.RANDOM_PAGE_MS
        leaf_fraction = matched_rows / max(1.0, table_rows)
        leaf_pages = max(1.0, leaf_fraction * max(1, table_pages))
        io = descent + leaf_pages * self.SEQ_PAGE_MS
        if fetch_rows:
            if clustered:
                io += leaf_fraction * table_pages * self.SEQ_PAGE_MS
            else:
                io += matched_rows * self.RANDOM_PAGE_MS
        return Cost(io, matched_rows * self.CPU_ROW_MS)

    def index_probe(
        self,
        matches_per_probe: float,
        tree_height: int,
        clustered_probes: bool,
        fetch_rows: bool = True,
    ) -> Cost:
        """One exact-match probe (unordered, classic estimate)."""
        io = self.RANDOM_PAGE_MS  # descent, upper levels cached
        if not clustered_probes:
            io += (tree_height - 1) * 0.1 * self.RANDOM_PAGE_MS
        if fetch_rows:
            io += matches_per_probe * self.RANDOM_PAGE_MS
        return Cost(io, matches_per_probe * self.CPU_ROW_MS)

    def index_nlj(
        self,
        outer_rows: float,
        matches_per_probe: float,
        table_pages: int,
        table_rows: float,
        tree_height: int,
        ordered: bool,
        clustered: bool,
        output_rows: float,
    ) -> Cost:
        """Whole-join cost of nested loops probing an inner index.

        The paper's pivotal asymmetry (Section 8.1): when the outer
        stream is ordered on the probe columns ("ordered nested-loop
        join"), successive probes walk the leaf chain monotonically —
        prefetching turns the descent I/O into one sequential pass; if
        the index is also clustered, the data-page fetches become
        sequential too. Unordered probes pay a random descent plus
        random fetches per probe.
        """
        outer_rows = max(1.0, outer_rows)
        matched_rows = outer_rows * max(0.0, matches_per_probe)
        cpu = (
            outer_rows * self.CPU_COMPARE_MS
            + matched_rows * self.CPU_ROW_MS
            + output_rows * self.CPU_ROW_MS
        )
        coverage = min(1.0, matched_rows / max(1.0, table_rows))
        covered_pages = coverage * max(1, table_pages)
        if ordered:
            # Leaf chain: one sequential pass over the covered fraction.
            io = tree_height * self.RANDOM_PAGE_MS
            io += covered_pages * self.SEQ_PAGE_MS
            if clustered:
                io += covered_pages * self.SEQ_PAGE_MS
            else:
                io += matched_rows * self.RANDOM_PAGE_MS
        else:
            per_probe = self.RANDOM_PAGE_MS * (
                1.0 + 0.1 * max(0, tree_height - 1)
            )
            io = outer_rows * per_probe + matched_rows * self.RANDOM_PAGE_MS
        return Cost(io, cpu)

    # ------------------------------------------------------------------
    # Sorting
    # ------------------------------------------------------------------

    def sort(self, rows: float, sort_columns: int, row_pages: float) -> Cost:
        """External merge sort: CPU comparisons + spill I/O when large.

        Fewer sort columns means cheaper comparisons — the payoff of the
        paper's minimal-sort-column reduction.
        """
        rows = max(1.0, rows)
        compare = (
            rows
            * math.log2(rows + 1.0)
            * self.CPU_COMPARE_MS
            * max(1, sort_columns)
        )
        io = 0.0
        if rows > self.sort_memory_rows:
            passes = max(
                1,
                math.ceil(
                    math.log(rows / self.sort_memory_rows, 8) + 1e-9
                ),
            )
            io = 2.0 * passes * max(1.0, row_pages) * self.SEQ_PAGE_MS
        return Cost(io, compare + rows * self.CPU_ROW_MS)

    def partial_sort(
        self,
        rows: float,
        groups: float,
        sort_columns: int,
        row_pages: float,
    ) -> Cost:
        """Segmented sort of prefix-groups: ``n * log(n/k)`` comparisons.

        The input arrives sorted on a prefix of the target, so each of
        the ``groups`` runs of equal prefix values is sorted
        independently on the remaining ``sort_columns`` suffix keys.
        Boundary detection costs one prefix comparison per row. Spill
        only happens when a *single group* overflows sort memory.
        """
        rows = max(1.0, rows)
        groups = max(1.0, min(groups, rows))
        group_rows = rows / groups
        compare = (
            rows
            * math.log2(group_rows + 1.0)
            * self.CPU_COMPARE_MS
            * max(1, sort_columns)
        )
        compare += rows * self.CPU_COMPARE_MS  # group-boundary detection
        io = 0.0
        if group_rows > self.sort_memory_rows:
            passes = max(
                1,
                math.ceil(
                    math.log(group_rows / self.sort_memory_rows, 8) + 1e-9
                ),
            )
            io = 2.0 * passes * max(1.0, row_pages) * self.SEQ_PAGE_MS
        return Cost(io, compare + rows * self.CPU_ROW_MS)

    def partial_sort_limited(
        self,
        rows: float,
        groups: float,
        sort_columns: int,
        count: int,
    ) -> Cost:
        """Partial sort under a LIMIT: early exit after enough groups.

        Only ``ceil(count / group_rows)`` groups need to be consumed
        before the limit is met, and within a group a bounded heap caps
        the comparison depth at ``log(min(group_rows, count))``.
        """
        rows = max(1.0, rows)
        groups = max(1.0, min(groups, rows))
        group_rows = rows / groups
        needed_groups = math.ceil(max(1, count) / group_rows)
        effective_rows = min(rows, needed_groups * group_rows)
        compare = (
            effective_rows
            * math.log2(min(group_rows, count) + 1.0)
            * self.CPU_COMPARE_MS
            * max(1, sort_columns)
        )
        compare += effective_rows * self.CPU_COMPARE_MS
        return Cost(0.0, compare + effective_rows * self.CPU_ROW_MS * 0.25)

    def top_n_sort(self, rows: float, sort_columns: int, count: int) -> Cost:
        """Bounded top-n sort: every input row is inspected, but the
        comparison depth is log(k) and nothing spills."""
        rows = max(1.0, rows)
        compare = (
            rows
            * math.log2(count + 1.0)
            * self.CPU_COMPARE_MS
            * max(1, sort_columns)
        )
        return Cost(0.0, compare + rows * self.CPU_ROW_MS * 0.25)

    # ------------------------------------------------------------------
    # Joins (costs beyond producing the inputs)
    # ------------------------------------------------------------------

    def merge_join(self, outer_rows: float, inner_rows: float, output_rows: float) -> Cost:
        cpu = (outer_rows + inner_rows) * self.CPU_COMPARE_MS
        cpu += output_rows * self.CPU_ROW_MS
        return Cost(0.0, cpu)

    def hash_join(
        self, build_rows: float, probe_rows: float, output_rows: float, build_pages: float
    ) -> Cost:
        cpu = build_rows * self.CPU_HASH_MS + probe_rows * self.CPU_HASH_MS
        cpu += output_rows * self.CPU_ROW_MS
        io = 0.0
        if build_rows > self.sort_memory_rows:
            io = 2.0 * max(1.0, build_pages) * self.SEQ_PAGE_MS
        return Cost(io, cpu)

    def nested_loop_join(self, outer_rows: float, inner_cost: Cost, output_rows: float) -> Cost:
        """Outer cardinality times the per-iteration inner cost."""
        repeated = inner_cost.scaled(max(0.0, outer_rows))
        return Cost(repeated.io_ms, repeated.cpu_ms + output_rows * self.CPU_ROW_MS)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def group_by_sorted(self, input_rows: float, output_rows: float) -> Cost:
        return Cost(0.0, input_rows * self.CPU_COMPARE_MS + output_rows * self.CPU_ROW_MS)

    def group_by_hash(
        self, input_rows: float, output_rows: float, output_pages: float
    ) -> Cost:
        io = 0.0
        if output_rows > self.sort_memory_rows:
            io = 2.0 * max(1.0, output_pages) * self.SEQ_PAGE_MS
        return Cost(
            io,
            input_rows * self.CPU_HASH_MS + output_rows * self.CPU_ROW_MS,
        )

    def filter_rows(self, rows: float) -> Cost:
        return Cost(0.0, rows * self.CPU_COMPARE_MS)

    def project_rows(self, rows: float) -> Cost:
        return Cost(0.0, rows * self.CPU_ROW_MS * 0.25)

    # ------------------------------------------------------------------
    # Parallelism: exchanges and per-partition work
    # ------------------------------------------------------------------

    # Modeled workers draining partition streams concurrently. CPU on a
    # parallel subtree divides by min(streams, PARALLEL_WORKERS); I/O
    # never does — the simulated disk is one device.
    PARALLEL_WORKERS = 4
    # Per-row transfer cost through an exchange's queues.
    EXCHANGE_ROW_MS = 0.0005

    def parallel_input(self, cost: Cost, streams: int) -> Cost:
        """Cost of a subtree when its partitions run on the worker pool:
        CPU shrinks by the effective parallelism, I/O stays serial."""
        workers = max(1, min(streams, self.PARALLEL_WORKERS))
        return Cost(cost.io_ms, cost.cpu_ms / workers)

    def exchange_gather(self, rows: float, streams: int) -> Cost:
        """Unordered gather: move every row through a queue."""
        return Cost(0.0, max(0.0, rows) * self.EXCHANGE_ROW_MS)

    def exchange_merge(self, rows: float, streams: int) -> Cost:
        """Order-preserving k-way merge: transfer plus a log2(k)-deep
        heap comparison per row."""
        rows = max(0.0, rows)
        depth = math.log2(max(2, streams))
        cpu = rows * (self.EXCHANGE_ROW_MS + depth * self.CPU_COMPARE_MS)
        return Cost(0.0, cpu)

    def repartition(self, rows: float, streams: int) -> Cost:
        """Hash repartition: hash each row and move it to its bucket."""
        rows = max(0.0, rows)
        cpu = rows * (self.CPU_HASH_MS + self.EXCHANGE_ROW_MS)
        return Cost(0.0, cpu)
