"""High-level convenience API: run SQL end to end.

This is what the examples and benchmarks use::

    from repro import Database, run_query
    result = run_query(db, "select ... order by ...")
    print(result.plan.explain())
    for row in result.rows:
        ...
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cost.model import CostModel
from repro.executor.build import build_executor
from repro.executor.context import CancelToken, ExecutionContext
from repro.expr.bindings import parameter_scope
from repro.optimizer import Optimizer, OptimizerConfig, Plan
from repro.storage import Database
from repro.storage.buffer import IoStats


@dataclass
class QueryResult:
    """Everything one execution produced."""

    rows: List[tuple]
    column_names: Tuple[str, ...]
    plan: Plan
    elapsed_seconds: float
    io_stats: IoStats
    simulated_io_ms: float
    spill_pages: int
    exec_mode: str = "compiled"
    analyzed: Optional[str] = None
    # "hit" / "miss" when the statement went through a plan cache,
    # None when it was planned directly.
    cache_status: Optional[str] = None
    # Per-node estimate-vs-actual observations when the execution ran
    # with observe=True (the workload feedback loop's input).
    observations: Optional[list] = None

    @property
    def simulated_elapsed_ms(self) -> float:
        """Modelled elapsed time: simulated I/O + measured CPU."""
        return self.simulated_io_ms + self.elapsed_seconds * 1000.0

    def __len__(self) -> int:
        return len(self.rows)


def plan_query(
    database: Database,
    sql: str,
    config: Optional[OptimizerConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> Plan:
    """Optimize ``sql`` without executing it."""
    return Optimizer(database, config, cost_model).plan_sql(sql)


def run_query(
    database: Database,
    sql: str,
    config: Optional[OptimizerConfig] = None,
    cost_model: Optional[CostModel] = None,
    cold_cache: bool = False,
    parameters: Optional[dict] = None,
    mode: Optional[str] = None,
    cache=None,
) -> QueryResult:
    """Optimize and execute ``sql``, measuring real and simulated time.

    ``parameters`` binds host variables (``:name`` in the SQL text); the
    plan is reusable across bindings — re-run with :func:`execute`.
    ``mode`` selects the executor engine (``compiled``/``interpreted``),
    defaulting to the REPRO_EXEC env var.

    ``cache`` routes planning through a plan cache (anything with the
    :meth:`repro.service.PlanCache.plan_for` protocol). The result's
    ``cache_status`` then reports ``"hit"`` or ``"miss"`` instead of
    silently re-planning, and the ``analyzed`` rendering carries the
    same verdict.

    A leading ``EXPLAIN`` keyword plans the query without executing it
    and returns the plan rendering, one row per line (with per-node
    cardinality and cost estimates).
    """
    stripped = sql.lstrip()
    if stripped[:8].lower() == "explain " or stripped.lower() == "explain":
        inner = stripped[8:]
        plan = plan_query(database, inner, config, cost_model)
        lines = plan.explain(show_cost=True).splitlines()
        return QueryResult(
            rows=[(line,) for line in lines],
            column_names=("plan",),
            plan=plan,
            elapsed_seconds=0.0,
            io_stats=IoStats(),
            simulated_io_ms=0.0,
            spill_pages=0,
        )
    if cache is not None:
        plan, bindings, status = cache.plan_for(
            database,
            sql,
            parameters=parameters,
            config=config,
            cost_model=cost_model,
        )
        return execute(
            database,
            plan,
            cold_cache=cold_cache,
            parameters=bindings,
            mode=mode,
            cache_status=status,
        )
    plan = plan_query(database, sql, config, cost_model)
    return execute(
        database, plan, cold_cache=cold_cache, parameters=parameters, mode=mode
    )


def execute(
    database: Database,
    plan: Plan,
    cold_cache: bool = False,
    parameters: Optional[dict] = None,
    context: Optional[ExecutionContext] = None,
    mode: Optional[str] = None,
    reset_io: bool = True,
    cache_status: Optional[str] = None,
    cancel_token: Optional[CancelToken] = None,
    observe: bool = False,
) -> QueryResult:
    """Execute an existing plan, measuring real and simulated time.

    Pass ``context`` to control batch size / engine mode directly, or
    just ``mode`` for an engine switch with default settings. The
    per-operator runtime counters are rendered into ``analyzed``
    (``explain(analyze=...)`` form). ``reset_io=False`` keeps the
    buffer-pool counters untouched — the query service's concurrent
    path, where per-query global I/O numbers would be fiction anyway.
    ``cancel_token`` arms the operators' cooperative checkpoints — a
    tripped token raises :class:`~repro.errors.QueryTimeout` /
    :class:`~repro.errors.QueryCancelled` out of the batch loops.
    ``observe=True`` additionally joins each plan node's estimated
    cardinality against the rows its operator actually produced and
    returns the per-node list in ``QueryResult.observations``.
    """
    if reset_io:
        database.reset_io(cold=cold_cache)
    if context is None:
        kwargs = {}
        if mode is not None:
            kwargs["mode"] = mode
        if cancel_token is not None:
            kwargs["cancel_token"] = cancel_token
        context = ExecutionContext(database, **kwargs)
    node_map = {} if observe else None
    operator = build_executor(plan, database, node_map=node_map)
    started = time.perf_counter()
    with parameter_scope(parameters):
        rows = operator.execute(context)
    elapsed = time.perf_counter() - started
    stats = database.buffer_pool.stats.snapshot()
    analyzed = operator.explain(analyze=context)
    if cache_status is not None:
        analyzed = f"{analyzed}\nplan cache: {cache_status}"
    observations = None
    if observe:
        from repro.executor.feedback import observe_execution

        observations = observe_execution(plan, node_map, context)
    return QueryResult(
        rows=rows,
        column_names=plan.output_names,
        plan=plan,
        elapsed_seconds=elapsed,
        io_stats=stats,
        simulated_io_ms=context.simulated_io_ms(),
        spill_pages=context.spill_pages,
        exec_mode=context.mode,
        analyzed=analyzed,
        cache_status=cache_status,
        observations=observations,
    )
