"""Row schemas: the mapping from column references to record positions.

Every stream flowing between physical operators carries a
:class:`RowSchema`. Records themselves are plain tuples; the schema says
which slot holds which column.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ExpressionError
from repro.expr.nodes import ColumnRef


class RowSchema:
    """An ordered list of column references with O(1) position lookup."""

    __slots__ = ("_columns", "_positions")

    def __init__(self, columns: Iterable[ColumnRef]):
        self._columns: Tuple[ColumnRef, ...] = tuple(columns)
        self._positions: Dict[ColumnRef, int] = {}
        for position, column in enumerate(self._columns):
            if column in self._positions:
                raise ExpressionError(f"duplicate column {column} in schema")
            self._positions[column] = position

    @property
    def columns(self) -> Tuple[ColumnRef, ...]:
        return self._columns

    def position(self, column: ColumnRef) -> int:
        """Slot index of ``column``; raises ExpressionError if absent."""
        try:
            return self._positions[column]
        except KeyError:
            raise ExpressionError(
                f"column {column} not in schema {list(map(str, self._columns))}"
            ) from None

    def __contains__(self, column: ColumnRef) -> bool:
        return column in self._positions

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[ColumnRef]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowSchema) and self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def concat(self, other: "RowSchema") -> "RowSchema":
        """Schema of a join output: this schema's columns then ``other``'s."""
        return RowSchema(self._columns + other._columns)

    def project(self, columns: Sequence[ColumnRef]) -> "RowSchema":
        """Schema restricted (and reordered) to ``columns``."""
        for column in columns:
            self.position(column)
        return RowSchema(columns)

    def projector(self, columns: Sequence[ColumnRef]):
        """A fast callable mapping a record to the projected tuple."""
        positions: List[int] = [self.position(column) for column in columns]
        return lambda record: tuple(record[position] for position in positions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(column) for column in self._columns)
        return f"RowSchema({inner})"
