"""Columnar vector batches and column-at-a-time predicate kernels.

The compiled engine's third gear: instead of lists of row tuples,
operators exchange :class:`VectorBatch` objects — per-column value
lists plus a *selection vector* (sorted physical indices of live
rows). Filters narrow the selection without copying rows; projections
compute output columns; tuples are materialized late, only at pipeline
breakers (sort, hash build, group-by) or at the plan root.

Predicate kernels here must stay byte-identical to the row engine
(:mod:`repro.expr.compile`) and the interpreter, including SQL
three-valued logic. The row engine's boolean semantics are identity
checks — ``value is False`` short-circuits AND, ``value is True``
short-circuits OR, ``value is None`` marks unknown, and any *other*
value (a bare column used as a predicate) flows through untouched —
so every term exposes three views:

* ``true_of(batch, sel)`` — rows whose value ``is True`` (filter keep
  set, OR accept set);
* ``and_filter(batch, sel) -> (survivors, unknowns)`` — rows a
  conjunction would keep scanning (not the ``False`` singleton), with
  the ``None``-valued subset flagged;
* ``or_filter(batch, sel) -> (accepted, unknowns)`` — strict-True rows
  plus the ``None``-valued subset.

On top of that representation sits cost-ordered evaluation: AND terms
run cheapest-and-most-selective first against the shrinking selection,
OR terms run cheapest-and-least-selective first with accepted rows
bypassing later disjuncts. Initial selectivities come from catalog
stats (hints supplied by the executor's plan builder); per-batch
observed selectivities adapt the order as data flows. Reordering is
*gated on raise-safety*: any term that can raise (arithmetic, CASE,
fold-deferred constants, parameter lookups) pins the whole conjunction
or disjunction to source order and the strict evaluation path, so
error behaviour matches the row engine exactly. Reordering never
changes the result set — the True set of a conjunction/disjunction is
an intersection/union, which is commutative.

Parameters resolve through :func:`repro.expr.bindings.active_value`
once per batch — kernels are memoized per (expression, schema) like
the row compiler and are never rebuilt per binding.

This module sits in the ``expr`` layer (a sibling of ``compile``) and
must not import upward.
"""

from __future__ import annotations

import decimal
from itertools import chain
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ExpressionError
from repro.expr.bindings import active_value
from repro.expr.compile import (
    _COMPARISON_CHECKS,
    _DIRECT_COMPARE,
    _compare,
    _is_constant,
    compile_expression,
)
from repro.expr.evaluate import evaluate
from repro.expr.nodes import (
    Aggregate,
    Arithmetic,
    ArithmeticOp,
    BooleanExpr,
    BooleanOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    ComparisonOp,
    DatePart,
    Expression,
    InList,
    IsNull,
    Not,
    Parameter,
)
from repro.expr.schema import RowSchema
from repro.sqltypes import sql_compare
from repro.sqltypes.values import NULL, sort_key

Row = Tuple[Any, ...]
Selection = List[int]

# Vector-path observability (reset with reset_vector_stats).
STATS: Dict[str, int] = {}


def _count(name: str, amount: int = 1) -> None:
    STATS[name] = STATS.get(name, 0) + amount


def reset_vector_stats() -> None:
    STATS.clear()


def vector_stats() -> Dict[str, int]:
    return dict(STATS)


# ----------------------------------------------------------------------
# Vector batches
# ----------------------------------------------------------------------


class VectorBatch:
    """A block of rows in columnar form with a selection vector.

    ``selection`` is either ``None`` (every physical row is live) or a
    sorted list of physical row indices. ``column(p)`` returns the
    *full-length* column — consumers index it through the selection.
    Subclasses share cached columns across ``with_selection`` clones,
    so a term evaluated before a filter narrowed the batch never
    re-extracts its column.
    """

    __slots__ = ("selection", "length")

    @property
    def count(self) -> int:
        selection = self.selection
        return self.length if selection is None else len(selection)

    def live(self) -> Sequence[int]:
        selection = self.selection
        return range(self.length) if selection is None else selection

    def column(self, position: int) -> Sequence[Any]:
        raise NotImplementedError

    def row(self, index: int) -> Row:
        raise NotImplementedError

    def materialize(self) -> List[Row]:
        """Live rows as tuples (the late-materialization point)."""
        raise NotImplementedError

    def with_selection(self, selection: Selection) -> "VectorBatch":
        raise NotImplementedError

    def take(self, n: int) -> "VectorBatch":
        """The first ``n`` live rows (LIMIT)."""
        selection = self.selection
        if selection is None:
            return self.with_selection(list(range(n)))
        return self.with_selection(selection[:n])

    def gather(self, position: int, sel: Sequence[int]) -> Sequence[Any]:
        """Values of column ``position`` aligned with ``sel``.

        Unlike ``column()`` (always full physical length), this is the
        value-consumer entry point: when ``sel`` is sparse relative to
        the block, subclasses gather just the live rows instead of
        extracting the whole column first.
        """
        column = self.column(position)
        if len(sel) == self.length:
            return column
        return [column[i] for i in sel]


class RowBlock(VectorBatch):
    """Row-tuple backed batch: scans wrap their batches at zero cost.

    Columns are transposed lazily, once, on first access; materializing
    returns the original tuple objects, so a vector pipeline that never
    computes new values yields byte-identical rows for free.
    """

    __slots__ = ("rows", "_columns")

    def __init__(
        self,
        rows: List[Row],
        selection: Optional[Selection] = None,
        _columns: Optional[Dict[int, List[Any]]] = None,
    ):
        self.rows = rows
        self.length = len(rows)
        self.selection = selection
        self._columns = {} if _columns is None else _columns

    def column(self, position: int) -> List[Any]:
        column = self._columns.get(position)
        if column is None:
            column = [row[position] for row in self.rows]
            self._columns[position] = column
        return column

    def row(self, index: int) -> Row:
        return self.rows[index]

    def materialize(self) -> List[Row]:
        selection = self.selection
        if selection is None:
            return self.rows
        rows = self.rows
        return [rows[i] for i in selection]

    def gather(self, position: int, sel: Sequence[int]) -> Sequence[Any]:
        column = self._columns.get(position)
        if column is None:
            if 2 * len(sel) < self.length:
                rows = self.rows
                return [rows[i][position] for i in sel]
            column = self.column(position)
        if len(sel) == self.length:
            return column
        return [column[i] for i in sel]

    def with_selection(self, selection: Selection) -> "RowBlock":
        return RowBlock(self.rows, selection, self._columns)


class ColumnBlock(VectorBatch):
    """Column-list backed batch (projection output)."""

    __slots__ = ("columns",)

    def __init__(
        self,
        columns: List[List[Any]],
        length: int,
        selection: Optional[Selection] = None,
    ):
        self.columns = columns
        self.length = length
        self.selection = selection

    def column(self, position: int) -> List[Any]:
        return self.columns[position]

    def row(self, index: int) -> Row:
        return tuple(column[index] for column in self.columns)

    def materialize(self) -> List[Row]:
        columns = self.columns
        selection = self.selection
        if len(columns) == 1:
            only = columns[0]
            if selection is None:
                return [(value,) for value in only]
            return [(only[i],) for i in selection]
        if selection is None:
            return list(zip(*columns))
        return list(zip(*([column[i] for i in selection] for column in columns)))

    def with_selection(self, selection: Selection) -> "ColumnBlock":
        return ColumnBlock(self.columns, self.length, selection)


class JoinBlock(VectorBatch):
    """Join output in deferred form: outer indices + inner row tuples.

    One logical row per (outer physical index, inner row) match pair;
    the wide concatenated tuple is never built unless someone
    materializes. A projection above the join gathers only the columns
    it needs, which is where wide equi-join pipelines win.
    """

    __slots__ = ("outer", "outer_width", "out_index", "inner_rows", "_columns")

    def __init__(
        self,
        outer: VectorBatch,
        outer_width: int,
        out_index: List[int],
        inner_rows: List[Row],
        selection: Optional[Selection] = None,
        _columns: Optional[Dict[int, List[Any]]] = None,
    ):
        self.outer = outer
        self.outer_width = outer_width
        self.out_index = out_index
        self.inner_rows = inner_rows
        self.length = len(out_index)
        self.selection = selection
        self._columns = {} if _columns is None else _columns

    def column(self, position: int) -> List[Any]:
        column = self._columns.get(position)
        if column is None:
            if position < self.outer_width:
                source = self.outer.column(position)
                column = [source[i] for i in self.out_index]
            else:
                inner_position = position - self.outer_width
                column = [row[inner_position] for row in self.inner_rows]
            self._columns[position] = column
        return column

    def row(self, index: int) -> Row:
        return self.outer.row(self.out_index[index]) + self.inner_rows[index]

    def materialize(self) -> List[Row]:
        outer_row = self.outer.row
        selection = self.selection
        if selection is None:
            return [
                outer_row(i) + inner
                for i, inner in zip(self.out_index, self.inner_rows)
            ]
        out_index, inner_rows = self.out_index, self.inner_rows
        return [outer_row(out_index[j]) + inner_rows[j] for j in selection]

    def gather(self, position: int, sel: Sequence[int]) -> Sequence[Any]:
        column = self._columns.get(position)
        if column is None:
            if 2 * len(sel) < self.length:
                if position < self.outer_width:
                    out_index = self.out_index
                    outer = self.outer
                    # out_index values repeat, so bypass outer.gather()
                    # (whose fast paths assume distinct live indices).
                    if isinstance(outer, RowBlock) and 2 * len(sel) < outer.length:
                        rows = outer.rows
                        return [rows[out_index[i]][position] for i in sel]
                    source = outer.column(position)
                    return [source[out_index[i]] for i in sel]
                inner_position = position - self.outer_width
                inner_rows = self.inner_rows
                return [inner_rows[i][inner_position] for i in sel]
            column = self.column(position)
        if len(sel) == self.length:
            return column
        return [column[i] for i in sel]

    def with_selection(self, selection: Selection) -> "JoinBlock":
        return JoinBlock(
            self.outer,
            self.outer_width,
            self.out_index,
            self.inner_rows,
            selection,
            self._columns,
        )


# ----------------------------------------------------------------------
# Raise-safety and cost heuristics
# ----------------------------------------------------------------------


def _may_raise(expression: Expression) -> bool:
    """Conservative: can evaluating this subtree raise on some row?

    Arithmetic raises on type errors / division by zero, CASE hides
    (and order-gates) raising arms, aggregates always raise per-row,
    parameters raise when unbound, and date-part extraction raises on
    non-date operands. Plain comparisons over typed columns only raise
    on planning bugs, which both engines would hit.
    """
    if isinstance(
        expression, (Arithmetic, CaseWhen, Aggregate, Parameter, DatePart)
    ):
        return True
    return any(_may_raise(child) for child in expression.children())


def _node_count(expression: Expression) -> int:
    return 1 + sum(_node_count(child) for child in expression.children())


# Observed selectivity kicks in once a term has seen this many rows;
# below the threshold the catalog hint (or the 0.5 default) holds.
_ADAPT_MIN_ROWS = 64


def _and_rank(term: "_Term") -> float:
    # Cheapest work per unit of rows *removed*: cost / (1 - selectivity).
    passing = term.observed()
    return term.cost / max(1e-6, 1.0 - min(passing, 0.999))


def _or_rank(term: "_Term") -> float:
    # Cheapest work per unit of rows *accepted*: cost / selectivity.
    passing = term.observed()
    return term.cost / max(1e-6, min(max(passing, 0.001), 1.0))


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------


class _Term:
    """One predicate node in vector form; see the module docstring for
    the three views (`true_of`, `and_filter`, `or_filter`)."""

    __slots__ = ("expression", "cost", "hint", "seen", "passed", "pure_bool", "no_raise")

    def __init__(
        self,
        expression: Expression,
        cost: float,
        hint: Optional[float],
        pure_bool: bool,
        no_raise: bool,
    ):
        self.expression = expression
        self.cost = cost
        self.hint = hint
        self.seen = 0
        self.passed = 0
        self.pure_bool = pure_bool
        self.no_raise = no_raise

    def observed(self) -> float:
        """Current selectivity estimate (strict-True rate)."""
        if self.seen >= _ADAPT_MIN_ROWS:
            return self.passed / self.seen
        if self.hint is not None:
            return self.hint
        return 0.5

    def _record(self, rows_in: int, rows_true: int) -> None:
        self.seen += rows_in
        self.passed += rows_true

    # Per-index tester returning the term's value for one physical row
    # (identity semantics: True / False / None / anything else).
    def _tester(self, batch: VectorBatch) -> Callable[[int], Any]:
        raise NotImplementedError

    def true_of(self, batch: VectorBatch, sel: Selection) -> Selection:
        test = self._tester(batch)
        out = [i for i in sel if test(i) is True]
        self._record(len(sel), len(out))
        return out

    def and_filter(
        self, batch: VectorBatch, sel: Selection
    ) -> Tuple[Selection, Selection]:
        test = self._tester(batch)
        survivors: Selection = []
        unknowns: Selection = []
        keep = survivors.append
        flag = unknowns.append
        for i in sel:
            value = test(i)
            if value is False:
                continue
            keep(i)
            if value is None:
                flag(i)
        self._record(len(sel), len(survivors) - len(unknowns))
        return survivors, unknowns

    def or_filter(
        self, batch: VectorBatch, sel: Selection
    ) -> Tuple[Selection, Selection]:
        test = self._tester(batch)
        accepted: Selection = []
        unknowns: Selection = []
        keep = accepted.append
        flag = unknowns.append
        for i in sel:
            value = test(i)
            if value is True:
                keep(i)
            elif value is None:
                flag(i)
        self._record(len(sel), len(accepted))
        return accepted, unknowns


# --- comparison against a constant: the hot leaf --------------------

def _slow_true(value: Any, constant: Any, check: Callable[[int], bool]) -> bool:
    cmp = sql_compare(value, constant)
    return cmp is not None and check(cmp)


def _true_eq(column, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := column[i]) is kind and v == constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


def _true_ne(column, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := column[i]) is kind and v != constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


def _true_lt(column, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := column[i]) is kind and v < constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


def _true_le(column, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := column[i]) is kind and v <= constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


def _true_gt(column, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := column[i]) is kind and v > constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


def _true_ge(column, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := column[i]) is kind and v >= constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


_TRUE_LOOPS = {
    ComparisonOp.EQ: _true_eq,
    ComparisonOp.NE: _true_ne,
    ComparisonOp.LT: _true_lt,
    ComparisonOp.LE: _true_le,
    ComparisonOp.GT: _true_gt,
    ComparisonOp.GE: _true_ge,
}


# Row-direct twins of the loops above: ``rows[i][position]`` instead of
# ``column[i]``, so a predicate over a fresh RowBlock (straight off a
# scan) never pays the column transpose at all.


def _rows_eq(rows, position, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := rows[i][position]) is kind and v == constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


def _rows_ne(rows, position, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := rows[i][position]) is kind and v != constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


def _rows_lt(rows, position, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := rows[i][position]) is kind and v < constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


def _rows_le(rows, position, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := rows[i][position]) is kind and v <= constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


def _rows_gt(rows, position, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := rows[i][position]) is kind and v > constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


def _rows_ge(rows, position, sel, constant, kind, check):
    return [
        i
        for i in sel
        if (type(v := rows[i][position]) is kind and v >= constant)
        or (type(v) is not kind and _slow_true(v, constant, check))
    ]


_ROWS_LOOPS = {
    ComparisonOp.EQ: _rows_eq,
    ComparisonOp.NE: _rows_ne,
    ComparisonOp.LT: _rows_lt,
    ComparisonOp.LE: _rows_le,
    ComparisonOp.GT: _rows_gt,
    ComparisonOp.GE: _rows_ge,
}


class _CompareConstLeaf(_Term):
    """``column <op> constant`` with the constant's exact type guarding
    a direct comparison — the vector form of the row engine's
    ``column_against_constant`` fast path."""

    __slots__ = ("position", "op", "constant", "kind", "_loop", "_rows_loop", "_check")

    def __init__(self, expression, position, op, constant, hint):
        super().__init__(expression, 1.0, hint, True, True)
        self.position = position
        self.op = op
        self.constant = constant
        self.kind = type(constant)
        self._loop = _TRUE_LOOPS[op]
        self._rows_loop = _ROWS_LOOPS[op]
        self._check = _COMPARISON_CHECKS[op]

    def true_of(self, batch, sel):
        position = self.position
        if type(batch) is RowBlock and position not in batch._columns:
            out = self._rows_loop(
                batch.rows, position, sel, self.constant, self.kind, self._check
            )
        else:
            out = self._loop(
                batch.column(position), sel, self.constant, self.kind, self._check
            )
        self._record(len(sel), len(out))
        return out

    def _tester(self, batch):
        column = batch.column(self.position)
        constant, kind, check = self.constant, self.kind, self._check

        def test(i):
            v = column[i]
            if type(v) is kind:
                if v < constant:
                    return check(-1)
                return check(1 if v > constant else 0)
            cmp = sql_compare(v, constant)
            return None if cmp is None else check(cmp)

        return test


class _CompareParamLeaf(_Term):
    """``column <op> :param`` — the parameter resolves once per batch
    through the thread-local scope, never rebinding the kernel."""

    __slots__ = ("position", "op", "name", "_check")

    def __init__(self, expression, position, op, name, hint):
        # Parameters can raise (unbound), so this leaf never reorders.
        super().__init__(expression, 1.2, hint, True, False)
        self.position = position
        self.op = op
        self.name = name
        self._check = _COMPARISON_CHECKS[op]

    def true_of(self, batch, sel):
        value = active_value(self.name)
        if value is None or value is NULL:
            self._record(len(sel), 0)
            return []
        kind = type(value)
        if kind in _DIRECT_COMPARE:
            position = self.position
            if type(batch) is RowBlock and position not in batch._columns:
                out = _ROWS_LOOPS[self.op](
                    batch.rows, position, sel, value, kind, self._check
                )
            else:
                out = _TRUE_LOOPS[self.op](
                    batch.column(position), sel, value, kind, self._check
                )
        else:
            column = batch.column(self.position)
            check = self._check
            out = []
            keep = out.append
            for i in sel:
                cmp = _compare(column[i], value)
                if cmp is not None and check(cmp):
                    keep(i)
        self._record(len(sel), len(out))
        return out

    def _tester(self, batch):
        value = active_value(self.name)
        column = batch.column(self.position)
        check = self._check

        def test(i):
            cmp = _compare(column[i], value)
            return None if cmp is None else check(cmp)

        return test


class _CompareColumnsLeaf(_Term):
    """``column <op> column`` within one stream."""

    __slots__ = ("left_position", "right_position", "_check")

    def __init__(self, expression, left_position, right_position, op, hint):
        super().__init__(expression, 2.0, hint, True, True)
        self.left_position = left_position
        self.right_position = right_position
        self._check = _COMPARISON_CHECKS[op]

    def _tester(self, batch):
        left = batch.column(self.left_position)
        right = batch.column(self.right_position)
        check = self._check

        def test(i):
            cmp = _compare(left[i], right[i])
            return None if cmp is None else check(cmp)

        return test


class _IsNullLeaf(_Term):
    """``column IS [NOT] NULL`` — two-valued, never unknown."""

    __slots__ = ("position", "negated")

    def __init__(self, expression, position, negated, hint):
        super().__init__(expression, 0.8, hint, True, True)
        self.position = position
        self.negated = negated

    def true_of(self, batch, sel):
        column = batch.column(self.position)
        if self.negated:
            out = [
                i
                for i in sel
                if (v := column[i]) is not None and v is not NULL
            ]
        else:
            out = [i for i in sel if (v := column[i]) is None or v is NULL]
        self._record(len(sel), len(out))
        return out

    def _tester(self, batch):
        column = batch.column(self.position)
        if self.negated:
            return lambda i: (v := column[i]) is not None and v is not NULL
        return lambda i: (v := column[i]) is None or v is NULL


def _slow_membership(needle: Any, values: Sequence[Any]) -> bool:
    if needle is None or needle is NULL:
        return False
    for value in values:
        cmp = _compare(needle, value)
        if cmp is not None and cmp == 0:
            return True
    return False


class _InListLeaf(_Term):
    """``column IN (constants)`` with hoisted values.

    When every value shares one direct-comparable type, exact-type rows
    use a C-level ``in`` scan; everything else mirrors the row engine's
    per-value ``_compare`` walk (NULL-in-list semantics included).
    """

    __slots__ = ("position", "values", "kind")

    def __init__(self, expression, position, values, hint):
        super().__init__(
            expression, 1.0 + 0.3 * len(values), hint, True, True
        )
        self.position = position
        self.values = tuple(values)
        kinds = {type(value) for value in values}
        self.kind = (
            kinds.pop() if len(kinds) == 1 and kinds & _DIRECT_COMPARE else None
        )

    def true_of(self, batch, sel):
        column = batch.column(self.position)
        values = self.values
        kind = self.kind
        if kind is not None:
            out = [
                i
                for i in sel
                if (type(v := column[i]) is kind and v in values)
                or (type(v) is not kind and _slow_membership(v, values))
            ]
        else:
            out = [i for i in sel if _slow_membership(column[i], values)]
        self._record(len(sel), len(out))
        return out

    def _tester(self, batch):
        column = batch.column(self.position)
        values = self.values

        def test(i):
            needle = column[i]
            if needle is None or needle is NULL:
                return None
            saw_unknown = False
            for value in values:
                cmp = _compare(needle, value)
                if cmp is None:
                    saw_unknown = True
                elif cmp == 0:
                    return True
            return None if saw_unknown else False

        return test


class _ConstLeaf(_Term):
    """A constant predicate subtree, folded once per batch."""

    __slots__ = ("_fn",)

    def __init__(self, expression, schema, hint, no_raise):
        super().__init__(expression, 0.1, hint, False, no_raise)
        self._fn = compile_expression(expression, schema)

    def _value(self):
        return self._fn(())

    def true_of(self, batch, sel):
        out = list(sel) if self._value() is True else []
        self._record(len(sel), len(out))
        return out

    def and_filter(self, batch, sel):
        value = self._value()
        if value is False:
            self._record(len(sel), 0)
            return [], []
        survivors = list(sel)
        unknowns = list(sel) if value is None else []
        self._record(len(sel), len(survivors) - len(unknowns))
        return survivors, unknowns

    def or_filter(self, batch, sel):
        value = self._value()
        if value is True:
            self._record(len(sel), len(sel))
            return list(sel), []
        self._record(len(sel), 0)
        return [], (list(sel) if value is None else [])


class _FnLeaf(_Term):
    """Fallback: evaluate the row closure per live row.

    Trivially byte-identical (it *is* the row engine's closure) and
    still selection-aware — later conjuncts see fewer rows.
    """

    __slots__ = ("_fn",)

    def __init__(self, expression, schema, hint, pure_bool, no_raise, cost=None):
        super().__init__(
            expression,
            (4.0 + _node_count(expression)) if cost is None else cost,
            hint,
            pure_bool,
            no_raise,
        )
        self._fn = compile_expression(expression, schema)

    def _tester(self, batch):
        fn = self._fn
        row = batch.row
        _count("vector.fallback_terms")
        return lambda i: fn(row(i))

    def true_of(self, batch, sel):
        fn = self._fn
        row = batch.row
        out = [i for i in sel if fn(row(i)) is True]
        self._record(len(sel), len(out))
        return out


# --- boolean composition ---------------------------------------------


class _NotTerm(_Term):
    """NOT over a predicate-shaped term (always {True, False, None})."""

    __slots__ = ("inner",)

    def __init__(self, expression, inner: _Term, hint):
        super().__init__(
            expression, inner.cost + 0.1, hint, True, inner.no_raise
        )
        self.inner = inner

    def true_of(self, batch, sel):
        # NOT is True exactly where the inner term is False.
        survivors, _unknowns = self.inner.and_filter(batch, sel)
        alive = set(survivors)
        out = [i for i in sel if i not in alive]
        self._record(len(sel), len(out))
        return out

    def and_filter(self, batch, sel):
        # NOT is False exactly where the inner term is True.
        accepted, unknowns = self.inner.or_filter(batch, sel)
        dropped = set(accepted)
        survivors = [i for i in sel if i not in dropped]
        self._record(len(sel), len(survivors) - len(unknowns))
        return survivors, unknowns

    def or_filter(self, batch, sel):
        survivors, unknowns = self.inner.and_filter(batch, sel)
        alive = set(survivors)
        accepted = [i for i in sel if i not in alive]
        self._record(len(sel), len(accepted))
        return accepted, unknowns


class _AndTerm(_Term):
    """Conjunction with cost-ordered short-circuiting.

    The fast path (every child raise-free *and* strictly boolean)
    narrows the selection through each child's True set — the True set
    of an AND is the intersection of its children's, so order does not
    change the result, only the work. Mixed/raising children take the
    strict path: candidates survive while not-False, unknown flags ride
    along, and source order is preserved whenever any child can raise.
    """

    __slots__ = ("terms", "fast", "reorder_ok")

    def __init__(self, expression, terms: List[_Term], hint):
        no_raise = all(term.no_raise for term in terms)
        super().__init__(
            expression,
            sum(term.cost for term in terms) + 0.1,
            hint,
            True,
            no_raise,
        )
        self.terms = terms
        self.reorder_ok = no_raise and len(terms) > 1
        self.fast = no_raise and all(term.pure_bool for term in terms)

    def ordered(self) -> List[_Term]:
        if not self.reorder_ok:
            return self.terms
        return sorted(self.terms, key=_and_rank)

    def true_of(self, batch, sel):
        rows_in = len(sel)
        if self.fast:
            current = sel
            for term in self.ordered():
                if not current:
                    break
                current = term.true_of(batch, current)
            self._record(rows_in, len(current))
            return current
        survivors, unknowns = self._strict(batch, sel)
        if unknowns:
            flagged = set(unknowns)
            survivors = [i for i in survivors if i not in flagged]
        self._record(rows_in, len(survivors))
        return survivors

    def _strict(self, batch, sel):
        candidates = sel
        flagged: set = set()
        for term in self.ordered():
            if not candidates:
                break
            candidates, unknowns = term.and_filter(batch, candidates)
            if unknowns:
                flagged.update(unknowns)
        if flagged:
            unknowns = [i for i in candidates if i in flagged]
        else:
            unknowns = []
        return candidates, unknowns

    def and_filter(self, batch, sel):
        survivors, unknowns = self._strict(batch, sel)
        self._record(len(sel), len(survivors) - len(unknowns))
        return survivors, unknowns

    def or_filter(self, batch, sel):
        survivors, unknowns = self._strict(batch, sel)
        if unknowns:
            flagged = set(unknowns)
            accepted = [i for i in survivors if i not in flagged]
        else:
            accepted = survivors
        self._record(len(sel), len(accepted))
        return accepted, unknowns


class _OrTerm(_Term):
    """Disjunction with accepted-row bypass.

    Each disjunct only sees rows no earlier disjunct accepted — exactly
    the row engine's short-circuit, lifted to the selection vector.
    Ordering (cheapest, most-accepting first) is gated on raise-safety
    like the conjunction.
    """

    __slots__ = ("terms", "reorder_ok")

    def __init__(self, expression, terms: List[_Term], hint):
        no_raise = all(term.no_raise for term in terms)
        super().__init__(
            expression,
            sum(term.cost for term in terms) + 0.1,
            hint,
            True,
            no_raise,
        )
        self.terms = terms
        self.reorder_ok = no_raise and len(terms) > 1

    def ordered(self) -> List[_Term]:
        if not self.reorder_ok:
            return self.terms
        return sorted(self.terms, key=_or_rank)

    def _scan(self, batch, sel, track_unknowns):
        candidates = sel
        parts: List[Selection] = []
        flagged: Optional[set] = set() if track_unknowns else None
        for term in self.ordered():
            if not candidates:
                break
            if track_unknowns:
                accepted, unknowns = term.or_filter(batch, candidates)
                if unknowns:
                    flagged.update(unknowns)
            else:
                accepted = term.true_of(batch, candidates)
            if accepted:
                parts.append(accepted)
                hit = set(accepted)
                candidates = [i for i in candidates if i not in hit]
        if not parts:
            accepted_all: Selection = []
        elif len(parts) == 1:
            accepted_all = parts[0]
        else:
            accepted_all = sorted(chain.from_iterable(parts))
        return accepted_all, candidates, flagged

    def true_of(self, batch, sel):
        accepted, _rest, _flagged = self._scan(batch, sel, False)
        self._record(len(sel), len(accepted))
        return accepted

    def or_filter(self, batch, sel):
        accepted, rest, flagged = self._scan(batch, sel, True)
        unknowns = [i for i in rest if i in flagged] if flagged else []
        self._record(len(sel), len(accepted))
        return accepted, unknowns

    def and_filter(self, batch, sel):
        accepted, rest, flagged = self._scan(batch, sel, True)
        if flagged:
            unknowns = [i for i in rest if i in flagged]
            alive = set(accepted).union(unknowns)
            survivors = [i for i in sel if i in alive]
        else:
            unknowns = []
            survivors = accepted
        self._record(len(sel), len(survivors) - len(unknowns))
        return survivors, unknowns


# ----------------------------------------------------------------------
# Term construction
# ----------------------------------------------------------------------

_PREDICATE_SHAPED = (Comparison, BooleanExpr, Not, IsNull, InList)


def _fold_direct_constant(expression: Expression) -> Optional[Any]:
    if not _is_constant(expression):
        return None
    try:
        value = evaluate(expression, RowSchema(()), ())
    except Exception:
        return None
    if type(value) in _DIRECT_COMPARE:
        return value
    return None


def _build_term(
    expression: Expression,
    schema: RowSchema,
    hints: Optional[Mapping[Expression, float]],
) -> _Term:
    hint = hints.get(expression) if hints else None

    if isinstance(expression, BooleanExpr):
        terms = [
            _build_term(operand, schema, hints)
            for operand in expression.operands
        ]
        if sum(1 for term in terms if not term.no_raise) > 1:
            # Two independently-raising siblings: even in source order,
            # column-at-a-time runs term 1 over every row before term 2
            # sees any, so *which row's* error surfaces first becomes
            # order-dependent. Only the row closure preserves error
            # identity with the reference engines.
            return _FnLeaf(
                expression, schema, hint, pure_bool=True, no_raise=False
            )
        if expression.op is BooleanOp.AND:
            return _AndTerm(expression, terms, hint)
        return _OrTerm(expression, terms, hint)

    if isinstance(expression, Not) and isinstance(
        expression.operand, _PREDICATE_SHAPED
    ):
        inner = _build_term(expression.operand, schema, hints)
        return _NotTerm(expression, inner, hint)

    if _is_constant(expression):
        return _ConstLeaf(
            expression, schema, hint, no_raise=not _may_raise(expression)
        )

    if isinstance(expression, Comparison):
        left, right, op = expression.left, expression.right, expression.op
        constant = _fold_direct_constant(right)
        if constant is not None and isinstance(left, ColumnRef):
            return _CompareConstLeaf(
                expression, schema.position(left), op, constant, hint
            )
        constant = _fold_direct_constant(left)
        if constant is not None and isinstance(right, ColumnRef):
            return _CompareConstLeaf(
                expression, schema.position(right), op.flipped(), constant, hint
            )
        if isinstance(left, ColumnRef) and isinstance(right, Parameter):
            return _CompareParamLeaf(
                expression, schema.position(left), op, right.name, hint
            )
        if isinstance(left, Parameter) and isinstance(right, ColumnRef):
            return _CompareParamLeaf(
                expression, schema.position(right), op.flipped(), left.name, hint
            )
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            return _CompareColumnsLeaf(
                expression,
                schema.position(left),
                schema.position(right),
                op,
                hint,
            )
        return _FnLeaf(
            expression,
            schema,
            hint,
            pure_bool=True,
            no_raise=not _may_raise(expression),
        )

    if isinstance(expression, IsNull) and isinstance(
        expression.operand, ColumnRef
    ):
        return _IsNullLeaf(
            expression,
            schema.position(expression.operand),
            expression.negated,
            hint,
        )

    if (
        isinstance(expression, InList)
        and isinstance(expression.operand, ColumnRef)
        and all(_is_constant(value) for value in expression.values)
    ):
        try:
            values = [
                evaluate(value, RowSchema(()), ())
                for value in expression.values
            ]
        except Exception:
            values = None
        if values is not None and all(
            value is not None and value is not NULL for value in values
        ):
            return _InListLeaf(
                expression, schema.position(expression.operand), values, hint
            )

    pure = isinstance(expression, _PREDICATE_SHAPED)
    return _FnLeaf(
        expression,
        schema,
        hint,
        pure_bool=pure,
        no_raise=not _may_raise(expression),
    )


class VectorFilter:
    """Compiled selection-vector predicate: ``filter(batch) -> selection``."""

    __slots__ = ("expression", "schema", "root")

    def __init__(
        self,
        expression: Expression,
        schema: RowSchema,
        hints: Optional[Mapping[Expression, float]] = None,
    ):
        self.expression = expression
        self.schema = schema
        self.root = _build_term(expression, schema, hints)

    def __call__(self, batch: VectorBatch) -> Selection:
        sel = batch.live()
        if type(sel) is range:
            sel = list(sel)
        if not sel:
            return []
        return self.root.true_of(batch, sel)

    def term_order(self) -> List[Expression]:
        """Current evaluation order of the root's direct terms
        (observability for the reordering tests/benchmarks)."""
        root = self.root
        if isinstance(root, (_AndTerm, _OrTerm)):
            return [term.expression for term in root.ordered()]
        return [root.expression]


_FILTER_MEMO: Dict[Tuple[Expression, RowSchema], VectorFilter] = {}


def compile_vector_filter(
    expression: Expression,
    schema: RowSchema,
    hints: Optional[Mapping[Expression, float]] = None,
) -> VectorFilter:
    """Memoized per (expression, schema) like the row compiler; the
    adaptive term statistics live on the shared kernel, so repeated
    executions keep learning. Hints only seed the first compilation."""
    _count("vector.filter_calls")
    key = (expression, schema)
    cached = _FILTER_MEMO.get(key)
    if cached is not None:
        _count("vector.filter_memo_hits")
        return cached
    kernel = VectorFilter(expression, schema, hints)
    _FILTER_MEMO[key] = kernel
    return kernel


# ----------------------------------------------------------------------
# Value and projection kernels
# ----------------------------------------------------------------------

ValueKernel = Callable[[VectorBatch, Selection], List[Any]]

_VALUE_MEMO: Dict[Tuple[Expression, RowSchema], ValueKernel] = {}

_ARITHMETIC_FNS = {
    ArithmeticOp.ADD: lambda a, b: a + b,
    ArithmeticOp.SUB: lambda a, b: a - b,
    ArithmeticOp.MUL: lambda a, b: a * b,
}


def clear_vector_cache() -> None:
    """Drop memoized vector kernels (tests that count compilations)."""
    _FILTER_MEMO.clear()
    _VALUE_MEMO.clear()


def vector_value_kernel(
    expression: Expression, schema: RowSchema
) -> ValueKernel:
    """``kernel(batch, sel) -> values`` aligned with ``sel``.

    Column references gather (or alias the column outright when the
    selection is dense); raise-free arithmetic combines child columns
    with the row engine's exact NULL/coercion rules; everything else —
    including division, whose error timing is row-ordered — falls back
    to the compiled row closure over ``batch.row``.
    """
    key = (expression, schema)
    cached = _VALUE_MEMO.get(key)
    if cached is not None:
        return cached
    kernel = _build_value_kernel(expression, schema)
    _VALUE_MEMO[key] = kernel
    return kernel


def _build_value_kernel(
    expression: Expression, schema: RowSchema
) -> ValueKernel:
    if isinstance(expression, ColumnRef):
        position = schema.position(expression)

        def gather(batch: VectorBatch, sel: Selection) -> List[Any]:
            return batch.gather(position, sel)

        return gather

    if isinstance(expression, Parameter):
        name = expression.name
        return lambda batch, sel: [active_value(name)] * len(sel)

    if _is_constant(expression):
        try:
            value = evaluate(expression, RowSchema(()), ())
        except Exception:
            # Defer the fold error to call time like the row compiler.
            return lambda batch, sel: [
                evaluate(expression, RowSchema(()), ()) for _ in sel
            ]
        return lambda batch, sel: [value] * len(sel)

    if (
        isinstance(expression, Arithmetic)
        and expression.op is not ArithmeticOp.DIV
    ):
        left_kernel = _build_value_kernel(expression.left, schema)
        right_kernel = _build_value_kernel(expression.right, schema)
        apply = _ARITHMETIC_FNS[expression.op]
        op = expression.op
        Decimal = decimal.Decimal

        def arithmetic(batch: VectorBatch, sel: Selection) -> List[Any]:
            out: List[Any] = []
            append = out.append
            for left, right in zip(
                left_kernel(batch, sel), right_kernel(batch, sel)
            ):
                if (
                    left is None
                    or right is None
                    or left is NULL
                    or right is NULL
                ):
                    append(None)
                    continue
                if isinstance(left, Decimal) and isinstance(right, float):
                    right = Decimal(str(right))
                elif isinstance(right, Decimal) and isinstance(left, float):
                    left = Decimal(str(left))
                try:
                    append(apply(left, right))
                except (TypeError, decimal.InvalidOperation) as exc:
                    raise ExpressionError(
                        f"cannot compute {left!r} {op.value} {right!r}"
                    ) from exc
            return out

        return arithmetic

    # Everything else (CASE, DIV, boolean-valued expressions, ...) runs
    # the compiled row closure per live row — byte-identical by
    # construction, still selection-aware.
    fn = compile_expression(expression, schema)

    def fallback(batch: VectorBatch, sel: Selection) -> List[Any]:
        row = batch.row
        return [fn(row(i)) for i in sel]

    return fallback


def vector_projection_kernel(
    expressions: Sequence[Expression], schema: RowSchema
) -> Callable[[VectorBatch], ColumnBlock]:
    """``kernel(batch) -> dense ColumnBlock`` of the output columns."""
    kernels = [
        vector_value_kernel(expression, schema) for expression in expressions
    ]

    def project(batch: VectorBatch) -> ColumnBlock:
        sel = batch.live()
        if type(sel) is range:
            sel = list(sel)
        columns = [kernel(batch, sel) for kernel in kernels]
        return ColumnBlock(columns, len(sel))

    return project
