"""Expression tree transformations (column substitution, rebuilding)."""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional

from repro.errors import ExpressionError
from repro.expr.nodes import (
    Aggregate,
    Arithmetic,
    BooleanExpr,
    CaseWhen,
    ColumnRef,
    Comparison,
    DatePart,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Parameter,
)


def transform(
    expression: Expression,
    visit: Callable[[Expression], Optional[Expression]],
) -> Expression:
    """Bottom-up rewrite: ``visit`` may replace any node (None = keep)."""
    rebuilt = _rebuild(expression, visit)
    replacement = visit(rebuilt)
    return rebuilt if replacement is None else replacement


def _rebuild(
    expression: Expression,
    visit: Callable[[Expression], Optional[Expression]],
) -> Expression:
    if isinstance(expression, (ColumnRef, Literal, Parameter)):
        return expression
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            transform(expression.left, visit),
            transform(expression.right, visit),
        )
    if isinstance(expression, BooleanExpr):
        return BooleanExpr(
            expression.op,
            tuple(transform(operand, visit) for operand in expression.operands),
        )
    if isinstance(expression, Not):
        return Not(transform(expression.operand, visit))
    if isinstance(expression, IsNull):
        return IsNull(transform(expression.operand, visit), expression.negated)
    if isinstance(expression, InList):
        return InList(
            transform(expression.operand, visit),
            tuple(transform(value, visit) for value in expression.values),
        )
    if isinstance(expression, Arithmetic):
        return Arithmetic(
            expression.op,
            transform(expression.left, visit),
            transform(expression.right, visit),
        )
    if isinstance(expression, DatePart):
        return DatePart(expression.part, transform(expression.operand, visit))
    if isinstance(expression, CaseWhen):
        return CaseWhen(
            transform(expression.condition, visit),
            transform(expression.then_value, visit),
            transform(expression.else_value, visit),
        )
    if isinstance(expression, Aggregate):
        if expression.argument is None:
            return expression
        return Aggregate(
            expression.kind,
            transform(expression.argument, visit),
            expression.distinct,
            expression.alias,
        )
    raise ExpressionError(f"cannot transform {expression!r}")


def substitute_columns(
    expression: Expression, mapping: Dict[ColumnRef, Expression]
) -> Expression:
    """Replace column references per ``mapping`` throughout a tree."""

    def visit(node: Expression) -> Optional[Expression]:
        if isinstance(node, ColumnRef):
            return mapping.get(node)
        return None

    return transform(expression, visit)


