"""Predicate analysis for order optimization.

The paper's reduction algorithm feeds on two kinds of facts mined from
applied predicates:

* ``col = constant`` — makes ``col`` constant-bound, i.e. the empty-headed
  FD ``{} -> {col}``;
* ``col = col`` — merges the two columns' equivalence classes and yields
  FDs in both directions.

This module extracts those facts from arbitrary predicate expressions.
Only facts from top-level conjuncts are safe (a disjunct's equality does
not hold for every surviving record), so extraction walks AND-trees only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.expr.nodes import (
    Arithmetic,
    ArithmeticOp,
    BooleanExpr,
    BooleanOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    DatePart,
    Expression,
    Literal,
    Parameter,
)


def conjuncts_of(predicate: Optional[Expression]) -> List[Expression]:
    """Flatten a predicate into its top-level AND conjuncts.

    ``None`` (no predicate) flattens to the empty list. Nested ANDs are
    recursively flattened; anything else (including ORs) stays whole.
    """
    if predicate is None:
        return []
    if isinstance(predicate, BooleanExpr) and predicate.op is BooleanOp.AND:
        flattened: List[Expression] = []
        for operand in predicate.operands:
            flattened.extend(conjuncts_of(operand))
        return flattened
    return [predicate]


def columns_of(expression: Expression) -> FrozenSet[ColumnRef]:
    """Every column referenced anywhere inside ``expression``."""
    found: Set[ColumnRef] = set()
    _collect_columns(expression, found)
    return frozenset(found)


def _collect_columns(expression: Expression, found: Set[ColumnRef]) -> None:
    if isinstance(expression, ColumnRef):
        found.add(expression)
        return
    for child in expression.children():
        _collect_columns(child, found)


def is_column_constant_equality(
    predicate: Expression,
) -> Optional[Tuple[ColumnRef, Literal]]:
    """Match ``col = literal`` (either operand order); else ``None``.

    NULL literals do not qualify: ``col = NULL`` never evaluates true, so
    it binds nothing.
    """
    if not isinstance(predicate, Comparison) or predicate.op is not ComparisonOp.EQ:
        return None
    left, right = predicate.left, predicate.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        column, literal = left, right
    elif isinstance(right, ColumnRef) and isinstance(left, Literal):
        column, literal = right, left
    else:
        return None
    if literal.value is None:
        return None
    return column, literal


def is_column_parameter_equality(
    predicate: Expression,
) -> Optional[Tuple[ColumnRef, Parameter]]:
    """Match ``col = :param`` (either operand order); else ``None``.

    The paper (§4.1) counts host variables as constants: the binding is
    order-relevant (empty-headed FD) even though the value is unknown
    until execution.
    """
    if not isinstance(predicate, Comparison) or predicate.op is not ComparisonOp.EQ:
        return None
    left, right = predicate.left, predicate.right
    if isinstance(left, ColumnRef) and isinstance(right, Parameter):
        return left, right
    if isinstance(right, ColumnRef) and isinstance(left, Parameter):
        return right, left
    return None


def is_column_equality(
    predicate: Expression,
) -> Optional[Tuple[ColumnRef, ColumnRef]]:
    """Match ``col = col`` between two *distinct* columns; else ``None``."""
    if not isinstance(predicate, Comparison) or predicate.op is not ComparisonOp.EQ:
        return None
    left, right = predicate.left, predicate.right
    if (
        isinstance(left, ColumnRef)
        and isinstance(right, ColumnRef)
        and left != right
    ):
        return left, right
    return None


@dataclass
class PredicateFacts:
    """Facts mined from a set of applied predicates.

    Attributes:
        conjuncts: every top-level conjunct seen.
        constant_bindings: columns bound to a single constant; the value
            is the Literal, or ``None`` when bound to a host variable
            (value unknown until execution, §4.1).
        equalities: raw ``col = col`` pairs (pre-union-find).
        residual: conjuncts that contributed no order-relevant fact.
    """

    conjuncts: List[Expression] = field(default_factory=list)
    constant_bindings: Dict[ColumnRef, Optional[Literal]] = field(
        default_factory=dict
    )
    equalities: List[Tuple[ColumnRef, ColumnRef]] = field(default_factory=list)
    residual: List[Expression] = field(default_factory=list)


def analyze_predicates(predicates: Iterable[Expression]) -> PredicateFacts:
    """Mine constant bindings and column equalities from ``predicates``.

    Each element of ``predicates`` is treated as an applied (conjunctive)
    predicate; nested ANDs are flattened first.
    """
    facts = PredicateFacts()
    for predicate in predicates:
        for conjunct in conjuncts_of(predicate):
            facts.conjuncts.append(conjunct)
            bound = is_column_constant_equality(conjunct)
            if bound is not None:
                column, literal = bound
                facts.constant_bindings.setdefault(column, literal)
                continue
            parameter_bound = is_column_parameter_equality(conjunct)
            if parameter_bound is not None:
                # Host variables are constants for order purposes (§4.1)
                # even though their value arrives at execution time.
                column, _parameter = parameter_bound
                facts.constant_bindings.setdefault(column, None)
                continue
            pair = is_column_equality(conjunct)
            if pair is not None:
                facts.equalities.append(pair)
                continue
            facts.residual.append(conjunct)
    return facts


@dataclass(frozen=True)
class MonotonicDependency:
    """``expression`` is a monotonic function of a single ``column``.

    ``flip`` — the expression *reverses* order (e.g. ``10 - col``);
    ``strict`` — strictly monotone, so the expression's order determines
    the column's order too (order-equivalence); non-strict functions
    like ``year(d)`` order only source-to-target.
    """

    column: ColumnRef
    flip: bool
    strict: bool


def monotonic_dependency(
    expression: Expression,
) -> Optional[MonotonicDependency]:
    """The single-column monotonic shape of ``expression``, or ``None``.

    Recognized shapes (composable): a bare column; ``col + c`` /
    ``c + col`` / ``col - c`` (strict), ``c - col`` (strict, flipped);
    ``c * col`` / ``col * c`` and ``col / c`` for nonzero ``c`` (strict,
    flipped when negative); ``year(d)`` (non-strict). ``c`` must be a
    non-NULL *integer* literal — host variables have unknown sign and
    NULL-ness, and non-integer constants could collapse distinct values
    through rounding, breaking the strictness claim. ``c / col``,
    ``month``/``day`` (periodic) and multi-column arithmetic yield no
    dependency.
    """
    if isinstance(expression, ColumnRef):
        return MonotonicDependency(expression, flip=False, strict=True)
    if isinstance(expression, DatePart):
        if expression.part != "year":
            return None
        inner = monotonic_dependency(expression.operand)
        if inner is None:
            return None
        return MonotonicDependency(inner.column, inner.flip, strict=False)
    if isinstance(expression, Arithmetic):
        constant, operand, constant_left = _int_literal_side(expression)
        if constant is None:
            return None
        inner = monotonic_dependency(operand)
        if inner is None:
            return None
        op = expression.op
        if op is ArithmeticOp.ADD:
            return inner
        if op is ArithmeticOp.SUB:
            if constant_left:  # c - x reverses order
                return MonotonicDependency(
                    inner.column, not inner.flip, inner.strict
                )
            return inner
        if constant == 0:
            return None  # c * x collapses; x / 0 raises
        if op is ArithmeticOp.DIV and constant_left:
            return None  # c / x is not monotone across a sign change
        if constant < 0:
            return MonotonicDependency(
                inner.column, not inner.flip, inner.strict
            )
        return inner
    return None


def _int_literal_side(expression: Arithmetic):
    """``(constant, other operand, constant_is_left)`` when exactly one
    side is a non-NULL integer literal; ``(None, None, False)`` else."""
    left, right = expression.left, expression.right
    if isinstance(left, Literal) and _is_int(left.value):
        if isinstance(right, Literal):
            return None, None, False
        return left.value, right, True
    if isinstance(right, Literal) and _is_int(right.value):
        return right.value, left, False
    return None, None, False


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)
