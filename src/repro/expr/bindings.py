"""Thread-local host-variable binding scope.

A cached plan keeps its :class:`~repro.expr.nodes.Parameter` nodes —
rewriting them to literals per execution would change the expression
identity and defeat the per-(expression, schema) compile memo in
:mod:`repro.expr.compile`. Instead, executions install a binding scope
on the current thread and both engines (the interpreter and compiled
closures) look parameter values up here at evaluation time.

Scopes nest (a stack per thread) and are thread-local, so the query
service's worker pool can run the same compiled kernels concurrently
with different bindings.

This module sits at the bottom of the ``expr`` layer and must only
import ``repro.errors``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Optional

from repro.errors import ExpressionError


class _ScopeState(threading.local):
    def __init__(self) -> None:
        self.stack: list = []


_STATE = _ScopeState()

_MISSING = object()


@contextmanager
def parameter_scope(values: Optional[Mapping[str, Any]]) -> Iterator[None]:
    """Install ``values`` as the active bindings for this thread.

    ``None`` installs an empty scope (every lookup raises), which keeps
    the error behaviour of an unparameterized execution unchanged.
    """
    _STATE.stack.append(dict(values) if values else {})
    try:
        yield
    finally:
        _STATE.stack.pop()


def current_bindings() -> Optional[Mapping[str, Any]]:
    """The innermost binding mapping on this thread, or None."""
    stack = _STATE.stack
    return stack[-1] if stack else None


def active_value(name: str) -> Any:
    """The bound value for host variable ``name`` in the innermost scope.

    Raises :class:`ExpressionError` when no scope is active or the name
    is unbound — same message as the pre-scope unbound-parameter error,
    so callers that never pass parameters see identical behaviour.
    """
    stack = _STATE.stack
    if stack:
        value = stack[-1].get(name, _MISSING)
        if value is not _MISSING:
            return value
    raise ExpressionError(
        f"unbound host variable :{name}; pass "
        "parameters={...} when executing"
    )
