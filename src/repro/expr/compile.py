"""Compile expression trees to Python closures and batch kernels.

The tree-walking interpreter (:mod:`repro.expr.evaluate`) re-dispatches
on node type and re-resolves ``schema.position()`` for every record.
This module does that work once per (expression, schema) pair and
returns a closure specialised for the tree's shape:

* column positions are resolved at compile time;
* constant subtrees (no column references) are folded to their value;
* the hot comparison/boolean forms get dedicated closures that keep
  three-valued-logic semantics byte-identical to the interpreter;
* batch kernels (``predicate(rows) -> rows``, ``key(rows) -> keys``)
  move the per-row loop into a single list comprehension.

Compiled closures must agree with :func:`repro.expr.evaluate.evaluate`
on every input, including NULL propagation and error behaviour — the
executor runs either engine (``REPRO_EXEC=interpreted`` selects the
interpreter) and the differential tests assert identical output.

This module sits in the ``expr`` layer and must not import upward
(``repro.core`` and above), so it keeps its own small stats dict
instead of using ``repro.core.instrument``.
"""

from __future__ import annotations

import datetime
import decimal
import operator as _operator
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExpressionError
from repro.expr.bindings import active_value
from repro.expr.evaluate import evaluate
from repro.expr.nodes import (
    Aggregate,
    Arithmetic,
    ArithmeticOp,
    BooleanExpr,
    BooleanOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    ComparisonOp,
    DatePart,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Parameter,
)
from repro.expr.schema import RowSchema
from repro.sqltypes import is_null, sql_compare
from repro.sqltypes.values import NULL, sort_key

Row = Tuple[Any, ...]
RowFn = Callable[[Row], Any]

# Compile-cache observability (read by benches/tests; reset with
# reset_stats). Kept local because instrument lives above this layer.
STATS: Dict[str, int] = {}


def _count(name: str) -> None:
    STATS[name] = STATS.get(name, 0) + 1


def reset_stats() -> None:
    STATS.clear()


def stats() -> Dict[str, int]:
    return dict(STATS)


_MEMO: Dict[Tuple[Expression, RowSchema], RowFn] = {}


def clear_compile_cache() -> None:
    """Drop every memoized closure (tests that count compilations)."""
    _MEMO.clear()


def compile_expression(expression: Expression, schema: RowSchema) -> RowFn:
    """A closure computing ``expression`` over one record of ``schema``.

    Memoized per (expression, schema); both are hashable by value, so
    re-executions of the same plan shape reuse the compiled form.
    """
    _count("compile.calls")
    key = (expression, schema)
    cached = _MEMO.get(key)
    if cached is not None:
        _count("compile.memo_hits")
        return cached
    compiled = _compile(expression, schema)
    _MEMO[key] = compiled
    return compiled


def compile_predicate(
    expression: Expression, schema: RowSchema
) -> Callable[[Row], bool]:
    """Filter form: unknown (NULL) counts as False, like the interpreter."""
    fn = compile_expression(expression, schema)
    return lambda row: fn(row) is True


# ----------------------------------------------------------------------
# Batch kernels
# ----------------------------------------------------------------------


def predicate_kernel(
    expression: Expression, schema: RowSchema
) -> Callable[[Sequence[Row]], List[Row]]:
    """``kernel(rows) -> rows`` keeping records where the predicate is
    True (three-valued: NULL drops the row)."""
    fn = compile_expression(expression, schema)
    return lambda rows: [row for row in rows if fn(row) is True]


def projection_kernel(
    expressions: Sequence[Expression], schema: RowSchema
) -> Callable[[Sequence[Row]], List[Row]]:
    """``kernel(rows) -> rows`` computing the output tuple per record."""
    fns = [compile_expression(expression, schema) for expression in expressions]
    if len(fns) == 1:
        only = fns[0]
        return lambda rows: [(only(row),) for row in rows]
    return lambda rows: [tuple(fn(row) for fn in fns) for row in rows]


def raw_key_kernel(
    positions: Sequence[int],
) -> Callable[[Sequence[Row]], List[Tuple[Any, ...]]]:
    """``kernel(rows) -> keys`` of raw values at ``positions``."""
    positions = tuple(positions)
    if len(positions) == 1:
        only = positions[0]
        return lambda rows: [(row[only],) for row in rows]
    return lambda rows: [
        tuple(row[position] for position in positions) for row in rows
    ]


def nullable_raw_key_kernel(
    positions: Sequence[int],
) -> Callable[[Sequence[Row]], List[Optional[Tuple[Any, ...]]]]:
    """Raw-value keys, ``None`` for records with a NULL key column
    (hash-join semantics: NULL never matches)."""
    positions = tuple(positions)
    if len(positions) == 1:
        only = positions[0]

        def single(rows: Sequence[Row]) -> List[Optional[Tuple[Any, ...]]]:
            return [
                None
                if (value := row[only]) is None or value is NULL
                else (value,)
                for row in rows
            ]

        return single

    def kernel(rows: Sequence[Row]) -> List[Optional[Tuple[Any, ...]]]:
        keys: List[Optional[Tuple[Any, ...]]] = []
        append = keys.append
        for row in rows:
            values = []
            for position in positions:
                value = row[position]
                if value is None or value is NULL:
                    values = None
                    break
                values.append(value)
            append(None if values is None else tuple(values))
        return keys

    return kernel


def join_key_kernel(
    positions: Sequence[int],
) -> Callable[[Sequence[Row]], List[Optional[Tuple[Any, ...]]]]:
    """Sort-keyed join keys, ``None`` for records with a NULL key column
    (merge-join semantics: totally ordered, NULL never matches)."""
    positions = tuple(positions)

    def kernel(rows: Sequence[Row]) -> List[Optional[Tuple[Any, ...]]]:
        keys: List[Optional[Tuple[Any, ...]]] = []
        append = keys.append
        for row in rows:
            marker = []
            for position in positions:
                value = row[position]
                if value is None or value is NULL:
                    marker = None
                    break
                marker.append(sort_key(value))
            append(None if marker is None else tuple(marker))
        return keys

    return kernel


def ordered_key_kernel(
    plan: Sequence[Tuple[int, bool]],
) -> Callable[[Sequence[Row]], List[Tuple[Any, ...]]]:
    """Decorated sort keys for ``plan`` = [(position, descending), ...]."""
    plan = tuple(plan)
    return lambda rows: [
        tuple(
            sort_key(row[position], descending)
            for position, descending in plan
        )
        for row in rows
    ]


# ----------------------------------------------------------------------
# The compiler proper
# ----------------------------------------------------------------------

_EMPTY_SCHEMA = RowSchema(())

# Types whose values the interpreter compares directly (no coercion),
# so identical concrete types can skip sql_compare's dispatch. Exact
# type checks keep bool (a subclass of int) and datetime (a subclass of
# date) on the general path.
_DIRECT_COMPARE = frozenset({int, float, str, decimal.Decimal, datetime.date})


def _compare(left: Any, right: Any) -> Optional[int]:
    """sql_compare with a monomorphic fast path; identical semantics."""
    if left is None or right is None:
        return None
    kind = type(left)
    if kind is type(right) and kind in _DIRECT_COMPARE:
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    return sql_compare(left, right)


def _is_constant(expression: Expression) -> bool:
    if isinstance(expression, (ColumnRef, Parameter, Aggregate)):
        return False
    return all(_is_constant(child) for child in expression.children())


_COMPARISON_CHECKS = {
    ComparisonOp.EQ: lambda cmp: cmp == 0,
    ComparisonOp.NE: lambda cmp: cmp != 0,
    ComparisonOp.LT: lambda cmp: cmp < 0,
    ComparisonOp.LE: lambda cmp: cmp <= 0,
    ComparisonOp.GT: lambda cmp: cmp > 0,
    ComparisonOp.GE: lambda cmp: cmp >= 0,
}

_ARITHMETIC_FNS = {
    ArithmeticOp.ADD: _operator.add,
    ArithmeticOp.SUB: _operator.sub,
    ArithmeticOp.MUL: _operator.mul,
    ArithmeticOp.DIV: _operator.truediv,
}


def _compile(expression: Expression, schema: RowSchema) -> RowFn:
    if isinstance(expression, Literal):
        value = expression.value
        return lambda row: value
    if isinstance(expression, ColumnRef):
        position = schema.position(expression)
        return lambda row: row[position]
    if _is_constant(expression):
        # Fold once at compile time. If evaluation raises (e.g. a
        # literal division by zero), defer the error to call time like
        # the interpreter would.
        try:
            value = evaluate(expression, _EMPTY_SCHEMA, ())
        except Exception:
            return lambda row: evaluate(expression, _EMPTY_SCHEMA, ())
        _count("compile.constant_folds")
        return lambda row: value
    if isinstance(expression, Comparison):
        return _compile_comparison(expression, schema)
    if isinstance(expression, BooleanExpr):
        return _compile_boolean(expression, schema)
    if isinstance(expression, Not):
        inner = _compile(expression.operand, schema)

        def negate(row: Row) -> Optional[bool]:
            value = inner(row)
            if value is None:
                return None
            return not value

        return negate
    if isinstance(expression, IsNull):
        inner = _compile(expression.operand, schema)
        if expression.negated:
            return lambda row: not is_null(inner(row))
        return lambda row: is_null(inner(row))
    if isinstance(expression, InList):
        return _compile_in_list(expression, schema)
    if isinstance(expression, Arithmetic):
        return _compile_arithmetic(expression, schema)
    if isinstance(expression, DatePart):
        inner = _compile(expression.operand, schema)
        part = expression.part

        def date_part(row: Row) -> Any:
            value = inner(row)
            if value is None or value is NULL:
                return None
            try:
                return getattr(value, part)
            except AttributeError as exc:
                raise ExpressionError(
                    f"cannot extract {part} from {value!r}"
                ) from exc

        return date_part
    if isinstance(expression, CaseWhen):
        condition = _compile(expression.condition, schema)
        then_value = _compile(expression.then_value, schema)
        else_value = _compile(expression.else_value, schema)
        # Interpreter semantics: NULL/False conditions take the ELSE arm.
        return lambda row: (
            then_value(row) if condition(row) else else_value(row)
        )
    if isinstance(expression, Aggregate):

        def aggregate_error(row: Row) -> Any:
            raise ExpressionError(
                f"aggregate {expression} cannot be evaluated per-record; "
                "it must be planned into a group-by operator"
            )

        return aggregate_error
    if isinstance(expression, Parameter):
        # Parameters resolve through the thread-local binding scope at
        # call time: the closure (and therefore the compile memo entry)
        # is the same object across executions with different bindings.
        name = expression.name
        return lambda row: active_value(name)
    raise ExpressionError(f"cannot compile {expression!r}")


def _fold_comparable_constant(expression: Expression) -> Optional[Any]:
    """The value of a constant subtree whose type takes the direct
    comparison fast path, else None (NULL constants and fold-time
    errors stay on the general path, preserving error timing)."""
    if not _is_constant(expression):
        return None
    try:
        value = evaluate(expression, _EMPTY_SCHEMA, ())
    except Exception:
        return None
    if type(value) in _DIRECT_COMPARE:
        return value
    return None


def _compile_comparison(expression: Comparison, schema: RowSchema) -> RowFn:
    check = _COMPARISON_CHECKS[expression.op]

    # The hot filter shape is <expr> <op> <constant> (or flipped):
    # specialize with the constant bound into the closure and a single
    # exact-type test guarding the direct comparison.
    constant = _fold_comparable_constant(expression.right)
    if constant is not None:
        if isinstance(expression.left, ColumnRef):
            position = schema.position(expression.left)
            kind = type(constant)

            def column_against_constant(row: Row) -> Optional[bool]:
                value = row[position]
                if type(value) is kind:
                    if value < constant:
                        return check(-1)
                    return check(1 if value > constant else 0)
                cmp = sql_compare(value, constant)
                if cmp is None:
                    return None
                return check(cmp)

            return column_against_constant
        left = _compile(expression.left, schema)
        kind = type(constant)

        def against_constant(row: Row) -> Optional[bool]:
            value = left(row)
            if type(value) is kind:
                if value < constant:
                    return check(-1)
                return check(1 if value > constant else 0)
            cmp = sql_compare(value, constant)
            if cmp is None:
                return None
            return check(cmp)

        return against_constant

    constant = _fold_comparable_constant(expression.left)
    if constant is not None:
        right = _compile(expression.right, schema)
        kind = type(constant)

        def constant_against(row: Row) -> Optional[bool]:
            value = right(row)
            if type(value) is kind:
                if constant < value:
                    return check(-1)
                return check(1 if constant > value else 0)
            cmp = sql_compare(constant, value)
            if cmp is None:
                return None
            return check(cmp)

        return constant_against

    left = _compile(expression.left, schema)
    right = _compile(expression.right, schema)

    def comparison(row: Row) -> Optional[bool]:
        cmp = _compare(left(row), right(row))
        if cmp is None:
            return None
        return check(cmp)

    return comparison


def _compile_boolean(expression: BooleanExpr, schema: RowSchema) -> RowFn:
    operands = [_compile(operand, schema) for operand in expression.operands]
    if expression.op is BooleanOp.AND:

        def conjunction(row: Row) -> Optional[bool]:
            saw_unknown = False
            for operand in operands:
                value = operand(row)
                if value is False:
                    return False
                if value is None:
                    saw_unknown = True
            return None if saw_unknown else True

        return conjunction

    def disjunction(row: Row) -> Optional[bool]:
        saw_unknown = False
        for operand in operands:
            value = operand(row)
            if value is True:
                return True
            if value is None:
                saw_unknown = True
        return None if saw_unknown else False

    return disjunction


def _compile_in_list(expression: InList, schema: RowSchema) -> RowFn:
    needle_fn = _compile(expression.operand, schema)
    hoisted: Optional[List[Any]] = None
    if all(_is_constant(value) for value in expression.values):
        # Hoist list evaluation out of the per-row loop; keep the
        # sql_compare scan so NULL-in-list and mixed-type errors match
        # the interpreter exactly. A list whose evaluation raises falls
        # back to the per-row path so the error surfaces at call time.
        try:
            hoisted = [
                evaluate(value, _EMPTY_SCHEMA, ())
                for value in expression.values
            ]
        except Exception:
            hoisted = None
    if hoisted is not None:
        values = hoisted

        def membership(row: Row) -> Optional[bool]:
            needle = needle_fn(row)
            if is_null(needle):
                return None
            saw_unknown = False
            for value in values:
                cmp = _compare(needle, value)
                if cmp is None:
                    saw_unknown = True
                elif cmp == 0:
                    return True
            return None if saw_unknown else False

        return membership

    value_fns = [_compile(value, schema) for value in expression.values]

    def general_membership(row: Row) -> Optional[bool]:
        needle = needle_fn(row)
        if is_null(needle):
            return None
        saw_unknown = False
        for value_fn in value_fns:
            cmp = _compare(needle, value_fn(row))
            if cmp is None:
                saw_unknown = True
            elif cmp == 0:
                return True
        return None if saw_unknown else False

    return general_membership


def _compile_arithmetic(expression: Arithmetic, schema: RowSchema) -> RowFn:
    left_fn = _compile(expression.left, schema)
    right_fn = _compile(expression.right, schema)
    apply = _ARITHMETIC_FNS[expression.op]
    op = expression.op

    def arithmetic(row: Row) -> Any:
        left = left_fn(row)
        right = right_fn(row)
        if left is None or right is None or left is NULL or right is NULL:
            return None
        if isinstance(left, decimal.Decimal) and isinstance(right, float):
            right = decimal.Decimal(str(right))
        elif isinstance(right, decimal.Decimal) and isinstance(left, float):
            left = decimal.Decimal(str(left))
        try:
            return apply(left, right)
        except (TypeError, decimal.InvalidOperation) as exc:
            raise ExpressionError(
                f"cannot compute {left!r} {op.value} {right!r}"
            ) from exc
        except ZeroDivisionError:
            raise ExpressionError(
                f"division by zero in {expression}"
            ) from None

    return arithmetic
