"""Expression tree node definitions.

All nodes are frozen dataclasses, so expressions are hashable and can be
used as dict keys (the optimizer keeps predicate sets and column maps).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.errors import ExpressionError


@dataclass(frozen=True)
class Expression:
    """Abstract base for every expression node."""

    def children(self) -> Tuple["Expression", ...]:
        """Immediate sub-expressions, for generic tree walks."""
        return ()

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        return repr(self)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to ``qualifier.name`` (qualifier = table alias).

    Column identity throughout the engine is this pair; two plans talking
    about ``o.orderkey`` agree because the frozen dataclass hashes by
    value.
    """

    qualifier: str
    name: str

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}"


@dataclass(frozen=True)
class Literal(Expression):
    """A constant. ``value is None`` encodes SQL NULL."""

    value: Any

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass(frozen=True)
class Parameter(Expression):
    """A host variable (``:name`` in SQL text).

    The paper (§4.1): "a literal expression, host variable, or
    correlated column qualify as a constant" — so ``col = :param``
    contributes the empty-headed FD ``{} -> {col}`` during planning even
    though the value is only known at execution time.
    """

    name: str

    def __str__(self) -> str:
        return f":{self.name}"


class ComparisonOp(enum.Enum):
    """Binary comparison operators."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flipped(self) -> "ComparisonOp":
        """The operator with its operands swapped (x < y  ==  y > x)."""
        return _FLIPPED[self]

    def negated(self) -> "ComparisonOp":
        """The logical complement (NOT x < y  ==  x >= y)."""
        return _NEGATED[self]


_FLIPPED = {
    ComparisonOp.EQ: ComparisonOp.EQ,
    ComparisonOp.NE: ComparisonOp.NE,
    ComparisonOp.LT: ComparisonOp.GT,
    ComparisonOp.LE: ComparisonOp.GE,
    ComparisonOp.GT: ComparisonOp.LT,
    ComparisonOp.GE: ComparisonOp.LE,
}

_NEGATED = {
    ComparisonOp.EQ: ComparisonOp.NE,
    ComparisonOp.NE: ComparisonOp.EQ,
    ComparisonOp.LT: ComparisonOp.GE,
    ComparisonOp.LE: ComparisonOp.GT,
    ComparisonOp.GT: ComparisonOp.LE,
    ComparisonOp.GE: ComparisonOp.LT,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """``left <op> right`` under three-valued logic."""

    op: ComparisonOp
    left: Expression
    right: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


class BooleanOp(enum.Enum):
    """N-ary boolean connectives."""

    AND = "AND"
    OR = "OR"


@dataclass(frozen=True)
class BooleanExpr(Expression):
    """AND/OR over two or more operands."""

    op: BooleanOp
    operands: Tuple[Expression, ...]

    def __post_init__(self):
        if len(self.operands) < 2:
            raise ExpressionError(f"{self.op.value} needs >= 2 operands")

    def children(self) -> Tuple[Expression, ...]:
        return self.operands

    def __str__(self) -> str:
        joiner = f" {self.op.value} "
        return "(" + joiner.join(str(operand) for operand in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``operand IS [NOT] NULL`` — the only NULL-seeing predicate."""

    operand: Expression
    negated: bool = False

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand} {suffix}"


@dataclass(frozen=True)
class InList(Expression):
    """``operand IN (v1, v2, ...)`` over literal values."""

    operand: Expression
    values: Tuple[Expression, ...]

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,) + self.values

    def __str__(self) -> str:
        inner = ", ".join(str(value) for value in self.values)
        return f"{self.operand} IN ({inner})"


class ArithmeticOp(enum.Enum):
    """Binary arithmetic operators."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """``left <op> right`` arithmetic; NULL-propagating."""

    op: ArithmeticOp
    left: Expression
    right: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class DatePart(Expression):
    """``year(d)`` / ``month(d)`` / ``day(d)`` extraction from a date.

    ``year`` is monotonic (non-strictly) in its operand, which is what
    makes it an order-dependency source; ``month`` and ``day`` are
    periodic and contribute only the functional dependency.
    """

    part: str  # "year" | "month" | "day"
    operand: Expression

    def __post_init__(self):
        if self.part not in ("year", "month", "day"):
            raise ExpressionError(f"unknown date part {self.part!r}")

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.part}({self.operand})"


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE WHEN cond THEN a ELSE b END`` (single-branch form)."""

    condition: Expression
    then_value: Expression
    else_value: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.condition, self.then_value, self.else_value)

    def __str__(self) -> str:
        return (
            f"CASE WHEN {self.condition} THEN {self.then_value} "
            f"ELSE {self.else_value} END"
        )


class AggregateKind(enum.Enum):
    """Supported aggregate functions."""

    SUM = "SUM"
    COUNT = "COUNT"
    MIN = "MIN"
    MAX = "MAX"
    AVG = "AVG"


@dataclass(frozen=True)
class Aggregate(Expression):
    """An aggregate call; ``argument is None`` means ``COUNT(*)``."""

    kind: AggregateKind
    argument: Optional[Expression] = None
    distinct: bool = False
    alias: Optional[str] = field(default=None, compare=False)

    def __post_init__(self):
        if self.argument is None and self.kind is not AggregateKind.COUNT:
            raise ExpressionError(f"{self.kind.value} requires an argument")

    def children(self) -> Tuple[Expression, ...]:
        if self.argument is None:
            return ()
        return (self.argument,)

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.kind.value}({prefix}{inner})"


def col(qualifier: str, name: str) -> ColumnRef:
    """Shorthand constructor: ``col("a", "x")`` is ``a.x``."""
    return ColumnRef(qualifier, name)


def lit(value: Any) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)
