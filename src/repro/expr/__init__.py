"""Expression trees, evaluation, and predicate analysis.

Expressions are immutable trees of :class:`~repro.expr.nodes.Expression`
nodes. Predicates are boolean-valued expressions; the optimizer analyses
them (see :mod:`repro.expr.analysis`) to extract the ``col = constant``
and ``col = col`` facts that drive the paper's order algebra.
"""

from repro.expr.nodes import (
    Aggregate,
    AggregateKind,
    Arithmetic,
    ArithmeticOp,
    BooleanExpr,
    BooleanOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    ComparisonOp,
    DatePart,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    col,
    lit,
)
from repro.expr.schema import RowSchema
from repro.expr.bindings import active_value, current_bindings, parameter_scope
from repro.expr.evaluate import evaluate, evaluate_predicate
from repro.expr.compile import (
    compile_expression,
    compile_predicate,
    predicate_kernel,
    projection_kernel,
)
from repro.expr.vector import (
    ColumnBlock,
    JoinBlock,
    RowBlock,
    VectorBatch,
    VectorFilter,
    compile_vector_filter,
    vector_projection_kernel,
    vector_value_kernel,
)
from repro.expr.analysis import (
    MonotonicDependency,
    PredicateFacts,
    analyze_predicates,
    columns_of,
    conjuncts_of,
    is_column_constant_equality,
    is_column_equality,
    monotonic_dependency,
)

__all__ = [
    "Aggregate",
    "AggregateKind",
    "Arithmetic",
    "ArithmeticOp",
    "BooleanExpr",
    "BooleanOp",
    "CaseWhen",
    "ColumnRef",
    "Comparison",
    "ComparisonOp",
    "DatePart",
    "Expression",
    "InList",
    "IsNull",
    "Literal",
    "Not",
    "col",
    "lit",
    "RowSchema",
    "active_value",
    "current_bindings",
    "parameter_scope",
    "evaluate",
    "evaluate_predicate",
    "compile_expression",
    "compile_predicate",
    "predicate_kernel",
    "projection_kernel",
    "VectorBatch",
    "RowBlock",
    "ColumnBlock",
    "JoinBlock",
    "VectorFilter",
    "compile_vector_filter",
    "vector_projection_kernel",
    "vector_value_kernel",
    "MonotonicDependency",
    "monotonic_dependency",
    "PredicateFacts",
    "analyze_predicates",
    "columns_of",
    "conjuncts_of",
    "is_column_constant_equality",
    "is_column_equality",
]
