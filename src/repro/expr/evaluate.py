"""Expression evaluation against records under three-valued logic."""

from __future__ import annotations

import decimal
from typing import Any, Optional, Sequence

from repro.errors import ExpressionError
from repro.expr.nodes import (
    Aggregate,
    Arithmetic,
    ArithmeticOp,
    BooleanExpr,
    BooleanOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    ComparisonOp,
    DatePart,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
)
from repro.expr.schema import RowSchema
from repro.sqltypes import is_null, sql_compare


def evaluate(
    expression: Expression, schema: RowSchema, record: Sequence[Any]
) -> Any:
    """Evaluate ``expression`` on one record.

    Returns a value, or ``None`` for SQL NULL / unknown. Boolean results
    are True/False/None.
    """
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return record[schema.position(expression)]
    if isinstance(expression, Comparison):
        return _evaluate_comparison(expression, schema, record)
    if isinstance(expression, BooleanExpr):
        return _evaluate_boolean(expression, schema, record)
    if isinstance(expression, Not):
        inner = evaluate(expression.operand, schema, record)
        if inner is None:
            return None
        return not inner
    if isinstance(expression, IsNull):
        inner = evaluate(expression.operand, schema, record)
        result = is_null(inner)
        return not result if expression.negated else result
    if isinstance(expression, InList):
        return _evaluate_in_list(expression, schema, record)
    if isinstance(expression, Arithmetic):
        return _evaluate_arithmetic(expression, schema, record)
    if isinstance(expression, DatePart):
        value = evaluate(expression.operand, schema, record)
        if is_null(value):
            return None
        try:
            return getattr(value, expression.part)
        except AttributeError as exc:
            raise ExpressionError(
                f"cannot extract {expression.part} from {value!r}"
            ) from exc
    if isinstance(expression, CaseWhen):
        condition = evaluate(expression.condition, schema, record)
        branch = expression.then_value if condition else expression.else_value
        return evaluate(branch, schema, record)
    if isinstance(expression, Aggregate):
        raise ExpressionError(
            f"aggregate {expression} cannot be evaluated per-record; "
            "it must be planned into a group-by operator"
        )
    from repro.expr.bindings import active_value
    from repro.expr.nodes import Parameter

    if isinstance(expression, Parameter):
        return active_value(expression.name)
    raise ExpressionError(f"cannot evaluate {expression!r}")


def evaluate_predicate(
    predicate: Expression, schema: RowSchema, record: Sequence[Any]
) -> bool:
    """Evaluate a predicate for filtering: unknown (NULL) counts as False."""
    return evaluate(predicate, schema, record) is True


def _evaluate_comparison(
    expression: Comparison, schema: RowSchema, record: Sequence[Any]
) -> Optional[bool]:
    left = evaluate(expression.left, schema, record)
    right = evaluate(expression.right, schema, record)
    cmp = sql_compare(left, right)
    if cmp is None:
        return None
    op = expression.op
    if op is ComparisonOp.EQ:
        return cmp == 0
    if op is ComparisonOp.NE:
        return cmp != 0
    if op is ComparisonOp.LT:
        return cmp < 0
    if op is ComparisonOp.LE:
        return cmp <= 0
    if op is ComparisonOp.GT:
        return cmp > 0
    return cmp >= 0


def _evaluate_boolean(
    expression: BooleanExpr, schema: RowSchema, record: Sequence[Any]
) -> Optional[bool]:
    # Kleene three-valued AND/OR with short-circuiting on the dominant value.
    if expression.op is BooleanOp.AND:
        saw_unknown = False
        for operand in expression.operands:
            value = evaluate(operand, schema, record)
            if value is False:
                return False
            if value is None:
                saw_unknown = True
        return None if saw_unknown else True
    saw_unknown = False
    for operand in expression.operands:
        value = evaluate(operand, schema, record)
        if value is True:
            return True
        if value is None:
            saw_unknown = True
    return None if saw_unknown else False


def _evaluate_in_list(
    expression: InList, schema: RowSchema, record: Sequence[Any]
) -> Optional[bool]:
    needle = evaluate(expression.operand, schema, record)
    if is_null(needle):
        return None
    saw_unknown = False
    for candidate in expression.values:
        value = evaluate(candidate, schema, record)
        cmp = sql_compare(needle, value)
        if cmp is None:
            saw_unknown = True
        elif cmp == 0:
            return True
    return None if saw_unknown else False


def _evaluate_arithmetic(
    expression: Arithmetic, schema: RowSchema, record: Sequence[Any]
) -> Any:
    left = evaluate(expression.left, schema, record)
    right = evaluate(expression.right, schema, record)
    if is_null(left) or is_null(right):
        return None
    if isinstance(left, decimal.Decimal) and isinstance(right, float):
        right = decimal.Decimal(str(right))
    if isinstance(right, decimal.Decimal) and isinstance(left, float):
        left = decimal.Decimal(str(left))
    op = expression.op
    try:
        if op is ArithmeticOp.ADD:
            return left + right
        if op is ArithmeticOp.SUB:
            return left - right
        if op is ArithmeticOp.MUL:
            return left * right
        return left / right
    except (TypeError, decimal.InvalidOperation) as exc:
        raise ExpressionError(
            f"cannot compute {left!r} {op.value} {right!r}"
        ) from exc
    except ZeroDivisionError:
        raise ExpressionError(f"division by zero in {expression}") from None
