"""SQL type system: data types, typed values, and NULL semantics.

The engine moves plain Python values through plans (ints, strings,
:class:`decimal.Decimal`, :class:`datetime.date`, ``None`` for SQL NULL).
This package supplies the *type* layer on top: declared column types,
coercion, three-valued comparison, and total sort orderings that put NULL
values last in ascending order (DB2's convention, which the paper's plans
assume).
"""

from repro.sqltypes.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    DataType,
    DecimalType,
    TypeFamily,
    VarcharType,
    decimal_type,
    varchar,
)
from repro.sqltypes.values import (
    NULL,
    SqlNull,
    coerce_value,
    is_null,
    sort_key,
    sql_compare,
    sql_equal,
)

__all__ = [
    "BOOLEAN",
    "DATE",
    "DOUBLE",
    "INTEGER",
    "DataType",
    "DecimalType",
    "TypeFamily",
    "VarcharType",
    "decimal_type",
    "varchar",
    "NULL",
    "SqlNull",
    "coerce_value",
    "is_null",
    "sort_key",
    "sql_compare",
    "sql_equal",
]
