"""Declared SQL data types.

Types are lightweight, immutable descriptors. They know how to validate
and coerce Python values, estimate their on-page width (the storage layer
and cost model both need record widths), and decide comparability.
"""

from __future__ import annotations

import datetime
import decimal
import enum
from dataclasses import dataclass

from repro.errors import TypeSystemError


class TypeFamily(enum.Enum):
    """Coarse classification used for comparability and coercion rules."""

    NUMERIC = "numeric"
    CHARACTER = "character"
    DATETIME = "datetime"
    BOOLEAN = "boolean"


@dataclass(frozen=True)
class DataType:
    """Base descriptor for a declared SQL type.

    Attributes:
        name: SQL spelling, e.g. ``"INTEGER"``.
        family: coarse family used for comparability checks.
        width: estimated stored width in bytes (used by the cost model).
    """

    name: str
    family: TypeFamily
    width: int

    def validate(self, value):
        """Return ``value`` coerced to this type, or raise TypeSystemError.

        ``None`` (SQL NULL) is always legal and returned unchanged.
        """
        if value is None:
            return None
        return self._coerce(value)

    def _coerce(self, value):
        raise NotImplementedError

    def is_comparable_with(self, other: "DataType") -> bool:
        """Whether values of this type can be compared with ``other``'s."""
        return self.family is other.family

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntegerType(DataType):
    """32/64-bit integers (we do not distinguish; Python ints are exact)."""

    def _coerce(self, value):
        if isinstance(value, bool):
            raise TypeSystemError(f"cannot store boolean {value!r} in {self.name}")
        if isinstance(value, int):
            return value
        if isinstance(value, decimal.Decimal) and value == value.to_integral_value():
            return int(value)
        raise TypeSystemError(f"cannot store {value!r} in {self.name}")


@dataclass(frozen=True)
class DoubleType(DataType):
    """Double-precision floating point."""

    def _coerce(self, value):
        if isinstance(value, bool):
            raise TypeSystemError(f"cannot store boolean {value!r} in {self.name}")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, decimal.Decimal):
            return float(value)
        raise TypeSystemError(f"cannot store {value!r} in {self.name}")


@dataclass(frozen=True)
class DecimalType(DataType):
    """Fixed-point DECIMAL(precision, scale)."""

    precision: int = 15
    scale: int = 2

    def _coerce(self, value):
        if isinstance(value, bool):
            raise TypeSystemError(f"cannot store boolean {value!r} in {self.name}")
        if isinstance(value, (int, decimal.Decimal)):
            quantum = decimal.Decimal(1).scaleb(-self.scale)
            return decimal.Decimal(value).quantize(
                quantum, rounding=decimal.ROUND_HALF_UP
            )
        if isinstance(value, float):
            quantum = decimal.Decimal(1).scaleb(-self.scale)
            return decimal.Decimal(str(value)).quantize(
                quantum, rounding=decimal.ROUND_HALF_UP
            )
        raise TypeSystemError(f"cannot store {value!r} in {self.name}")


@dataclass(frozen=True)
class VarcharType(DataType):
    """Variable-length character strings with a declared maximum."""

    max_length: int = 255

    def _coerce(self, value):
        if isinstance(value, str):
            if len(value) > self.max_length:
                raise TypeSystemError(
                    f"string of length {len(value)} exceeds {self.name}"
                )
            return value
        raise TypeSystemError(f"cannot store {value!r} in {self.name}")


@dataclass(frozen=True)
class DateType(DataType):
    """Calendar dates."""

    def _coerce(self, value):
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value)
            except ValueError as exc:
                raise TypeSystemError(f"bad date literal {value!r}") from exc
        raise TypeSystemError(f"cannot store {value!r} in {self.name}")


@dataclass(frozen=True)
class BooleanType(DataType):
    """SQL BOOLEAN (used only for predicate results, never stored)."""

    def _coerce(self, value):
        if isinstance(value, bool):
            return value
        raise TypeSystemError(f"cannot store {value!r} in {self.name}")


INTEGER = IntegerType("INTEGER", TypeFamily.NUMERIC, 4)
DOUBLE = DoubleType("DOUBLE", TypeFamily.NUMERIC, 8)
DATE = DateType("DATE", TypeFamily.DATETIME, 4)
BOOLEAN = BooleanType("BOOLEAN", TypeFamily.BOOLEAN, 1)


def decimal_type(precision: int = 15, scale: int = 2) -> DecimalType:
    """Build a DECIMAL(precision, scale) type descriptor."""
    if precision < 1 or scale < 0 or scale > precision:
        raise TypeSystemError(f"bad DECIMAL({precision},{scale})")
    return DecimalType(
        f"DECIMAL({precision},{scale})",
        TypeFamily.NUMERIC,
        precision // 2 + 1,
        precision,
        scale,
    )


def varchar(max_length: int) -> VarcharType:
    """Build a VARCHAR(max_length) type descriptor."""
    if max_length < 1:
        raise TypeSystemError(f"bad VARCHAR({max_length})")
    # Estimated stored width: assume half-full variable strings.
    return VarcharType(
        f"VARCHAR({max_length})",
        TypeFamily.CHARACTER,
        max(1, max_length // 2),
        max_length,
    )
