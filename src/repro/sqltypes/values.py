"""Runtime value semantics: NULLs, three-valued comparison, sort keys.

SQL NULL is represented by Python ``None`` inside records. Comparisons
involving NULL yield ``None`` (unknown) under three-valued logic, while
*sorting* needs a total order, so :func:`sort_key` places NULLs after all
non-NULL values in ascending order (DB2 sorts NULLs high).
"""

from __future__ import annotations

import datetime
import decimal
from typing import Any, Optional

from repro.errors import TypeSystemError


class SqlNull:
    """Singleton marker usable where a distinguished NULL object is handy.

    Records store plain ``None``; this object exists for readability in
    literals (``Literal(NULL)``) and prints as ``NULL``.
    """

    _instance: Optional["SqlNull"] = None

    def __new__(cls) -> "SqlNull":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False


NULL = SqlNull()


def is_null(value: Any) -> bool:
    """True when ``value`` is SQL NULL (either ``None`` or the marker)."""
    return value is None or value is NULL


def coerce_value(value: Any) -> Any:
    """Normalize a Python value for storage in a record.

    The NULL marker becomes ``None``; everything else passes through.
    """
    if value is NULL:
        return None
    return value


_NUMERIC = (int, float, decimal.Decimal)


def _comparable(left: Any, right: Any) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, _NUMERIC) and isinstance(right, _NUMERIC):
        return True
    if isinstance(left, str) and isinstance(right, str):
        return True
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        return True
    return False


def sql_compare(left: Any, right: Any) -> Optional[int]:
    """Three-valued comparison.

    Returns -1, 0, or 1 for definite orderings, and ``None`` when either
    side is NULL (unknown). Raises TypeSystemError on incomparable types,
    because that is a planning bug, not a data condition.
    """
    if is_null(left) or is_null(right):
        return None
    if not _comparable(left, right):
        raise TypeSystemError(f"cannot compare {left!r} with {right!r}")
    if isinstance(left, decimal.Decimal) or isinstance(right, decimal.Decimal):
        left = decimal.Decimal(str(left)) if isinstance(left, float) else left
        right = decimal.Decimal(str(right)) if isinstance(right, float) else right
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def sql_equal(left: Any, right: Any) -> Optional[bool]:
    """Three-valued equality: ``None`` when either side is NULL."""
    cmp = sql_compare(left, right)
    if cmp is None:
        return None
    return cmp == 0


class _NullsHigh:
    """Sort-key wrapper that compares greater than every non-NULL value."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return isinstance(other, _NullsHigh)

    def __gt__(self, other: Any) -> bool:
        return not isinstance(other, _NullsHigh)

    def __ge__(self, other: Any) -> bool:
        return True

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _NullsHigh)

    def __hash__(self) -> int:
        return hash("_NullsHigh")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<nulls-high>"


class _Reversed:
    """Sort-key wrapper inverting the order of the wrapped key.

    Used for DESC sort columns so one stable ``list.sort`` handles mixed
    ASC/DESC specifications.
    """

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __le__(self, other: "_Reversed") -> bool:
        return other.key <= self.key

    def __gt__(self, other: "_Reversed") -> bool:
        return other.key > self.key

    def __ge__(self, other: "_Reversed") -> bool:
        return other.key >= self.key

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key

    def __hash__(self) -> int:
        return hash(("_Reversed", self.key))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"desc({self.key!r})"


_NULLS_HIGH = _NullsHigh()


def sort_key(value: Any, descending: bool = False) -> Any:
    """Total-order sort key for one value.

    NULLs sort after all values ascending (and therefore first descending),
    matching DB2. Decimals and floats are unified so mixed numeric columns
    sort consistently.
    """
    if type(value) is int:
        # The hottest case, tested first with an exact type check
        # (bools must fall through to their own band). Raw ints order
        # (and hash) consistently against the Decimal keys of the other
        # numeric types, without paying a Decimal construction per
        # value on the sort path.
        key: Any = (0, value)
    elif is_null(value):
        key = _NULLS_HIGH
    elif isinstance(value, decimal.Decimal):
        key = (0, value)
    elif isinstance(value, bool):
        key = (2, value)
    elif isinstance(value, float):
        key = (0, decimal.Decimal(str(value)))
    elif isinstance(value, int):  # int subclasses other than bool
        key = (0, value)
    elif isinstance(value, str):
        key = (1, value)
    elif isinstance(value, datetime.date):
        key = (3, value.toordinal())
    else:
        raise TypeSystemError(f"unsortable value {value!r}")
    if descending:
        return _Reversed(key)
    return key
