"""repro — a reproduction of "Fundamental Techniques for Order
Optimization" (Simmen, Shekita, Malkemus; SIGMOD 1996).

A self-contained relational query engine whose optimizer implements the
paper's order algebra: Reduce Order, Test Order, Cover Order, Homogenize
Order, sort-ahead, the property framework (order / predicate / key / FD
properties), and Section 7's degrees-of-freedom orders.

Quick start::

    from repro import Database, TableSchema, Column, Index, INTEGER, run_query

    db = Database()
    db.create_table(
        TableSchema("t", [Column("x", INTEGER), Column("y", INTEGER)],
                    primary_key=("x",)),
        rows=[(i, i % 10) for i in range(1000)],
    )
    db.create_index(Index.on("t_x", "t", ["x"], unique=True))
    result = run_query(db, "select x, y from t where y = 3 order by x")
    print(result.plan.explain())
"""

from repro.api import QueryResult, execute, plan_query, run_query
from repro.catalog import Catalog, Column, Index, IndexColumn, TableSchema
from repro.core import (
    EquivalenceClasses,
    FDSet,
    FunctionalDependency,
    GeneralOrderSpec,
    OrderContext,
    OrderKey,
    OrderSpec,
    SortDirection,
    cover_order,
    fd,
    homogenize_order,
    reduce_order,
    test_order,
)
from repro.errors import ReproError
from repro.expr import col, lit
from repro.optimizer import Optimizer, OptimizerConfig, Plan
from repro.sqltypes import BOOLEAN, DATE, DOUBLE, INTEGER, decimal_type, varchar
from repro.storage import Database

__version__ = "1.0.0"

__all__ = [
    "QueryResult",
    "execute",
    "plan_query",
    "run_query",
    "Catalog",
    "Column",
    "Index",
    "IndexColumn",
    "TableSchema",
    "EquivalenceClasses",
    "FDSet",
    "FunctionalDependency",
    "GeneralOrderSpec",
    "OrderContext",
    "OrderKey",
    "OrderSpec",
    "SortDirection",
    "cover_order",
    "fd",
    "homogenize_order",
    "reduce_order",
    "test_order",
    "ReproError",
    "col",
    "lit",
    "Optimizer",
    "OptimizerConfig",
    "Plan",
    "BOOLEAN",
    "DATE",
    "DOUBLE",
    "INTEGER",
    "decimal_type",
    "varchar",
    "Database",
    "__version__",
]
