"""*Reduce Order* — Figure 2 of the paper.

Rewrites an order specification into canonical form:

1. substitute each column with its equivalence-class head;
2. drop every column functionally determined by the columns that precede
   it (constant-bound columns are determined by the empty set, so they
   drop no matter where they appear).

Figure 2 scans the specification backwards testing ``B -> {c_i}`` with
``B`` = all columns preceding ``c_i``. We scan forwards keeping a running
attribute closure of the *retained* prefix; the two formulations remove
exactly the same columns (anything the full prefix determines, the
retained prefix also determines, because dropped columns are themselves
in the retained prefix's closure) and the forward scan lets the closure
grow incrementally — one fixpoint across the whole specification instead
of one per retained key.

Results are memoized per context content (see :mod:`repro.core.memo`):
reduction is a pure function of ``(spec, context content)`` and contexts
are immutable, so entries never invalidate. The reduced form is its own
reduction, so it is seeded into the memo too — re-reducing an already
canonical spec (Test Order does this constantly) is a first-probe hit.

The result is minimal: no retained column is determined by those before
it, which is why the reduced form is also the minimal sort-column list
(Section 4.2).
"""

from __future__ import annotations

from typing import List

from repro.core import memo as memo_module
from repro.core.context import OrderContext
from repro.core.instrument import COUNTERS
from repro.core.memo import intern_spec
from repro.core.ordering import OrderKey, OrderSpec


def reduce_order(specification: OrderSpec, context: OrderContext) -> OrderSpec:
    """Return the canonical (reduced) form of ``specification``.

    Reduction never changes how the specification orders records of any
    stream on which the context's predicates/FDs hold — see the proof
    sketch in Section 4.1 and the property tests in
    ``tests/core/test_reduce_properties.py``.
    """
    COUNTERS["reduce.calls"] = COUNTERS.get("reduce.calls", 0) + 1
    if not memo_module.ENABLED:
        return _reduce_order_impl(specification, context)
    memo = context.memo().reduce
    cached = memo.get(specification)
    if cached is not None:
        COUNTERS["reduce.memo_hits"] = COUNTERS.get("reduce.memo_hits", 0) + 1
        return cached
    result = intern_spec(_reduce_order_impl(specification, context))
    memo[specification] = result
    # The reduced form is a fixed point of reduction; seed it so callers
    # that re-reduce canonical specs hit immediately.
    memo.setdefault(result, result)
    return result


def _reduce_order_impl(
    specification: OrderSpec, context: OrderContext
) -> OrderSpec:
    """Figure 2 proper, on the indexed incremental closure."""
    # Step 1: rewrite onto equivalence-class heads, collapsing duplicates
    # that the rewrite may introduce (x, y with x = y become one column).
    rewritten: List[OrderKey] = []
    seen_columns = set()
    for key in specification:
        head = context.equivalences.head(key.column)
        if head in seen_columns:
            continue
        seen_columns.add(head)
        rewritten.append(key.with_column(head))

    # Step 2: drop keys determined by the retained prefix. The closure
    # starts from the empty set so empty-headed FDs (constants) already
    # apply to the first column; each retained key extends the same
    # closure rather than rebuilding it.
    retained: List[OrderKey] = []
    closure = context.closure(())
    for key in rewritten:
        if key.column in closure:
            continue
        retained.append(key)
        closure.extend(key.column)
        if closure.determines_everything:
            # A key is fully present: every later column is redundant.
            break

    return OrderSpec(retained)


def minimal_sort_columns(
    specification: OrderSpec, context: OrderContext
) -> OrderSpec:
    """The minimal sort-column list for ``specification`` (Section 4.2).

    This is simply the reduced specification; the alias exists because
    callers planning a sort ask a different question ("what do I sort
    on?") than callers testing satisfaction.
    """
    return reduce_order(specification, context)
