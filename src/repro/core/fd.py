"""Functional dependencies and attribute-set closure.

Section 4.1 frames every order-relevant fact as a functional dependency:

* ``col = constant``      gives the empty-headed FD ``{} -> {col}``;
* ``x = y``               gives ``{x} -> {y}`` and ``{y} -> {x}``;
* a key ``K``             gives ``K -> {all columns}``;
* trivially ``{c} -> {c}``.

Reduction then asks one question repeatedly: *does this set of columns
functionally determine that column?* — answered here with the textbook
attribute-closure algorithm [Beeri & Bernstein '79, as cited via DD92].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Set, Tuple

from repro.errors import OrderError
from repro.expr.nodes import ColumnRef

ColumnSet = FrozenSet[ColumnRef]

# Marker used in the tail of a key FD meaning "every column of the stream".
# Keys determine all columns, including ones added later by joins, so the
# tail cannot be enumerated at FD-creation time.
ALL_COLUMNS = "*"


@dataclass(frozen=True)
class FunctionalDependency:
    """``head -> tail``; ``tail`` may be the ALL_COLUMNS marker for keys."""

    head: ColumnSet
    tail: object  # ColumnSet or the ALL_COLUMNS marker

    def __post_init__(self):
        if self.tail is not ALL_COLUMNS and not isinstance(self.tail, frozenset):
            raise OrderError(f"bad FD tail {self.tail!r}")

    def determines_all(self) -> bool:
        return self.tail is ALL_COLUMNS

    def is_empty_headed(self) -> bool:
        """Empty-headed FDs arise from ``col = constant`` predicates."""
        return not self.head

    def __str__(self) -> str:
        head = "{" + ", ".join(sorted(str(column) for column in self.head)) + "}"
        if self.determines_all():
            return f"{head} -> *"
        tail = "{" + ", ".join(sorted(str(column) for column in self.tail)) + "}"
        return f"{head} -> {tail}"


def fd(head: Iterable[ColumnRef], tail: Iterable[ColumnRef]) -> FunctionalDependency:
    """Shorthand constructor: ``fd([x], [y])`` is ``{x} -> {y}``."""
    return FunctionalDependency(frozenset(head), frozenset(tail))


def key_fd(key_columns: Iterable[ColumnRef]) -> FunctionalDependency:
    """The FD contributed by a key: ``K -> all columns``."""
    return FunctionalDependency(frozenset(key_columns), ALL_COLUMNS)


def constant_fd(column: ColumnRef) -> FunctionalDependency:
    """The empty-headed FD from ``column = constant``."""
    return FunctionalDependency(frozenset(), frozenset((column,)))


class FDSet:
    """An immutable-by-convention collection of functional dependencies.

    The only queries the order algebra needs are :meth:`closure` and
    :meth:`determines`; both treat ``K -> *`` FDs as determining every
    column whatsoever once the head is covered.
    """

    def __init__(self, dependencies: Iterable[FunctionalDependency] = ()):
        self._fds: Tuple[FunctionalDependency, ...] = tuple(dependencies)

    @property
    def dependencies(self) -> Tuple[FunctionalDependency, ...]:
        return self._fds

    def add(self, dependency: FunctionalDependency) -> "FDSet":
        """A new FDSet with ``dependency`` appended (no-op if present)."""
        if dependency in self._fds:
            return self
        return FDSet(self._fds + (dependency,))

    def union(self, other: "FDSet") -> "FDSet":
        merged = list(self._fds)
        for dependency in other._fds:
            if dependency not in merged:
                merged.append(dependency)
        return FDSet(merged)

    def closure(self, columns: Iterable[ColumnRef]) -> "_Closure":
        """The attribute closure of ``columns`` under this FD set.

        Returns a :class:`_Closure`, which answers membership queries and
        knows whether a ``K -> *`` fired (in which case it contains every
        column).
        """
        known: Set[ColumnRef] = set(columns)
        determines_everything = False
        changed = True
        while changed and not determines_everything:
            changed = False
            for dependency in self._fds:
                if not dependency.head <= known:
                    continue
                if dependency.determines_all():
                    determines_everything = True
                    break
                if not dependency.tail <= known:
                    known.update(dependency.tail)
                    changed = True
        return _Closure(frozenset(known), determines_everything)

    def determines(
        self, columns: Iterable[ColumnRef], target: ColumnRef
    ) -> bool:
        """Whether ``columns -> {target}`` follows from this FD set."""
        return target in self.closure(columns)

    def implies(self, dependency: FunctionalDependency) -> bool:
        """Whether ``dependency`` follows from this FD set (Armstrong)."""
        closure = self.closure(dependency.head)
        if dependency.determines_all():
            return closure.determines_everything
        return all(column in closure for column in dependency.tail)

    def __iter__(self) -> Iterator[FunctionalDependency]:
        return iter(self._fds)

    def __len__(self) -> int:
        return len(self._fds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = "; ".join(str(dependency) for dependency in self._fds)
        return f"FDSet[{inner}]"


class _Closure:
    """Result of an attribute-closure computation."""

    __slots__ = ("columns", "determines_everything")

    def __init__(self, columns: ColumnSet, determines_everything: bool):
        self.columns = columns
        self.determines_everything = determines_everything

    def __contains__(self, column: ColumnRef) -> bool:
        return self.determines_everything or column in self.columns

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.determines_everything:
            return "<closure: everything>"
        inner = ", ".join(sorted(str(column) for column in self.columns))
        return f"<closure: {inner}>"


EMPTY_FDS = FDSet()
