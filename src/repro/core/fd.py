"""Functional dependencies and attribute-set closure.

Section 4.1 frames every order-relevant fact as a functional dependency:

* ``col = constant``      gives the empty-headed FD ``{} -> {col}``;
* ``x = y``               gives ``{x} -> {y}`` and ``{y} -> {x}``;
* a key ``K``             gives ``K -> {all columns}``;
* trivially ``{c} -> {c}``.

Reduction then asks one question repeatedly: *does this set of columns
functionally determine that column?* — answered here with the textbook
attribute-closure algorithm [Beeri & Bernstein '79, as cited via DD92].

The paper's premise (Sections 4-5) is that this question is cheap enough
to ask at every plan comparison inside join enumeration, so the closure
here is *indexed* and *incremental* rather than the textbook
while-something-changed loop:

* each :class:`FDSet` lazily builds a head-column index (column ->
  dependencies mentioning it in their head) and per-dependency
  missing-head counts;
* :class:`_Closure` supports :meth:`_Closure.extend` — adding one column
  propagates only through dependencies whose heads that column touches,
  so growing a closure across the k keys of an order specification costs
  one fixpoint total instead of k from-scratch fixpoints;
* equivalence classes are consulted directly (when a column enters the
  closure its whole class enters) instead of being materialized as
  O(k^2) pairwise FDs by every context.

``x = y`` predicates therefore usually never become explicit FDs: the
closure reads them straight from the
:class:`~repro.core.equivalence.EquivalenceClasses` partition the
caller passes in. The naive reference formulation lives in
:mod:`repro.core.reference` and the metamorphic tests pin the two
implementations together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.instrument import COUNTERS
from repro.errors import OrderError
from repro.expr.nodes import ColumnRef

ColumnSet = FrozenSet[ColumnRef]

# Marker used in the tail of a key FD meaning "every column of the stream".
# Keys determine all columns, including ones added later by joins, so the
# tail cannot be enumerated at FD-creation time.
ALL_COLUMNS = "*"


@dataclass(frozen=True)
class FunctionalDependency:
    """``head -> tail``; ``tail`` may be the ALL_COLUMNS marker for keys."""

    head: ColumnSet
    tail: object  # ColumnSet or the ALL_COLUMNS marker

    def __post_init__(self):
        if self.tail is not ALL_COLUMNS and not isinstance(self.tail, frozenset):
            raise OrderError(f"bad FD tail {self.tail!r}")

    def determines_all(self) -> bool:
        return self.tail is ALL_COLUMNS

    def is_empty_headed(self) -> bool:
        """Empty-headed FDs arise from ``col = constant`` predicates."""
        return not self.head

    def __str__(self) -> str:
        head = "{" + ", ".join(sorted(str(column) for column in self.head)) + "}"
        if self.determines_all():
            return f"{head} -> *"
        tail = "{" + ", ".join(sorted(str(column) for column in self.tail)) + "}"
        return f"{head} -> {tail}"


def fd(head: Iterable[ColumnRef], tail: Iterable[ColumnRef]) -> FunctionalDependency:
    """Shorthand constructor: ``fd([x], [y])`` is ``{x} -> {y}``."""
    return FunctionalDependency(frozenset(head), frozenset(tail))


def key_fd(key_columns: Iterable[ColumnRef]) -> FunctionalDependency:
    """The FD contributed by a key: ``K -> all columns``."""
    return FunctionalDependency(frozenset(key_columns), ALL_COLUMNS)


def constant_fd(column: ColumnRef) -> FunctionalDependency:
    """The empty-headed FD from ``column = constant``."""
    return FunctionalDependency(frozenset(), frozenset((column,)))


class FDSet:
    """An immutable-by-convention collection of functional dependencies.

    The only queries the order algebra needs are :meth:`closure` and
    :meth:`determines`; both treat ``K -> *`` FDs as determining every
    column whatsoever once the head is covered.

    Membership is set-backed (:meth:`add` and :meth:`union` dedup in
    O(1) per dependency, not by scanning), and the head-column index
    behind :meth:`closure` is built lazily exactly once per FDSet — the
    add/union chains the optimizer builds while merging contexts never
    pay for indexes they do not query.
    """

    __slots__ = ("_fds", "_members", "_index")

    def __init__(self, dependencies: Iterable[FunctionalDependency] = ()):
        deduped: List[FunctionalDependency] = []
        seen: Set[FunctionalDependency] = set()
        for dependency in dependencies:
            if dependency not in seen:
                seen.add(dependency)
                deduped.append(dependency)
        self._fds: Tuple[FunctionalDependency, ...] = tuple(deduped)
        self._members: FrozenSet[FunctionalDependency] = frozenset(seen)
        self._index = None

    @classmethod
    def _make(
        cls,
        dependencies: Tuple[FunctionalDependency, ...],
        members: FrozenSet[FunctionalDependency],
    ) -> "FDSet":
        """Internal constructor for pre-deduplicated content."""
        created = cls.__new__(cls)
        created._fds = dependencies
        created._members = members
        created._index = None
        return created

    @property
    def dependencies(self) -> Tuple[FunctionalDependency, ...]:
        return self._fds

    def as_frozenset(self) -> FrozenSet[FunctionalDependency]:
        """The dependencies as a set — context fingerprints hash this."""
        return self._members

    def add(self, dependency: FunctionalDependency) -> "FDSet":
        """A new FDSet with ``dependency`` appended (no-op if present)."""
        if dependency in self._members:
            return self
        return FDSet._make(
            self._fds + (dependency,), self._members | {dependency}
        )

    def union(self, other: "FDSet") -> "FDSet":
        # Fast paths: self-union and empty/subsumed operands allocate
        # nothing — merge chains in ``properties.propagate`` hit these
        # constantly (a join's sides usually share inherited FDs).
        if other is self or not other._fds:
            return self
        if not self._fds:
            return other
        if other._members <= self._members:
            return self
        merged = list(self._fds)
        for dependency in other._fds:
            if dependency not in self._members:
                merged.append(dependency)
        return FDSet._make(tuple(merged), self._members | other._members)

    def _head_index(self):
        """Lazily built closure support structures.

        Returns ``(by_column, head_sizes, empty_headed)`` where
        ``by_column`` maps each head column to the indices of the
        dependencies mentioning it, ``head_sizes[i]`` is
        ``len(self._fds[i].head)``, and ``empty_headed`` lists the
        indices of constant FDs (they fire unconditionally).
        """
        index = self._index
        if index is None:
            by_column: Dict[ColumnRef, List[int]] = {}
            head_sizes: List[int] = []
            empty_headed: List[int] = []
            for position, dependency in enumerate(self._fds):
                head_sizes.append(len(dependency.head))
                if not dependency.head:
                    empty_headed.append(position)
                for column in dependency.head:
                    by_column.setdefault(column, []).append(position)
            index = (by_column, head_sizes, empty_headed)
            self._index = index
        return index

    def closure(
        self,
        columns: Iterable[ColumnRef],
        equivalences: Optional[object] = None,
    ) -> "_Closure":
        """The attribute closure of ``columns`` under this FD set.

        Returns a :class:`_Closure`, which answers membership queries,
        knows whether a ``K -> *`` fired (in which case it contains every
        column), and can be grown incrementally with
        :meth:`_Closure.extend`.

        ``equivalences`` (an
        :class:`~repro.core.equivalence.EquivalenceClasses`) is consulted
        directly when given: any column entering the closure drags its
        whole equivalence class in, which is exactly what materializing
        the pairwise ``{x} -> {y}``/``{y} -> {x}`` FDs used to achieve
        at O(k^2) space.
        """
        closure = _Closure(self, equivalences)
        for column in columns:
            closure.extend(column)
        return closure

    def determines(
        self, columns: Iterable[ColumnRef], target: ColumnRef
    ) -> bool:
        """Whether ``columns -> {target}`` follows from this FD set."""
        return target in self.closure(columns)

    def implies(self, dependency: FunctionalDependency) -> bool:
        """Whether ``dependency`` follows from this FD set (Armstrong)."""
        closure = self.closure(dependency.head)
        if dependency.determines_all():
            return closure.determines_everything
        return all(column in closure for column in dependency.tail)

    def __iter__(self) -> Iterator[FunctionalDependency]:
        return iter(self._fds)

    def __len__(self) -> int:
        return len(self._fds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = "; ".join(str(dependency) for dependency in self._fds)
        return f"FDSet[{inner}]"


class _Closure:
    """An attribute closure, growable one column at a time.

    ``extend(column)`` adds ``column`` to the underlying set and
    propagates through exactly the dependencies whose heads ``column``
    (or anything it drags in) completes — per-dependency missing-head
    counters make each dependency fire at most once over the closure's
    whole lifetime, so a sequence of extends costs one fixpoint total.
    """

    __slots__ = ("_known", "_missing", "_fds", "_by_column", "_equivalences",
                 "determines_everything")

    def __init__(self, fdset: FDSet, equivalences: Optional[object] = None):
        by_column, head_sizes, empty_headed = fdset._head_index()
        self._fds = fdset._fds
        self._by_column = by_column
        self._equivalences = equivalences
        self._known: Set[ColumnRef] = set()
        # Copy of the per-dependency missing-head counts; decremented as
        # head columns arrive, firing the dependency at zero.
        self._missing: List[int] = list(head_sizes)
        self.determines_everything = False
        COUNTERS["closure.builds"] = COUNTERS.get("closure.builds", 0) + 1
        for position in empty_headed:
            dependency = self._fds[position]
            if dependency.tail is ALL_COLUMNS:
                self.determines_everything = True
                return
            for column in dependency.tail:
                self.extend(column)

    @property
    def columns(self) -> ColumnSet:
        """Everything known to be in the closure so far.

        When :attr:`determines_everything` is set the closure logically
        contains every column; this reports the explicitly derived ones,
        matching the point at which derivation stopped.
        """
        return frozenset(self._known)

    def extend(self, column: ColumnRef) -> None:
        """Add ``column`` to the closed set and propagate to fixpoint."""
        known = self._known
        if self.determines_everything or column in known:
            return
        by_column = self._by_column
        missing = self._missing
        fds = self._fds
        equivalences = self._equivalences
        iterations = 0
        queue = [column]
        while queue:
            current = queue.pop()
            if current in known:
                continue
            known.add(current)
            iterations += 1
            if equivalences is not None:
                group = equivalences.group(current)
                if group is not None:
                    for member in group:
                        if member not in known:
                            queue.append(member)
            positions = by_column.get(current)
            if positions is None:
                continue
            for position in positions:
                missing[position] -= 1
                if missing[position] == 0:
                    dependency = fds[position]
                    if dependency.tail is ALL_COLUMNS:
                        self.determines_everything = True
                        COUNTERS["closure.iterations"] = (
                            COUNTERS.get("closure.iterations", 0) + iterations
                        )
                        return
                    for target in dependency.tail:
                        if target not in known:
                            queue.append(target)
        COUNTERS["closure.iterations"] = (
            COUNTERS.get("closure.iterations", 0) + iterations
        )

    def __contains__(self, column: ColumnRef) -> bool:
        return self.determines_everything or column in self._known

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.determines_everything:
            return "<closure: everything>"
        inner = ", ".join(sorted(str(column) for column in self._known))
        return f"<closure: {inner}>"


EMPTY_FDS = FDSet()
