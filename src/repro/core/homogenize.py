"""*Homogenize Order* — Figure 5 of the paper.

When an interesting order is pushed down (to one side of a join, into a
view, ...), its columns must be re-expressed in the target context's
columns. Equivalence classes license the substitution: ``(a.x, b.y)``
homogenizes to table ``b`` as ``(b.x, b.y)`` when ``a.x = b.x``.

Unlike reduction, homogenization may pick *any* class member (not just
the head), and may use equivalences from predicates that have not been
applied yet — it is about producing an order that will *eventually*
satisfy the original (Section 4.4).

Both entry points memoize per context content on ``(spec, frozenset of
target columns)`` — join enumeration homogenizes the same interesting
orders against the same table column sets for every plan of every DP
subset containing the table.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.core import memo as memo_module
from repro.core.context import OrderContext
from repro.core.instrument import COUNTERS
from repro.core.memo import intern_spec
from repro.core.ordering import OrderKey, OrderSpec
from repro.core.reduce import reduce_order
from repro.expr.nodes import ColumnRef

# Memo miss sentinel: ``None`` is a legitimate cached answer for
# homogenize_order.
_MISS = object()


def _substitute_key(
    key: OrderKey,
    targets: Set[ColumnRef],
    context: OrderContext,
) -> Optional[OrderKey]:
    if key.column in targets:
        return key
    candidates = [
        member
        for member in context.equivalences.members(key.column)
        if member in targets
    ]
    if candidates:
        # Deterministic pick keeps plans stable across runs.
        chosen = min(candidates, key=lambda c: (c.qualifier, c.name))
        return key.with_column(chosen)
    ods = context.ods
    if ods.is_empty():
        return None
    # Order-equivalent columns (strict monotone both ways, e.g. ``val``
    # and ``val + 1``) may stand in with a direction flip. One-way edges
    # (``d |-> year(d)``) must NOT substitute: sorting by the coarse
    # side does not produce the fine side's order.
    od_candidates = [
        (target, flip)
        for target in targets
        for flip in (ods.order_equivalent_flip(key.column, target),)
        if flip is not None
    ]
    if not od_candidates:
        return None
    chosen, flip = min(
        od_candidates, key=lambda pair: (pair[0].qualifier, pair[0].name)
    )
    replacement = key.with_column(chosen)
    return replacement.reversed() if flip else replacement


def homogenize_order(
    specification: OrderSpec,
    target_columns: Iterable[ColumnRef],
    context: OrderContext,
) -> Optional[OrderSpec]:
    """``specification`` re-expressed on ``target_columns``; None if impossible.

    The specification is reduced first (Figure 5 line 1), so columns made
    redundant by FDs do not block homogenization — the paper's example
    where ``{a.x} -> {b.y}`` lets ``(a.x, b.y)`` push down to table ``a``.
    """
    COUNTERS["homogenize.calls"] = COUNTERS.get("homogenize.calls", 0) + 1
    targets = (
        target_columns
        if isinstance(target_columns, frozenset)
        else frozenset(target_columns)
    )
    if not memo_module.ENABLED:
        return _homogenize_order_impl(specification, targets, context)
    memo = context.memo().homogenize
    key = (specification, targets)
    cached = memo.get(key, _MISS)
    if cached is not _MISS:
        COUNTERS["homogenize.memo_hits"] = (
            COUNTERS.get("homogenize.memo_hits", 0) + 1
        )
        return cached
    result = _homogenize_order_impl(specification, targets, context)
    if result is not None:
        result = intern_spec(result)
    memo[key] = result
    return result


def _homogenize_order_impl(
    specification: OrderSpec,
    targets: Set[ColumnRef],
    context: OrderContext,
) -> Optional[OrderSpec]:
    """Figure 5 proper."""
    reduced = reduce_order(specification, context)
    substituted: List[OrderKey] = []
    seen: Set[ColumnRef] = set()
    for key in reduced:
        replacement = _substitute_key(key, targets, context)
        if replacement is None:
            return None
        if replacement.column in seen:
            continue
        seen.add(replacement.column)
        substituted.append(replacement)
    return OrderSpec(substituted)


def homogenize_prefix(
    specification: OrderSpec,
    target_columns: Iterable[ColumnRef],
    context: OrderContext,
) -> OrderSpec:
    """The largest homogenizable prefix of ``specification``.

    Used by the order scan (Section 5.1): when a full homogenization is
    impossible, the scan optimistically pushes down the largest prefix in
    the hope that an FD discovered during planning makes the suffix
    redundant. The result may be empty.
    """
    COUNTERS["homogenize.calls"] = COUNTERS.get("homogenize.calls", 0) + 1
    targets = (
        target_columns
        if isinstance(target_columns, frozenset)
        else frozenset(target_columns)
    )
    if not memo_module.ENABLED:
        return _homogenize_prefix_impl(specification, targets, context)
    memo = context.memo().prefix
    key = (specification, targets)
    cached = memo.get(key)
    if cached is not None:
        COUNTERS["homogenize.memo_hits"] = (
            COUNTERS.get("homogenize.memo_hits", 0) + 1
        )
        return cached
    result = intern_spec(_homogenize_prefix_impl(specification, targets, context))
    memo[key] = result
    return result


def _homogenize_prefix_impl(
    specification: OrderSpec,
    targets: Set[ColumnRef],
    context: OrderContext,
) -> OrderSpec:
    reduced = reduce_order(specification, context)
    substituted: List[OrderKey] = []
    seen: Set[ColumnRef] = set()
    for key in reduced:
        replacement = _substitute_key(key, targets, context)
        if replacement is None:
            break
        if replacement.column in seen:
            continue
        seen.add(replacement.column)
        substituted.append(replacement)
    return OrderSpec(substituted)
