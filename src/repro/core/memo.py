"""Memoization support for the order algebra.

The four fundamental operations (Reduce/Test/Cover/Homogenize) are pure
functions of ``(specification(s), context content)``, and contexts are
immutable by convention — so results never need invalidation and can be
memoized for a context's whole lifetime. Join enumeration asks the same
questions of the same contexts thousands of times per query (every DP
pruning comparison calls Test Order), which is exactly the amortization
the paper's Section 4 cheapness argument assumes.

Two layers make the memo effective:

* **Content fingerprints.** Many distinct :class:`OrderContext`
  instances carry identical content — every plan over the same DP subset
  derives an equal context. Memo tables are therefore keyed by the
  context's content fingerprint in a process-wide registry, so equal
  contexts *share* one table and a reduction computed under one plan's
  context is a hit under its siblings'.
* **Spec interning.** Reduced specifications are interned so the same
  canonical order is one object everywhere; repeated dict probes then
  short-circuit on identity and reuse the spec's cached hash.

The registry is bounded (cleared wholesale at a cap) so a long-running
process serving many distinct queries cannot leak; within one planning
run the cap is never approached.

``ENABLED`` is the kill switch used by benchmarks to measure the
un-memoized cost and by tests to pin memoized results against the naive
reference implementations (:mod:`repro.core.reference`). The
``OptimizerConfig.disabled()`` baseline never reaches this module at
all: its naive order tests (``test_order_naive`` and friends) bypass
the algebra front doors entirely.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

from repro.core.instrument import COUNTERS

# Flipped by ``memoization_disabled()`` only; reads are plain module
# attribute lookups on the hot path.
ENABLED = True

# fingerprint -> ContextMemo. Bounded: cleared wholesale at the cap.
_REGISTRY: Dict[object, "ContextMemo"] = {}
_REGISTRY_CAP = 1024

# Interned specification objects (spec -> canonical instance). Bounded
# the same way; entries are tiny.
_INTERNED: Dict[object, object] = {}
_INTERN_CAP = 8192


class ContextMemo:
    """Per-context-content memo tables for the four operations."""

    __slots__ = ("reduce", "test", "cover", "homogenize", "prefix")

    def __init__(self):
        self.reduce: Dict[object, object] = {}
        self.test: Dict[object, bool] = {}
        self.cover: Dict[object, object] = {}
        self.homogenize: Dict[object, object] = {}
        self.prefix: Dict[object, object] = {}


def memo_for(fingerprint: object) -> ContextMemo:
    """The shared memo table for a context content fingerprint."""
    memo = _REGISTRY.get(fingerprint)
    if memo is None:
        if len(_REGISTRY) >= _REGISTRY_CAP:
            _REGISTRY.clear()
        memo = ContextMemo()
        _REGISTRY[fingerprint] = memo
        COUNTERS["memo.tables_created"] = (
            COUNTERS.get("memo.tables_created", 0) + 1
        )
    else:
        COUNTERS["memo.tables_shared"] = (
            COUNTERS.get("memo.tables_shared", 0) + 1
        )
    return memo


def intern_spec(specification):
    """The canonical instance of ``specification``.

    Equal specs returned from different reductions collapse onto one
    object, making later memo probes identity-fast.
    """
    canonical = _INTERNED.get(specification)
    if canonical is not None:
        return canonical
    if len(_INTERNED) >= _INTERN_CAP:
        _INTERNED.clear()
    _INTERNED[specification] = specification
    return specification


def clear_memos() -> None:
    """Drop every memo table and interned spec (test/bench hygiene)."""
    _REGISTRY.clear()
    _INTERNED.clear()


@contextmanager
def memoization_disabled() -> Iterator[None]:
    """Run the algebra with every memo bypassed (still the fast closure).

    Used by ``repro.bench`` to report before/after call counts and by
    the metamorphic tests; not used by any planning path.
    """
    global ENABLED
    previous = ENABLED
    ENABLED = False
    try:
        yield
    finally:
        ENABLED = previous
