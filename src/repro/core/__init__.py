"""The paper's core contribution: the order-optimization algebra.

This package implements Section 4 of Simmen/Shekita/Malkemus (SIGMOD '96):

* :mod:`repro.core.ordering` — order specifications (interesting orders
  and order properties share one representation);
* :mod:`repro.core.equivalence` — column equivalence classes induced by
  ``col = col`` predicates;
* :mod:`repro.core.fd` — functional dependencies and attribute closure;
* :mod:`repro.core.od` — order dependencies (``X |-> Y`` edges beyond
  the paper, after Szlichta/Godfrey/Gryz);
* :mod:`repro.core.context` — the bundle (FDs + equivalences + constants)
  that reduction consumes;
* :mod:`repro.core.reduce` — *Reduce Order* (Figure 2);
* :mod:`repro.core.test` — *Test Order* (Figure 3);
* :mod:`repro.core.cover` — *Cover Order* (Figure 4);
* :mod:`repro.core.homogenize` — *Homogenize Order* (Figure 5);
* :mod:`repro.core.general` — Section 7's "degrees of freedom" orders for
  GROUP BY / DISTINCT.

Supporting infrastructure (no paper section of their own):

* :mod:`repro.core.instrument` — plan-time counters and timers;
* :mod:`repro.core.memo` — content-fingerprinted memo tables for the
  four operations;
* :mod:`repro.core.reference` — the naive textbook formulations kept as
  a testing oracle.
"""

from repro.core import instrument
from repro.core.ordering import OrderKey, OrderSpec, SortDirection, asc, desc
from repro.core.equivalence import EquivalenceClasses
from repro.core.fd import FDSet, FunctionalDependency, fd
from repro.core.od import EMPTY_ODS, ODSet, OrderDependency
from repro.core.context import OrderContext
from repro.core.reduce import reduce_order
from repro.core.test import test_order
from repro.core.cover import cover_order
from repro.core.homogenize import homogenize_order, homogenize_prefix
from repro.core.general import GeneralOrderSpec, OrderSegment
from repro.core.memo import clear_memos, memoization_disabled

__all__ = [
    "instrument",
    "clear_memos",
    "memoization_disabled",
    "OrderKey",
    "OrderSpec",
    "SortDirection",
    "asc",
    "desc",
    "EquivalenceClasses",
    "FDSet",
    "FunctionalDependency",
    "fd",
    "EMPTY_ODS",
    "ODSet",
    "OrderDependency",
    "OrderContext",
    "reduce_order",
    "test_order",
    "cover_order",
    "homogenize_order",
    "homogenize_prefix",
    "GeneralOrderSpec",
    "OrderSegment",
]
