"""*Cover Order* — Figure 4 of the paper.

The cover of interesting orders ``I1`` and ``I2`` is an order ``C`` such
that any order property satisfying ``C`` satisfies both. After reduction,
a cover exists iff the shorter order is a prefix of the longer, and the
longer one is the cover.

Combining covers is how one sort comes to serve a merge-join, a GROUP
BY, and an ORDER BY at once (Figure 6 / Section 6). Results (including
the "no cover" outcome) are memoized per context content.
"""

from __future__ import annotations

from typing import Optional

from repro.core import memo as memo_module
from repro.core.context import OrderContext
from repro.core.instrument import COUNTERS
from repro.core.ordering import OrderSpec
from repro.core.reduce import reduce_order

# Memo miss sentinel: ``None`` is a legitimate cached answer here.
_MISS = object()


def cover_order(
    first: OrderSpec,
    second: OrderSpec,
    context: OrderContext,
) -> Optional[OrderSpec]:
    """The cover of ``first`` and ``second``, or ``None`` if impossible."""
    COUNTERS["cover.calls"] = COUNTERS.get("cover.calls", 0) + 1
    if not memo_module.ENABLED:
        return _cover_order_impl(first, second, context)
    memo = context.memo().cover
    key = (first, second)
    cached = memo.get(key, _MISS)
    if cached is not _MISS:
        COUNTERS["cover.memo_hits"] = COUNTERS.get("cover.memo_hits", 0) + 1
        return cached
    result = _cover_order_impl(first, second, context)
    memo[key] = result
    return result


def _cover_order_impl(
    first: OrderSpec,
    second: OrderSpec,
    context: OrderContext,
) -> Optional[OrderSpec]:
    """Figure 4 proper."""
    reduced_first = reduce_order(first, context)
    reduced_second = reduce_order(second, context)
    if len(reduced_first) > len(reduced_second):
        reduced_first, reduced_second = reduced_second, reduced_first
    if reduced_first.is_prefix_of(reduced_second):
        return reduced_second
    return None


def cover_order_naive(first: OrderSpec, second: OrderSpec) -> Optional[OrderSpec]:
    """Cover without reduction, for the order-opt-disabled baseline."""
    shorter, longer = first, second
    if len(shorter) > len(longer):
        shorter, longer = longer, shorter
    if shorter.is_prefix_of(longer):
        return longer
    return None
