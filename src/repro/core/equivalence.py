"""Column equivalence classes.

``col = col`` predicates partition columns into equivalence classes
(Section 4.1). Reduction rewrites every column to its class *head* — a
deterministic representative — so two specifications that differ only in
which class member they name compare equal afterwards.

Implemented as a union-find with deterministic head selection: the head
of a class is its lexicographically smallest member, so rewriting does
not depend on insertion order.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.expr.nodes import ColumnRef


def _column_sort_token(column: ColumnRef) -> Tuple[str, str]:
    return (column.qualifier, column.name)


class EquivalenceClasses:
    """A union-find over column references with stable heads."""

    def __init__(self, equalities: Iterable[Tuple[ColumnRef, ColumnRef]] = ()):
        self._parent: Dict[ColumnRef, ColumnRef] = {}
        # Lazily built column -> frozenset(class members) map; invalidated
        # by add_equality. The closure machinery does one dict lookup per
        # column instead of scanning the whole partition.
        self._groups: Dict[ColumnRef, FrozenSet[ColumnRef]] = None
        for left, right in equalities:
            self.add_equality(left, right)

    def copy(self) -> "EquivalenceClasses":
        duplicate = EquivalenceClasses()
        duplicate._parent = dict(self._parent)
        # Same partition, same groups; the cache reference is safe to
        # share because add_equality replaces rather than mutates it.
        duplicate._groups = self._groups
        return duplicate

    def _group_map(self) -> Dict[ColumnRef, FrozenSet[ColumnRef]]:
        groups = self._groups
        if groups is None:
            by_root: Dict[ColumnRef, List[ColumnRef]] = {}
            for column in self._parent:
                by_root.setdefault(self._find(column), []).append(column)
            groups = {}
            for members in by_root.values():
                if len(members) < 2:
                    continue
                group = frozenset(members)
                for member in members:
                    groups[member] = group
            self._groups = groups
        return groups

    def group(self, column: ColumnRef) -> Optional[FrozenSet[ColumnRef]]:
        """``column``'s non-trivial class, or None if it stands alone.

        One dict lookup on the cached group map — this is the closure
        hot path that replaces materialized pairwise equivalence FDs.
        """
        return self._group_map().get(column)

    def _find(self, column: ColumnRef) -> ColumnRef:
        root = column
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        # Path compression.
        while self._parent.get(column, column) != root:
            self._parent[column], column = root, self._parent[column]
        return root

    def add_equality(self, left: ColumnRef, right: ColumnRef) -> None:
        """Merge the classes of ``left`` and ``right``."""
        self._parent.setdefault(left, left)
        self._parent.setdefault(right, right)
        left_root, right_root = self._find(left), self._find(right)
        if left_root == right_root:
            return
        # Keep the lexicographically smaller root so heads are stable.
        if _column_sort_token(right_root) < _column_sort_token(left_root):
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        self._groups = None

    def head(self, column: ColumnRef) -> ColumnRef:
        """The designated representative of ``column``'s class.

        A column never mentioned in any equality is its own head.
        """
        if column not in self._parent:
            return column
        return self._find(column)

    def are_equivalent(self, left: ColumnRef, right: ColumnRef) -> bool:
        if left == right:
            return True
        if left not in self._parent or right not in self._parent:
            return False
        return self._find(left) == self._find(right)

    def members(self, column: ColumnRef) -> FrozenSet[ColumnRef]:
        """Every column equivalent to ``column`` (including itself)."""
        group = self._group_map().get(column)
        if group is None:
            return frozenset((column,))
        return group

    def classes(self) -> List[FrozenSet[ColumnRef]]:
        """All non-trivial classes (size >= 2)."""
        return list(dict.fromkeys(self._group_map().values()))

    def class_sets(self) -> FrozenSet[FrozenSet[ColumnRef]]:
        """The partition's non-trivial classes as a hashable set.

        This is the equivalence component of a context fingerprint: two
        partitions with the same class sets behave identically under
        head(), members(), and closure consultation.
        """
        return frozenset(self._group_map().values())

    def merged_with(self, other: "EquivalenceClasses") -> "EquivalenceClasses":
        """A new instance containing both partitions' equalities."""
        merged = self.copy()
        for group in other.classes():
            ordered = sorted(group, key=_column_sort_token)
            anchor = ordered[0]
            for column in ordered[1:]:
                merged.add_equality(anchor, column)
        return merged

    def __iter__(self) -> Iterator[ColumnRef]:
        return iter(self._parent)

    def __len__(self) -> int:
        return len(self.classes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = [
            "{" + ", ".join(sorted(str(column) for column in group)) + "}"
            for group in self.classes()
        ]
        return "EquivalenceClasses(" + ", ".join(sorted(rendered)) + ")"
