"""Column equivalence classes.

``col = col`` predicates partition columns into equivalence classes
(Section 4.1). Reduction rewrites every column to its class *head* — a
deterministic representative — so two specifications that differ only in
which class member they name compare equal afterwards.

Implemented as a union-find with deterministic head selection: the head
of a class is its lexicographically smallest member, so rewriting does
not depend on insertion order.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.expr.nodes import ColumnRef


def _column_sort_token(column: ColumnRef) -> Tuple[str, str]:
    return (column.qualifier, column.name)


class EquivalenceClasses:
    """A union-find over column references with stable heads."""

    def __init__(self, equalities: Iterable[Tuple[ColumnRef, ColumnRef]] = ()):
        self._parent: Dict[ColumnRef, ColumnRef] = {}
        for left, right in equalities:
            self.add_equality(left, right)

    def copy(self) -> "EquivalenceClasses":
        duplicate = EquivalenceClasses()
        duplicate._parent = dict(self._parent)
        return duplicate

    def _find(self, column: ColumnRef) -> ColumnRef:
        root = column
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        # Path compression.
        while self._parent.get(column, column) != root:
            self._parent[column], column = root, self._parent[column]
        return root

    def add_equality(self, left: ColumnRef, right: ColumnRef) -> None:
        """Merge the classes of ``left`` and ``right``."""
        self._parent.setdefault(left, left)
        self._parent.setdefault(right, right)
        left_root, right_root = self._find(left), self._find(right)
        if left_root == right_root:
            return
        # Keep the lexicographically smaller root so heads are stable.
        if _column_sort_token(right_root) < _column_sort_token(left_root):
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root

    def head(self, column: ColumnRef) -> ColumnRef:
        """The designated representative of ``column``'s class.

        A column never mentioned in any equality is its own head.
        """
        if column not in self._parent:
            return column
        return self._find(column)

    def are_equivalent(self, left: ColumnRef, right: ColumnRef) -> bool:
        if left == right:
            return True
        if left not in self._parent or right not in self._parent:
            return False
        return self._find(left) == self._find(right)

    def members(self, column: ColumnRef) -> FrozenSet[ColumnRef]:
        """Every column equivalent to ``column`` (including itself)."""
        if column not in self._parent:
            return frozenset((column,))
        root = self._find(column)
        return frozenset(
            candidate
            for candidate in self._parent
            if self._find(candidate) == root
        )

    def classes(self) -> List[FrozenSet[ColumnRef]]:
        """All non-trivial classes (size >= 2)."""
        by_root: Dict[ColumnRef, Set[ColumnRef]] = {}
        for column in self._parent:
            by_root.setdefault(self._find(column), set()).add(column)
        return [
            frozenset(group) for group in by_root.values() if len(group) >= 2
        ]

    def merged_with(self, other: "EquivalenceClasses") -> "EquivalenceClasses":
        """A new instance containing both partitions' equalities."""
        merged = self.copy()
        for group in other.classes():
            ordered = sorted(group, key=_column_sort_token)
            anchor = ordered[0]
            for column in ordered[1:]:
                merged.add_equality(anchor, column)
        return merged

    def __iter__(self) -> Iterator[ColumnRef]:
        return iter(self._parent)

    def __len__(self) -> int:
        return len(self.classes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = [
            "{" + ", ".join(sorted(str(column) for column in group)) + "}"
            for group in self.classes()
        ]
        return "EquivalenceClasses(" + ", ".join(sorted(rendered)) + ")"
