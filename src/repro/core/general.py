"""General interesting orders with degrees of freedom (Section 7).

Order-based GROUP BY and DISTINCT do not dictate one exact order: their
columns may appear in any permutation and each may be ascending or
descending. For ``GROUP BY x, y`` with ``SUM(DISTINCT z)`` the paper
counts sixteen satisfying orders — two permutations of ``{x, y}`` times
eight direction choices — and stores *one* general order instead.

A :class:`GeneralOrderSpec` is a sequence of :class:`OrderSegment`
entries. Each segment is either

* fixed — one column with a required direction (ORDER BY contributes
  these), or
* free — a set of columns that may be permuted, each direction free
  (GROUP BY / DISTINCT contribute these).

Segments must be satisfied in sequence: every column of segment *i*
(minus FD-redundant ones) must be consumed before segment *i+1* starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.context import OrderContext
from repro.core.ordering import OrderKey, OrderSpec, SortDirection
from repro.core.reduce import reduce_order
from repro.errors import OrderError
from repro.expr.nodes import ColumnRef


@dataclass(frozen=True)
class OrderSegment:
    """One segment of a general order.

    ``columns`` is the unordered set of columns the segment needs.
    ``fixed_key`` is set for fixed segments (exactly one column with a
    required direction); free segments leave it ``None``.
    """

    columns: frozenset
    fixed_key: Optional[OrderKey] = None

    def __post_init__(self):
        if self.fixed_key is not None:
            if self.columns != frozenset((self.fixed_key.column,)):
                raise OrderError("fixed segment must contain exactly its key")
        elif not self.columns:
            raise OrderError("free segment needs at least one column")

    @property
    def is_fixed(self) -> bool:
        return self.fixed_key is not None

    @classmethod
    def fixed(cls, key: OrderKey) -> "OrderSegment":
        return cls(frozenset((key.column,)), key)

    @classmethod
    def free(cls, columns: Iterable[ColumnRef]) -> "OrderSegment":
        return cls(frozenset(columns))

    def __str__(self) -> str:
        if self.is_fixed:
            return str(self.fixed_key)
        inner = ", ".join(sorted(str(column) for column in self.columns))
        return "{" + inner + "}"


def _deterministic(column: ColumnRef) -> Tuple[str, str]:
    return (column.qualifier, column.name)


class GeneralOrderSpec:
    """An interesting order with permutation and direction freedom."""

    def __init__(self, segments: Iterable[OrderSegment]):
        self.segments: Tuple[OrderSegment, ...] = tuple(segments)

    @classmethod
    def from_group_by(cls, columns: Sequence[ColumnRef]) -> "GeneralOrderSpec":
        """The general order of an order-based GROUP BY."""
        if not columns:
            return cls(())
        return cls((OrderSegment.free(columns),))

    @classmethod
    def from_distinct(cls, columns: Sequence[ColumnRef]) -> "GeneralOrderSpec":
        """The general order of an order-based DISTINCT."""
        return cls.from_group_by(columns)

    @classmethod
    def from_group_by_with_distinct_agg(
        cls,
        group_columns: Sequence[ColumnRef],
        distinct_argument: ColumnRef,
    ) -> "GeneralOrderSpec":
        """GROUP BY + one DISTINCT aggregate: group columns, then the arg.

        This is the paper's sixteen-orders example: ``{x, y}`` then
        ``{z}``, permutable within segments, directions free.
        """
        segments: List[OrderSegment] = []
        if group_columns:
            segments.append(OrderSegment.free(group_columns))
        segments.append(OrderSegment.free((distinct_argument,)))
        return cls(segments)

    @classmethod
    def from_spec(cls, specification: OrderSpec) -> "GeneralOrderSpec":
        """An exact order as a degenerate general order (all fixed)."""
        return cls(OrderSegment.fixed(key) for key in specification)

    def is_empty(self) -> bool:
        return not self.segments

    def all_columns(self) -> Set[ColumnRef]:
        found: Set[ColumnRef] = set()
        for segment in self.segments:
            found |= segment.columns
        return found

    # ------------------------------------------------------------------
    # Satisfaction
    # ------------------------------------------------------------------

    def satisfied_by(
        self, order_property: OrderSpec, context: OrderContext
    ) -> bool:
        """Whether a stream ordered by ``order_property`` satisfies us."""
        return self._match(order_property, context) is not None

    def _match(
        self, order_property: OrderSpec, context: OrderContext
    ) -> Optional[int]:
        """Greedy segment-by-segment match.

        Returns the number of property keys consumed on success, None on
        failure. Works on reduced forms; FD-redundant segment columns are
        auto-satisfied as the closure grows.
        """
        reduced_property = reduce_order(order_property, context)
        position = 0
        closure = context.closure(())
        for segment in self.segments:
            needed = {
                context.equivalences.head(column) for column in segment.columns
            }
            needed = {column for column in needed if column not in closure}
            while needed:
                if position >= len(reduced_property):
                    return None
                key = reduced_property[position]
                if key.column not in needed:
                    return None
                if segment.is_fixed:
                    required = segment.fixed_key.direction
                    if key.direction is not required:
                        return None
                position += 1
                closure.extend(key.column)
                needed = {
                    column for column in needed if column not in closure
                }
        return position

    # ------------------------------------------------------------------
    # Concretization
    # ------------------------------------------------------------------

    def concrete(
        self,
        context: OrderContext,
        hint: Optional[OrderSpec] = None,
    ) -> OrderSpec:
        """One concrete order satisfying this general order.

        ``hint`` biases free segments: columns appearing in the hint are
        emitted first, in hint order and with hint directions, so the
        concrete order has the best chance of *also* satisfying the hint
        (see :meth:`aligned_with`). Without a hint, columns come out in a
        deterministic lexicographic order, ascending.
        """
        hint_rank = {}
        hint_direction = {}
        if hint is not None:
            for index, key in enumerate(reduce_order(hint, context)):
                hint_rank[key.column] = index
                hint_direction[key.column] = key.direction
        emitted: List[OrderKey] = []
        closure = context.closure(())
        for segment in self.segments:
            if segment.is_fixed:
                head = context.equivalences.head(segment.fixed_key.column)
                if head in closure:
                    continue
                emitted.append(segment.fixed_key.with_column(head))
                closure.extend(head)
            else:
                heads = {
                    context.equivalences.head(column)
                    for column in segment.columns
                }
                pending = sorted(
                    heads,
                    key=lambda column: (
                        hint_rank.get(column, len(hint_rank)),
                        _deterministic(column),
                    ),
                )
                for column in pending:
                    if column in closure:
                        continue
                    direction = hint_direction.get(column, SortDirection.ASC)
                    emitted.append(OrderKey(column, direction))
                    closure.extend(column)
            if closure.determines_everything:
                break
        return OrderSpec(emitted)

    def aligned_with(
        self, other: OrderSpec, context: OrderContext
    ) -> Optional[OrderSpec]:
        """A concrete order satisfying both us and ``other``, if one exists.

        This is Cover Order generalized to a free order: used to merge a
        GROUP BY's general order with an ORDER BY so one sort serves both
        (Figure 6). Returns None when no single order can satisfy both.
        """
        candidate = self.concrete(context, hint=other)
        # The candidate always satisfies the general order by
        # construction; ``other`` must reduce to a prefix of it, possibly
        # extended by trailing keys of ``other`` beyond our columns.
        reduced_other = reduce_order(other, context)
        reduced_candidate = reduce_order(candidate, context)
        if reduced_other.is_prefix_of(reduced_candidate):
            return reduced_candidate
        if reduced_candidate.is_prefix_of(reduced_other):
            # ``other`` keeps ordering beyond our needs: the longer order
            # still satisfies both (our match consumes only a prefix).
            if self.satisfied_by(reduced_other, context):
                return reduced_other
        return None

    def enumerate_orders(self, limit: int = 64) -> List[OrderSpec]:
        """Every concrete order this general order admits (up to ``limit``).

        Exists to demonstrate the Section 7 example (sixteen orders);
        planning never enumerates — it uses :meth:`satisfied_by`.
        """
        import itertools

        results: List[OrderSpec] = []

        def expand(segment_index: int, keys: List[OrderKey]) -> None:
            if len(results) >= limit:
                return
            if segment_index == len(self.segments):
                results.append(OrderSpec(list(keys)))
                return
            segment = self.segments[segment_index]
            if segment.is_fixed:
                keys.append(segment.fixed_key)
                expand(segment_index + 1, keys)
                keys.pop()
                return
            columns = sorted(segment.columns, key=_deterministic)
            for permutation in itertools.permutations(columns):
                for directions in itertools.product(
                    (SortDirection.ASC, SortDirection.DESC),
                    repeat=len(permutation),
                ):
                    if len(results) >= limit:
                        return
                    keys.extend(
                        OrderKey(column, direction)
                        for column, direction in zip(permutation, directions)
                    )
                    expand(segment_index + 1, keys)
                    del keys[len(keys) - len(permutation) :]

        expand(0, [])
        return results

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GeneralOrderSpec)
            and self.segments == other.segments
        )

    def __hash__(self) -> int:
        return hash(self.segments)

    def __str__(self) -> str:
        inner = ", ".join(str(segment) for segment in self.segments)
        return f"general[{inner}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GeneralOrderSpec({self})"
