"""*Test Order* — Figure 3 of the paper.

An order property ``OP`` satisfies an interesting order ``I`` iff, after
both are reduced, ``I`` is empty or ``I`` is a prefix of ``OP``.
"""

from __future__ import annotations

from repro.core.context import OrderContext
from repro.core.ordering import OrderSpec
from repro.core.reduce import reduce_order


def test_order(
    interesting: OrderSpec,
    order_property: OrderSpec,
    context: OrderContext,
) -> bool:
    """Whether ``order_property`` satisfies ``interesting`` under ``context``."""
    reduced_interesting = reduce_order(interesting, context)
    if reduced_interesting.is_empty():
        return True
    reduced_property = reduce_order(order_property, context)
    return reduced_interesting.is_prefix_of(reduced_property)


def test_order_naive(interesting: OrderSpec, order_property: OrderSpec) -> bool:
    """The naive satisfaction test used by the order-opt-disabled build.

    No reduction: the interesting order must literally be a prefix of the
    property. This is what the paper's "disabled" DB2 falls back to and is
    the baseline in the Table 1 experiment.
    """
    if interesting.is_empty():
        return True
    return interesting.is_prefix_of(order_property)
