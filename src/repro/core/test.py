"""*Test Order* — Figure 3 of the paper.

An order property ``OP`` satisfies an interesting order ``I`` iff, after
both are reduced, ``I`` is empty or ``I`` is a prefix of ``OP``.

This is the algebra's hottest entry point: join enumeration calls it for
every dominance comparison between candidate plans. Results are memoized
per context content on the ``(interesting, property)`` pair, and an
interesting order that reduces to empty short-circuits without touching
the property at all.
"""

from __future__ import annotations

from repro.core import memo as memo_module
from repro.core.context import OrderContext
from repro.core.instrument import COUNTERS
from repro.core.ordering import OrderSpec
from repro.core.reduce import reduce_order


def test_order(
    interesting: OrderSpec,
    order_property: OrderSpec,
    context: OrderContext,
) -> bool:
    """Whether ``order_property`` satisfies ``interesting`` under ``context``."""
    COUNTERS["test.calls"] = COUNTERS.get("test.calls", 0) + 1
    if not memo_module.ENABLED:
        return _test_order_impl(interesting, order_property, context)
    memo = context.memo().test
    key = (interesting, order_property)
    cached = memo.get(key)
    if cached is not None:
        COUNTERS["test.memo_hits"] = COUNTERS.get("test.memo_hits", 0) + 1
        return cached
    result = _test_order_impl(interesting, order_property, context)
    memo[key] = result
    return result


def _test_order_impl(
    interesting: OrderSpec,
    order_property: OrderSpec,
    context: OrderContext,
) -> bool:
    """Figure 3 proper (the reductions themselves may be memo hits)."""
    reduced_interesting = reduce_order(interesting, context)
    if reduced_interesting.is_empty():
        # Single-reduction fast path: an empty requirement is satisfied
        # by anything; no need to reduce the property.
        return True
    reduced_property = reduce_order(order_property, context)
    if context.ods.is_empty():
        return reduced_interesting.is_prefix_of(reduced_property)
    return _od_prefix(reduced_interesting, reduced_property, context)


def _od_prefix(
    interesting: OrderSpec,
    order_property: OrderSpec,
    context: OrderContext,
) -> bool:
    """Positional prefix test generalized over order dependencies.

    ``interesting`` key ``i_k`` is covered by property key ``p_k`` when
    they match exactly, or when the OD closure orders ``i_k``'s column
    by ``p_k``'s with the right flip (ascending by ``p_k`` must move
    ``i_k`` in its requested direction). For *non-final* positions the
    FD ``{i_k} -> {p_k}`` must additionally hold: if distinct ``p_k``
    values can share an ``i_k`` value, rows tied on ``i_k`` span several
    ``p_k`` runs and nothing orders ``i_{k+1}`` within the tie —
    ``(year(d), x)`` is NOT satisfied by ``(d, x)`` even though
    ``(year(d))`` alone is. With no ODs in the context this degenerates
    to exact prefix matching.
    """
    ikeys = list(interesting)
    pkeys = list(order_property)
    if len(ikeys) > len(pkeys):
        return False
    ods = context.ods
    last = len(ikeys) - 1
    for position, ikey in enumerate(ikeys):
        pkey = pkeys[position]
        if pkey == ikey:
            continue
        if pkey.column == ikey.column:
            return False  # same column, opposite direction
        flip_needed = ikey.direction != pkey.direction
        if not ods.orders(pkey.column, ikey.column, flip_needed):
            return False
        if position < last and pkey.column not in context.closure(
            (ikey.column,)
        ):
            return False
    return True


def test_order_naive(interesting: OrderSpec, order_property: OrderSpec) -> bool:
    """The naive satisfaction test used by the order-opt-disabled build.

    No reduction: the interesting order must literally be a prefix of the
    property. This is what the paper's "disabled" DB2 falls back to and is
    the baseline in the Table 1 experiment. Deliberately untouched by the
    memoization layer — the disabled baseline must stay honest.
    """
    if interesting.is_empty():
        return True
    return interesting.is_prefix_of(order_property)
