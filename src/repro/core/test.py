"""*Test Order* — Figure 3 of the paper.

An order property ``OP`` satisfies an interesting order ``I`` iff, after
both are reduced, ``I`` is empty or ``I`` is a prefix of ``OP``.

This is the algebra's hottest entry point: join enumeration calls it for
every dominance comparison between candidate plans. Results are memoized
per context content on the ``(interesting, property)`` pair, and an
interesting order that reduces to empty short-circuits without touching
the property at all.
"""

from __future__ import annotations

from repro.core import memo as memo_module
from repro.core.context import OrderContext
from repro.core.instrument import COUNTERS
from repro.core.ordering import OrderSpec
from repro.core.reduce import reduce_order


def test_order(
    interesting: OrderSpec,
    order_property: OrderSpec,
    context: OrderContext,
) -> bool:
    """Whether ``order_property`` satisfies ``interesting`` under ``context``."""
    COUNTERS["test.calls"] = COUNTERS.get("test.calls", 0) + 1
    if not memo_module.ENABLED:
        return _test_order_impl(interesting, order_property, context)
    memo = context.memo().test
    key = (interesting, order_property)
    cached = memo.get(key)
    if cached is not None:
        COUNTERS["test.memo_hits"] = COUNTERS.get("test.memo_hits", 0) + 1
        return cached
    result = _test_order_impl(interesting, order_property, context)
    memo[key] = result
    return result


def _test_order_impl(
    interesting: OrderSpec,
    order_property: OrderSpec,
    context: OrderContext,
) -> bool:
    """Figure 3 proper (the reductions themselves may be memo hits)."""
    reduced_interesting = reduce_order(interesting, context)
    if reduced_interesting.is_empty():
        # Single-reduction fast path: an empty requirement is satisfied
        # by anything; no need to reduce the property.
        return True
    reduced_property = reduce_order(order_property, context)
    return reduced_interesting.is_prefix_of(reduced_property)


def test_order_naive(interesting: OrderSpec, order_property: OrderSpec) -> bool:
    """The naive satisfaction test used by the order-opt-disabled build.

    No reduction: the interesting order must literally be a prefix of the
    property. This is what the paper's "disabled" DB2 falls back to and is
    the baseline in the Table 1 experiment. Deliberately untouched by the
    memoization layer — the disabled baseline must stay honest.
    """
    if interesting.is_empty():
        return True
    return interesting.is_prefix_of(order_property)
