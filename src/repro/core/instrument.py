"""Plan-time profiling: a process-wide counter/timer registry.

The order algebra runs inside the optimizer's innermost loops, so its
cost is measured, not asserted: every closure fixpoint step, algebra
call, and memo hit increments a counter here. ``repro.bench`` snapshots
the registry around a planning run and reports call counts and cache
hit rates (and writes them to ``BENCH_core_ops.json``); the
counter-budget regression test pins TPC-D Q3's planning work to a fixed
budget so the quadratic behaviour this layer removed cannot silently
return.

Counters are plain dict increments (no locks — planning is
single-threaded) and stay enabled permanently: one dict update per
counted event is far below measurement noise, and permanently-on
counters cannot drift out of sync with the code they observe.

Naming convention: ``<subsystem>.<event>``, e.g. ``reduce.calls``,
``reduce.memo_hits``, ``closure.iterations``. Hit rates are derived by
the reader (hits / calls), never stored.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

# The registries. Hot paths may import these dicts directly and do
# ``COUNTERS[name] = COUNTERS.get(name, 0) + amount`` inline; ``count``
# exists for call sites where a function call is not hot.
COUNTERS: Dict[str, int] = {}
TIMERS: Dict[str, float] = {}


def count(name: str, amount: int = 1) -> None:
    """Increment counter ``name`` by ``amount``."""
    COUNTERS[name] = COUNTERS.get(name, 0) + amount


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Accumulate the wall-clock time of the ``with`` body into ``name``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        TIMERS[name] = TIMERS.get(name, 0.0) + (time.perf_counter() - start)


def snapshot() -> Dict[str, float]:
    """Counters and timers as one flat dict (timers suffixed ``_s``)."""
    merged: Dict[str, float] = dict(COUNTERS)
    for name, seconds in TIMERS.items():
        merged[f"{name}_s"] = seconds
    return merged


def delta(before: Dict[str, float]) -> Dict[str, float]:
    """What changed since a previous :func:`snapshot` (zeros dropped)."""
    current = snapshot()
    changed = {}
    for name, value in current.items():
        grown = value - before.get(name, 0)
        if grown:
            changed[name] = grown
    return changed


def reset() -> None:
    """Zero every counter and timer."""
    COUNTERS.clear()
    TIMERS.clear()


def hit_rate(stats: Dict[str, float], subsystem: str) -> float:
    """``<subsystem>.memo_hits / <subsystem>.calls`` from a snapshot."""
    calls = stats.get(f"{subsystem}.calls", 0)
    if not calls:
        return 0.0
    return stats.get(f"{subsystem}.memo_hits", 0) / calls
