"""Plan-time profiling: a process-wide counter/timer registry.

The order algebra runs inside the optimizer's innermost loops, so its
cost is measured, not asserted: every closure fixpoint step, algebra
call, and memo hit increments a counter here. ``repro.bench`` snapshots
the registry around a planning run and reports call counts and cache
hit rates (and writes them to ``BENCH_core_ops.json``); the
counter-budget regression test pins TPC-D Q3's planning work to a fixed
budget so the quadratic behaviour this layer removed cannot silently
return.

Concurrency: the query service runs optimizer and executor code on a
worker pool, so the registry must not lose increments under threads —
but the hot paths are plain inline dict updates and must stay that way.
The resolution is striping: each thread increments a private dict
(``threading.local``), registered once in a locked global list, and
:func:`snapshot` merges every thread's slice. ``COUNTERS``/``TIMERS``
are dict-like proxies over *the calling thread's* slice, so the inline
``COUNTERS[name] = COUNTERS.get(name, 0) + 1`` pattern at existing call
sites is unchanged, lock-free, and race-free (read-modify-write never
leaves the thread). Reading a total therefore goes through
:func:`snapshot` — a bare ``COUNTERS.get`` only sees work done by the
current thread. Slices of finished threads stay registered until
:func:`reset`; with the service's fixed-size pools that is a bounded,
harmless leak.

Counters stay enabled permanently: one dict update per counted event is
far below measurement noise, and permanently-on counters cannot drift
out of sync with the code they observe.

Naming convention: ``<subsystem>.<event>``, e.g. ``reduce.calls``,
``reduce.memo_hits``, ``closure.iterations``, ``service.cache.hits``.
Hit rates are derived by the reader (hits / calls), never stored.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

_REGISTRY_LOCK = threading.Lock()
# Every thread's (counters, timers) pair, in first-use order.
_SLICES: List[Tuple[Dict[str, int], Dict[str, float]]] = []


class _ThreadSlices(threading.local):
    """Per-thread counter/timer dicts, registered globally on first use."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        with _REGISTRY_LOCK:
            _SLICES.append((self.counters, self.timers))


_LOCAL = _ThreadSlices()


class _Registry:
    """Dict-like proxy over the calling thread's slice.

    Supports exactly the shapes the inline call sites use: item get/set
    and ``get``. Cross-thread totals come from :func:`snapshot`.
    """

    __slots__ = ("_index",)

    def __init__(self, index: int) -> None:
        self._index = index

    def _slice(self) -> Dict:
        return (_LOCAL.counters, _LOCAL.timers)[self._index]

    def __getitem__(self, name: str):
        return self._slice()[name]

    def __setitem__(self, name: str, value) -> None:
        self._slice()[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._slice()

    def get(self, name: str, default=None):
        return self._slice().get(name, default)

    def items(self):
        return self._slice().items()


COUNTERS = _Registry(0)
TIMERS = _Registry(1)


def count(name: str, amount: int = 1) -> None:
    """Increment counter ``name`` by ``amount``."""
    counters = _LOCAL.counters
    counters[name] = counters.get(name, 0) + amount


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Accumulate the wall-clock time of the ``with`` body into ``name``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        timers = _LOCAL.timers
        timers[name] = timers.get(name, 0.0) + (time.perf_counter() - start)


def snapshot() -> Dict[str, float]:
    """Counters and timers as one flat dict (timers suffixed ``_s``),
    merged across every thread that has ever counted."""
    merged: Dict[str, float] = {}
    with _REGISTRY_LOCK:
        slices = list(_SLICES)
    for counters, timers in slices:
        for name, value in list(counters.items()):
            merged[name] = merged.get(name, 0) + value
        for name, seconds in list(timers.items()):
            key = f"{name}_s"
            merged[key] = merged.get(key, 0.0) + seconds
    return merged


def delta(before: Dict[str, float]) -> Dict[str, float]:
    """What changed since a previous :func:`snapshot` (zeros dropped)."""
    current = snapshot()
    changed = {}
    for name, value in current.items():
        grown = value - before.get(name, 0)
        if grown:
            changed[name] = grown
    return changed


def reset() -> None:
    """Zero every counter and timer on every thread.

    Racy against threads actively counting (their in-flight increment
    may survive); call it only around quiescent measurement windows,
    like the benches do.
    """
    with _REGISTRY_LOCK:
        for counters, timers in _SLICES:
            counters.clear()
            timers.clear()


def hit_rate(stats: Dict[str, float], subsystem: str) -> float:
    """``<subsystem>.memo_hits / <subsystem>.calls`` from a snapshot."""
    calls = stats.get(f"{subsystem}.calls", 0)
    if not calls:
        return 0.0
    return stats.get(f"{subsystem}.memo_hits", 0) / calls
