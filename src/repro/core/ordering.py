"""Order specifications.

The paper denotes both *order properties* (what a stream actually is
ordered by) and *interesting orders* (what some operation would like) as
a column list in major-to-minor order. :class:`OrderSpec` is that list;
each entry is an :class:`OrderKey` carrying a column and a direction.

The paper's prose assumes ascending everywhere "without loss of
generality"; we carry directions explicitly because Section 7 (and TPC-D
Query 3's ``ORDER BY rev DESC``) need them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from repro.errors import OrderError
from repro.expr.nodes import ColumnRef


class SortDirection(enum.Enum):
    """Sort direction of one order key."""

    ASC = "asc"
    DESC = "desc"

    def reversed(self) -> "SortDirection":
        if self is SortDirection.ASC:
            return SortDirection.DESC
        return SortDirection.ASC


@dataclass(frozen=True)
class OrderKey:
    """One (column, direction) pair within an order specification."""

    column: ColumnRef
    direction: SortDirection = SortDirection.ASC

    def with_column(self, column: ColumnRef) -> "OrderKey":
        """The same key expressed on a different (equivalent) column."""
        return OrderKey(column, self.direction)

    def reversed(self) -> "OrderKey":
        return OrderKey(self.column, self.direction.reversed())

    def __str__(self) -> str:
        suffix = " desc" if self.direction is SortDirection.DESC else ""
        return f"{self.column}{suffix}"


def asc(column: ColumnRef) -> OrderKey:
    """Shorthand for an ascending order key."""
    return OrderKey(column, SortDirection.ASC)


def desc(column: ColumnRef) -> OrderKey:
    """Shorthand for a descending order key."""
    return OrderKey(column, SortDirection.DESC)


class OrderSpec:
    """An immutable, hashable sequence of order keys.

    The empty spec means "no particular order"; as an interesting order it
    is trivially satisfied, and as an order property it promises nothing.
    """

    __slots__ = ("_keys", "_hash")

    def __init__(self, keys: Iterable[OrderKey] = ()):
        keys = tuple(keys)
        seen = set()
        for key in keys:
            if not isinstance(key, OrderKey):
                raise OrderError(f"OrderSpec entries must be OrderKey, got {key!r}")
            if key.column in seen:
                raise OrderError(f"duplicate column {key.column} in order spec")
            seen.add(key.column)
        self._keys: Tuple[OrderKey, ...] = keys
        # Specs are memo-table keys in the algebra's caching layer; the
        # hash is cached because it is recomputed far more often than
        # specs are created.
        self._hash: int = None

    @classmethod
    def of(cls, *columns: ColumnRef) -> "OrderSpec":
        """Ascending spec over ``columns``, the paper's (c1, c2, ...)."""
        return cls(OrderKey(column) for column in columns)

    @property
    def keys(self) -> Tuple[OrderKey, ...]:
        return self._keys

    @property
    def columns(self) -> Tuple[ColumnRef, ...]:
        return tuple(key.column for key in self._keys)

    def is_empty(self) -> bool:
        return not self._keys

    def head(self) -> OrderKey:
        if not self._keys:
            raise OrderError("empty order spec has no head")
        return self._keys[0]

    def prefix(self, length: int) -> "OrderSpec":
        return OrderSpec(self._keys[:length])

    def concat(self, other: "OrderSpec") -> "OrderSpec":
        """This spec followed by ``other``'s keys, skipping duplicates."""
        seen = {key.column for key in self._keys}
        extra = [key for key in other._keys if key.column not in seen]
        return OrderSpec(self._keys + tuple(extra))

    def is_prefix_of(self, other: "OrderSpec") -> bool:
        """Whether this spec's keys are exactly the first keys of ``other``."""
        if len(self._keys) > len(other._keys):
            return False
        return all(
            mine == theirs for mine, theirs in zip(self._keys, other._keys)
        )

    def reversed(self) -> "OrderSpec":
        """The spec with every direction flipped.

        A stream ordered by a spec is, read backwards, ordered by its
        reversal; index scans exploit this for backward scans.
        """
        return OrderSpec(key.reversed() for key in self._keys)

    def subset_columns(self, allowed) -> bool:
        """Whether every referenced column is in ``allowed``."""
        allowed = set(allowed)
        return all(key.column in allowed for key in self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[OrderKey]:
        return iter(self._keys)

    def __getitem__(self, index: int) -> OrderKey:
        return self._keys[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrderSpec) and self._keys == other._keys

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._keys)
            self._hash = cached
        return cached

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __str__(self) -> str:
        inner = ", ".join(str(key) for key in self._keys)
        return f"({inner})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OrderSpec{self}"


EMPTY_ORDER = OrderSpec()


def spec(*keys: OrderKey) -> OrderSpec:
    """Shorthand constructor from explicit order keys."""
    return OrderSpec(keys)
