"""Order dependencies: directed "sorted by X implies sorted by Y" facts.

Functional dependencies (Section 4 of the paper) cannot see that
``val + 1`` sorts identically to ``val``, or that a stream ordered by a
date is automatically ordered by ``year(date)``. Order dependencies
(Szlichta/Godfrey/Gryz, "Fundamentals of Order Dependencies") capture
exactly that: an edge ``X |-> Y`` asserts that whenever ``s.X < t.X``
then ``s.Y <= t.Y`` (or ``s.Y >= t.Y`` when the edge is *flipped*, as
produced by e.g. ``c - col``), and additionally that equal ``X`` values
have equal ``Y`` values — i.e. every edge also implies the FD
``{X} -> {Y}``.

Two strength levels matter to the algebra:

* a one-directional edge (``date |-> year(date)``): a stream sorted by
  the source is sorted by the target, but not vice versa;
* an *order-equivalent* pair (both ``X |-> Y`` and ``Y |-> X`` with the
  same flip, from strictly monotonic expressions like ``col + 1``):
  either column may stand in for the other in an order specification.

:class:`ODSet` mirrors the :class:`~repro.core.fd.FDSet` idiom —
immutable by convention, O(1) dedup on :meth:`ODSet.add` /
:meth:`ODSet.union`, and a lazily built transitive closure (flips
compose by XOR). The empty singleton :data:`EMPTY_ODS` is the default
everywhere, keeping the FD-only paths byte-identical when the
``use_order_dependencies`` toggle is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.fd import FunctionalDependency
from repro.expr.nodes import ColumnRef


@dataclass(frozen=True)
class OrderDependency:
    """One directed edge ``source |-> target``.

    ``flip`` records direction reversal: a stream ascending by
    ``source`` is *descending* by ``target`` (e.g. ``10 - col``).
    """

    source: ColumnRef
    target: ColumnRef
    flip: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arrow = "|->(desc)" if self.flip else "|->"
        return f"{self.source} {arrow} {self.target}"


class ODSet:
    """An immutable-by-convention collection of order dependencies.

    Queries the order algebra needs:

    * :meth:`flips` — the set of flip values under which the closure
      contains ``source |-> target`` (empty when it does not);
    * :meth:`order_equivalent_flip` — whether two columns are mutually
      ordering (strict monotone both ways), and with which flip;
    * :meth:`implied_fds` — the ``{X} -> {Y}`` FDs every edge carries,
      folded into :class:`~repro.core.context.OrderContext` so
      reduction and constant detection see OD facts for free.
    """

    __slots__ = ("_edges", "_members", "_closure")

    def __init__(self, edges: Iterable[OrderDependency] = ()):
        deduped: List[OrderDependency] = []
        seen: Set[OrderDependency] = set()
        for edge in edges:
            if edge.source == edge.target:
                continue  # reflexive edges are trivially true
            if edge not in seen:
                seen.add(edge)
                deduped.append(edge)
        self._edges: Tuple[OrderDependency, ...] = tuple(deduped)
        self._members: FrozenSet[OrderDependency] = frozenset(seen)
        self._closure: Optional[
            Dict[ColumnRef, Dict[ColumnRef, FrozenSet[bool]]]
        ] = None

    @classmethod
    def _make(
        cls,
        edges: Tuple[OrderDependency, ...],
        members: FrozenSet[OrderDependency],
    ) -> "ODSet":
        created = cls.__new__(cls)
        created._edges = edges
        created._members = members
        created._closure = None
        return created

    @property
    def edges(self) -> Tuple[OrderDependency, ...]:
        return self._edges

    def as_frozenset(self) -> FrozenSet[OrderDependency]:
        """The edges as a set — context fingerprints hash this."""
        return self._members

    def is_empty(self) -> bool:
        return not self._edges

    def add(self, edge: OrderDependency) -> "ODSet":
        """A new ODSet with ``edge`` appended (no-op if present)."""
        if edge in self._members or edge.source == edge.target:
            return self
        return ODSet._make(self._edges + (edge,), self._members | {edge})

    def add_equivalence(
        self, first: ColumnRef, second: ColumnRef, flip: bool = False
    ) -> "ODSet":
        """Both directions of a strictly monotonic relationship."""
        return self.add(OrderDependency(first, second, flip)).add(
            OrderDependency(second, first, flip)
        )

    def union(self, other: "ODSet") -> "ODSet":
        if other is self or not other._edges:
            return self
        if not self._edges:
            return other
        if other._members <= self._members:
            return self
        merged = list(self._edges)
        for edge in other._edges:
            if edge not in self._members:
                merged.append(edge)
        return ODSet._make(tuple(merged), self._members | other._members)

    def restrict(self, columns: Iterable[ColumnRef]) -> "ODSet":
        """Only the edges with both endpoints inside ``columns`` —
        projection and grouping narrow OD sets with this."""
        if not self._edges:
            return self
        keep = frozenset(columns)
        kept = tuple(
            edge
            for edge in self._edges
            if edge.source in keep and edge.target in keep
        )
        if len(kept) == len(self._edges):
            return self
        if not kept:
            return EMPTY_ODS
        return ODSet._make(kept, frozenset(kept))

    def projected(self, columns: Iterable[ColumnRef]) -> "ODSet":
        """Closure edges with both endpoints inside ``columns``.

        Unlike :meth:`restrict` this survives a dropped intermediate:
        with ``a |-> b |-> c`` and a projection keeping only ``a`` and
        ``c``, the transitive ``a |-> c`` is materialized as a base
        edge. The final projection uses this so output-column OD facts
        do not evaporate with their source columns.
        """
        if not self._edges:
            return self
        keep = frozenset(columns)
        edges: List[OrderDependency] = []
        for source, targets in self._closed().items():
            if source not in keep:
                continue
            for target, flips in targets.items():
                if target not in keep:
                    continue
                for flip in sorted(flips):
                    edges.append(OrderDependency(source, target, flip))
        if not edges:
            return EMPTY_ODS
        return ODSet(edges)

    def translate(
        self, mapping: Dict[ColumnRef, ColumnRef]
    ) -> "ODSet":
        """Rename endpoints through ``mapping``; edges touching columns
        outside the mapping are dropped (a derived table hides them)."""
        if not self._edges:
            return self
        translated = [
            OrderDependency(
                mapping[edge.source], mapping[edge.target], edge.flip
            )
            for edge in self._edges
            if edge.source in mapping and edge.target in mapping
        ]
        if not translated:
            return EMPTY_ODS
        return ODSet(translated)

    # -- closure queries -------------------------------------------------

    def _closed(self) -> Dict[ColumnRef, Dict[ColumnRef, FrozenSet[bool]]]:
        """Transitive closure: source -> target -> set of flips.

        Composition XORs flips (ascending through a flipped edge comes
        out descending; through two flipped edges, ascending again).
        Built lazily once per ODSet, like the FDSet head index.
        """
        closed = self._closure
        if closed is None:
            adjacency: Dict[ColumnRef, List[OrderDependency]] = {}
            for edge in self._edges:
                adjacency.setdefault(edge.source, []).append(edge)
            closed = {}
            for start in adjacency:
                reached: Dict[ColumnRef, Set[bool]] = {}
                queue: List[Tuple[ColumnRef, bool]] = [(start, False)]
                while queue:
                    node, flip = queue.pop()
                    for edge in adjacency.get(node, ()):
                        combined = flip ^ edge.flip
                        flips = reached.setdefault(edge.target, set())
                        if combined not in flips:
                            flips.add(combined)
                            queue.append((edge.target, combined))
                reached.pop(start, None)
                closed[start] = {
                    target: frozenset(flips)
                    for target, flips in reached.items()
                }
            self._closure = closed
        return closed

    def flips(
        self, source: ColumnRef, target: ColumnRef
    ) -> FrozenSet[bool]:
        """Flip values under which ``source |-> target`` holds
        transitively; empty frozenset when it does not hold at all."""
        if source == target:
            return _SELF_FLIPS
        return self._closed().get(source, _EMPTY_MAP).get(
            target, _NO_FLIPS
        )

    def orders(
        self, source: ColumnRef, target: ColumnRef, flip: bool
    ) -> bool:
        """Whether the closure contains ``source |-> target`` with
        exactly this flip."""
        return flip in self.flips(source, target)

    def order_equivalent_flip(
        self, first: ColumnRef, second: ColumnRef
    ) -> Optional[bool]:
        """If ``first`` and ``second`` mutually order each other with a
        consistent flip, that flip; otherwise None.

        Mutual edges whose flips disagree would compose to a flipped
        self-edge (a column both ascending and descending along itself),
        which only a constant satisfies — not a substitution basis.
        """
        forward = self.flips(first, second)
        backward = self.flips(second, first)
        for flip in (False, True):
            if flip in forward and flip in backward:
                return flip
        return None

    def implied_fds(self) -> Iterator[FunctionalDependency]:
        """The ``{source} -> {target}`` FD each base edge carries.

        Only base edges are yielded; the FD closure computes
        transitivity itself.
        """
        for edge in self._edges:
            yield FunctionalDependency(
                frozenset((edge.source,)), frozenset((edge.target,))
            )

    def __iter__(self) -> Iterator[OrderDependency]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = "; ".join(str(edge) for edge in self._edges)
        return f"ODSet[{inner}]"


_NO_FLIPS: FrozenSet[bool] = frozenset()
_SELF_FLIPS: FrozenSet[bool] = frozenset((False,))
_EMPTY_MAP: Dict[ColumnRef, FrozenSet[bool]] = {}

EMPTY_ODS = ODSet()
