"""The reduction context: everything *Reduce Order* consumes.

A stream's applied predicates, keys, and inherited FDs collapse into one
:class:`OrderContext` holding

* an :class:`~repro.core.equivalence.EquivalenceClasses` partition, and
* an :class:`~repro.core.fd.FDSet` that already encodes constants
  (``{} -> {c}``) and keys (``K -> *``).

Equivalences are *not* materialized as pairwise FDs (the seed did, at
O(k^2) per class): :meth:`closure` hands the partition to the FD closure
machinery, which consults it directly. Contexts are cheap to build and
immutable by convention; the property machinery derives one per stream.

Immutability buys two things on top of safety:

* a content **fingerprint** (FDs + equivalence partition + constants),
  under which equal-content contexts share one memo table for the four
  algebra operations (see :mod:`repro.core.memo`) — results computed
  under one plan's context are cache hits under every equal sibling's;
* memo results never need invalidation — a context's answers are
  fixed at construction time.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.core.equivalence import EquivalenceClasses
from repro.core.fd import (
    FDSet,
    FunctionalDependency,
    _Closure,
    constant_fd,
    fd,
    key_fd,
)
from repro.core.instrument import COUNTERS
from repro.core.memo import ContextMemo, memo_for
from repro.core.od import EMPTY_ODS, ODSet
from repro.expr.analysis import PredicateFacts, analyze_predicates
from repro.expr.nodes import ColumnRef, Expression


class OrderContext:
    """Bundle of equivalence classes + FDs used by the order operations."""

    __slots__ = ("equivalences", "fds", "constants", "ods", "_fingerprint",
                 "_memo", "_constant_closure")

    def __init__(
        self,
        equivalences: Optional[EquivalenceClasses] = None,
        fds: Optional[FDSet] = None,
        constants: Iterable[ColumnRef] = (),
        ods: Optional[ODSet] = None,
    ):
        self.equivalences = equivalences or EquivalenceClasses()
        self.constants: Set[ColumnRef] = set(constants)
        self.ods = ods if ods is not None else EMPTY_ODS
        # Constants become uniform empty-headed FDs (as in the paper);
        # equivalences stay in the partition and are consulted by the
        # closure directly.
        fds = fds or FDSet()
        for column in self.constants:
            fds = fds.add(constant_fd(column))
        # Every order dependency implies the matching FD (equal sources
        # order-bound both ways must have equal targets), so reduction
        # and constant detection see OD facts without consulting the
        # ODSet at all — with no ODs this loop does not run and the
        # context is byte-identical to the FD-only build.
        for dependency in self.ods.implied_fds():
            fds = fds.add(dependency)
        self.fds = fds
        self._fingerprint = None
        self._memo: Optional[ContextMemo] = None
        self._constant_closure: Optional[_Closure] = None
        COUNTERS["context.builds"] = COUNTERS.get("context.builds", 0) + 1

    @classmethod
    def empty(cls) -> "OrderContext":
        return cls()

    @classmethod
    def from_predicates(
        cls,
        predicates: Iterable[Expression],
        keys: Iterable[Sequence[ColumnRef]] = (),
        extra_fds: Optional[FDSet] = None,
        ods: Optional[ODSet] = None,
    ) -> "OrderContext":
        """Build a context from applied predicates and known keys."""
        facts = analyze_predicates(predicates)
        return cls.from_facts(facts, keys=keys, extra_fds=extra_fds, ods=ods)

    @classmethod
    def from_facts(
        cls,
        facts: PredicateFacts,
        keys: Iterable[Sequence[ColumnRef]] = (),
        extra_fds: Optional[FDSet] = None,
        ods: Optional[ODSet] = None,
    ) -> "OrderContext":
        """Build a context from pre-mined predicate facts."""
        equivalences = EquivalenceClasses(facts.equalities)
        fds = extra_fds or FDSet()
        for key_columns in keys:
            fds = fds.add(key_fd(key_columns))
        return cls(
            equivalences=equivalences,
            fds=fds,
            constants=facts.constant_bindings.keys(),
            ods=ods,
        )

    # ------------------------------------------------------------------
    # Closure and memoization plumbing
    # ------------------------------------------------------------------

    def closure(self, columns: Iterable[ColumnRef] = ()) -> _Closure:
        """An incremental attribute closure under this context's facts.

        The returned closure already accounts for constants (their FDs
        are empty-headed and fire at construction) and consults the
        equivalence partition directly; grow it with ``extend``.
        """
        return self.fds.closure(columns, equivalences=self.equivalences)

    def fingerprint(self):
        """A hashable digest of this context's content.

        Two contexts with equal fingerprints answer every algebra
        question identically, so they share one memo table.
        """
        digest = self._fingerprint
        if digest is None:
            digest = (
                self.fds.as_frozenset(),
                self.equivalences.class_sets(),
                frozenset(self.constants),
                self.ods.as_frozenset(),
            )
            self._fingerprint = digest
        return digest

    def memo(self) -> ContextMemo:
        """This context's memo tables (shared across equal contexts)."""
        memo = self._memo
        if memo is None:
            memo = memo_for(self.fingerprint())
            self._memo = memo
        return memo

    def materialized_fds(self) -> FDSet:
        """The FD set with pairwise equivalence FDs materialized.

        This is the seed's context representation — kept for the naive
        reference implementations (:mod:`repro.core.reference`) that the
        metamorphic tests compare against, and for callers that want a
        self-contained FDSet.
        """
        fds = self.fds
        for group in self.equivalences.classes():
            ordered = sorted(group, key=lambda c: (c.qualifier, c.name))
            for index, left in enumerate(ordered):
                for right in ordered[index + 1:]:
                    fds = fds.add(fd([left], [right]))
                    fds = fds.add(fd([right], [left]))
        return fds

    # ------------------------------------------------------------------
    # Derivation (contexts are immutable; derive, never mutate)
    # ------------------------------------------------------------------

    def with_key(self, key_columns: Sequence[ColumnRef]) -> "OrderContext":
        """A new context that additionally knows ``key_columns`` is a key."""
        return OrderContext(
            equivalences=self.equivalences,
            fds=self.fds.add(key_fd(key_columns)),
            constants=self.constants,
            ods=self.ods,
        )

    def with_fd(self, dependency: FunctionalDependency) -> "OrderContext":
        """A new context with one extra FD."""
        return OrderContext(
            equivalences=self.equivalences,
            fds=self.fds.add(dependency),
            constants=self.constants,
            ods=self.ods,
        )

    def with_equality(self, left: ColumnRef, right: ColumnRef) -> "OrderContext":
        """A new context that additionally knows ``left = right``."""
        # Copy-on-write: this is the one derivation that mutates the
        # partition, so it is the one that copies.
        equivalences = self.equivalences.copy()
        equivalences.add_equality(left, right)
        return OrderContext(
            equivalences=equivalences,
            fds=self.fds,
            constants=self.constants,
            ods=self.ods,
        )

    def with_constant(self, column: ColumnRef) -> "OrderContext":
        """A new context that additionally knows ``column = constant``."""
        return OrderContext(
            equivalences=self.equivalences,
            fds=self.fds,
            constants=self.constants | {column},
            ods=self.ods,
        )

    def with_ods(self, ods: ODSet) -> "OrderContext":
        """A new context that additionally knows these order dependencies."""
        merged = self.ods.union(ods)
        if merged is self.ods:
            return self
        return OrderContext(
            equivalences=self.equivalences,
            fds=self.fds,
            constants=self.constants,
            ods=merged,
        )

    def merged_with(self, other: "OrderContext") -> "OrderContext":
        """Union of two contexts (e.g. both join inputs' contexts)."""
        return OrderContext(
            equivalences=self.equivalences.merged_with(other.equivalences),
            fds=self.fds.union(other.fds),
            constants=self.constants | other.constants,
            ods=self.ods.union(other.ods),
        )

    def is_constant(self, column: ColumnRef) -> bool:
        """Whether ``column`` is bound to a constant (directly or via FDs)."""
        if column in self.constants:
            return True
        closure = self._constant_closure
        if closure is None:
            closure = self.closure(())
            self._constant_closure = closure
        return column in closure

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OrderContext(eq={self.equivalences!r}, fds={self.fds!r}, "
            f"constants={sorted(str(c) for c in self.constants)})"
        )
