"""The reduction context: everything *Reduce Order* consumes.

A stream's applied predicates, keys, and inherited FDs collapse into one
:class:`OrderContext` holding

* an :class:`~repro.core.equivalence.EquivalenceClasses` partition, and
* an :class:`~repro.core.fd.FDSet` that already encodes constants
  (``{} -> {c}``), equivalences (both directions), and keys (``K -> *``).

Contexts are cheap to build and immutable by convention; the property
machinery derives one per stream.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.core.equivalence import EquivalenceClasses
from repro.core.fd import (
    FDSet,
    FunctionalDependency,
    constant_fd,
    fd,
    key_fd,
)
from repro.expr.analysis import PredicateFacts, analyze_predicates
from repro.expr.nodes import ColumnRef, Expression


class OrderContext:
    """Bundle of equivalence classes + FDs used by the order operations."""

    def __init__(
        self,
        equivalences: Optional[EquivalenceClasses] = None,
        fds: Optional[FDSet] = None,
        constants: Iterable[ColumnRef] = (),
    ):
        self.equivalences = equivalences or EquivalenceClasses()
        self.fds = fds or FDSet()
        self.constants: Set[ColumnRef] = set(constants)
        # Materialize the FD forms of constants and equivalences so the
        # closure machinery sees one uniform FD set, as in the paper.
        for column in self.constants:
            self.fds = self.fds.add(constant_fd(column))
        for group in self.equivalences.classes():
            ordered = sorted(group, key=lambda c: (c.qualifier, c.name))
            for index, left in enumerate(ordered):
                for right in ordered[index + 1 :]:
                    self.fds = self.fds.add(fd([left], [right]))
                    self.fds = self.fds.add(fd([right], [left]))

    @classmethod
    def empty(cls) -> "OrderContext":
        return cls()

    @classmethod
    def from_predicates(
        cls,
        predicates: Iterable[Expression],
        keys: Iterable[Sequence[ColumnRef]] = (),
        extra_fds: Optional[FDSet] = None,
    ) -> "OrderContext":
        """Build a context from applied predicates and known keys."""
        facts = analyze_predicates(predicates)
        return cls.from_facts(facts, keys=keys, extra_fds=extra_fds)

    @classmethod
    def from_facts(
        cls,
        facts: PredicateFacts,
        keys: Iterable[Sequence[ColumnRef]] = (),
        extra_fds: Optional[FDSet] = None,
    ) -> "OrderContext":
        """Build a context from pre-mined predicate facts."""
        equivalences = EquivalenceClasses(facts.equalities)
        fds = extra_fds or FDSet()
        for key_columns in keys:
            fds = fds.add(key_fd(key_columns))
        return cls(
            equivalences=equivalences,
            fds=fds,
            constants=facts.constant_bindings.keys(),
        )

    def with_key(self, key_columns: Sequence[ColumnRef]) -> "OrderContext":
        """A new context that additionally knows ``key_columns`` is a key."""
        return OrderContext(
            equivalences=self.equivalences.copy(),
            fds=self.fds.add(key_fd(key_columns)),
            constants=self.constants,
        )

    def with_fd(self, dependency: FunctionalDependency) -> "OrderContext":
        """A new context with one extra FD."""
        return OrderContext(
            equivalences=self.equivalences.copy(),
            fds=self.fds.add(dependency),
            constants=self.constants,
        )

    def with_equality(self, left: ColumnRef, right: ColumnRef) -> "OrderContext":
        """A new context that additionally knows ``left = right``."""
        equivalences = self.equivalences.copy()
        equivalences.add_equality(left, right)
        return OrderContext(
            equivalences=equivalences,
            fds=self.fds,
            constants=self.constants,
        )

    def with_constant(self, column: ColumnRef) -> "OrderContext":
        """A new context that additionally knows ``column = constant``."""
        return OrderContext(
            equivalences=self.equivalences.copy(),
            fds=self.fds,
            constants=self.constants | {column},
        )

    def merged_with(self, other: "OrderContext") -> "OrderContext":
        """Union of two contexts (e.g. both join inputs' contexts)."""
        return OrderContext(
            equivalences=self.equivalences.merged_with(other.equivalences),
            fds=self.fds.union(other.fds),
            constants=self.constants | other.constants,
        )

    def is_constant(self, column: ColumnRef) -> bool:
        """Whether ``column`` is bound to a constant (directly or via FDs)."""
        if column in self.constants:
            return True
        return self.fds.determines((), column)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OrderContext(eq={self.equivalences!r}, fds={self.fds!r}, "
            f"constants={sorted(str(c) for c in self.constants)})"
        )
