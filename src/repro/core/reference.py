"""Naive reference implementations of the order algebra.

These are the seed's algorithms, kept callable on purpose:

* :func:`naive_closure` is the textbook while-something-changed
  attribute closure [Beeri & Bernstein '79] with *no* head index, *no*
  incrementality, and *no* equivalence consultation — equivalences must
  be materialized as pairwise FDs first, which is what
  :meth:`OrderContext.materialized_fds` provides;
* the four ``*_reference`` operations run Figures 2-5 on that closure
  with no memoization whatsoever.

They exist as an oracle: the metamorphic tests
(``tests/core/test_memo_metamorphic.py``) pin the indexed, memoized
front doors against these on randomized contexts and specifications.
They are deliberately slow; nothing on a planning path imports them.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.context import OrderContext
from repro.core.fd import ALL_COLUMNS, FDSet
from repro.core.od import ODSet
from repro.core.ordering import OrderKey, OrderSpec
from repro.expr.nodes import ColumnRef


def naive_closure(
    columns: Iterable[ColumnRef], fds: FDSet
) -> Tuple[FrozenSet[ColumnRef], bool]:
    """The textbook attribute closure of ``columns`` under ``fds``.

    Returns ``(closed set, determines_everything)``. Loops over every
    dependency until nothing changes — the formulation the indexed
    closure replaces.
    """
    closed: Set[ColumnRef] = set(columns)
    changed = True
    while changed:
        changed = False
        for dependency in fds:
            if not dependency.head <= closed:
                continue
            if dependency.tail is ALL_COLUMNS:
                return frozenset(closed), True
            if not dependency.tail <= closed:
                closed |= dependency.tail
                changed = True
    return frozenset(closed), False


def reduce_order_reference(
    specification: OrderSpec, context: OrderContext
) -> OrderSpec:
    """Figure 2 on the naive closure over materialized FDs."""
    fds = context.materialized_fds()

    rewritten: List[OrderKey] = []
    seen_columns: Set[ColumnRef] = set()
    for key in specification:
        head = context.equivalences.head(key.column)
        if head in seen_columns:
            continue
        seen_columns.add(head)
        rewritten.append(key.with_column(head))

    retained: List[OrderKey] = []
    for key in rewritten:
        closed, everything = naive_closure(
            (retained_key.column for retained_key in retained), fds
        )
        if everything:
            break
        if key.column in closed:
            continue
        retained.append(key)
    return OrderSpec(retained)


def naive_od_flips(
    ods: ODSet, source: ColumnRef, target: ColumnRef
) -> Set[bool]:
    """Flip values under which ``source |-> target`` follows from the
    base OD edges — plain breadth-first search, no cached closure.

    The brute-force twin of :meth:`ODSet.flips`; flips compose by XOR
    exactly as there.
    """
    if source == target:
        return {False}
    visited: Set[Tuple[ColumnRef, bool]] = set()
    frontier: List[Tuple[ColumnRef, bool]] = [(source, False)]
    found: Set[bool] = set()
    while frontier:
        node, flip = frontier.pop()
        for edge in ods:
            if edge.source != node:
                continue
            combined = flip ^ edge.flip
            state = (edge.target, combined)
            if state in visited:
                continue
            visited.add(state)
            frontier.append(state)
            if edge.target == target:
                found.add(combined)
    return found


def test_order_reference(
    interesting: OrderSpec,
    order_property: OrderSpec,
    context: OrderContext,
) -> bool:
    """Figure 3 on the reference reduction, generalized over ODs.

    The OD positional rule mirrors ``repro.core.test._od_prefix`` but
    runs on naive BFS reachability and the naive closure; with an empty
    OD set it is exactly the original prefix test.
    """
    reduced_interesting = reduce_order_reference(interesting, context)
    if reduced_interesting.is_empty():
        return True
    reduced_property = reduce_order_reference(order_property, context)
    if context.ods.is_empty():
        return reduced_interesting.is_prefix_of(reduced_property)
    ikeys = list(reduced_interesting)
    pkeys = list(reduced_property)
    if len(ikeys) > len(pkeys):
        return False
    fds = context.materialized_fds()
    for position, ikey in enumerate(ikeys):
        pkey = pkeys[position]
        if pkey == ikey:
            continue
        if pkey.column == ikey.column:
            return False
        flip_needed = ikey.direction != pkey.direction
        if flip_needed not in naive_od_flips(
            context.ods, pkey.column, ikey.column
        ):
            return False
        if position + 1 < len(ikeys):
            # Non-final positions need {i_k} -> {p_k}: ties on i_k must
            # pin p_k, or the minor keys are unordered within the tie.
            closed, everything = naive_closure((ikey.column,), fds)
            if not everything and pkey.column not in closed:
                return False
    return True


def cover_order_reference(
    first: OrderSpec,
    second: OrderSpec,
    context: OrderContext,
) -> Optional[OrderSpec]:
    """Figure 4 on the reference reduction."""
    reduced_first = reduce_order_reference(first, context)
    reduced_second = reduce_order_reference(second, context)
    if len(reduced_first) > len(reduced_second):
        reduced_first, reduced_second = reduced_second, reduced_first
    if reduced_first.is_prefix_of(reduced_second):
        return reduced_second
    return None


def homogenize_order_reference(
    specification: OrderSpec,
    target_columns: Iterable[ColumnRef],
    context: OrderContext,
) -> Optional[OrderSpec]:
    """Figure 5 on the reference reduction."""
    targets = set(target_columns)
    reduced = reduce_order_reference(specification, context)
    substituted: List[OrderKey] = []
    seen: Set[ColumnRef] = set()
    for key in reduced:
        if key.column in targets:
            replacement = key
        else:
            candidates = [
                member
                for member in context.equivalences.members(key.column)
                if member in targets
            ]
            if candidates:
                chosen = min(candidates, key=lambda c: (c.qualifier, c.name))
                replacement = key.with_column(chosen)
            else:
                # Order-equivalent targets (mutual OD edges with one
                # consistent flip) substitute with a direction flip;
                # one-way edges do not — same rule as the memoized
                # ``_substitute_key``, proven here by naive BFS.
                od_candidates = []
                for target in targets:
                    forward = naive_od_flips(context.ods, key.column, target)
                    backward = naive_od_flips(context.ods, target, key.column)
                    for flip in (False, True):
                        if flip in forward and flip in backward:
                            od_candidates.append((target, flip))
                            break
                if not od_candidates:
                    return None
                chosen, flip = min(
                    od_candidates,
                    key=lambda pair: (pair[0].qualifier, pair[0].name),
                )
                replacement = key.with_column(chosen)
                if flip:
                    replacement = replacement.reversed()
        if replacement.column in seen:
            continue
        seen.add(replacement.column)
        substituted.append(replacement)
    return OrderSpec(substituted)
