"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch engine failures without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class TypeSystemError(ReproError):
    """Raised for illegal type declarations or value/type mismatches."""


class ExpressionError(ReproError):
    """Raised when an expression tree is malformed or cannot be evaluated."""


class CatalogError(ReproError):
    """Raised for catalog violations (duplicate tables, unknown columns...)."""


class StorageError(ReproError):
    """Raised by the storage layer (page overflow, unknown record ids...)."""


class ParseError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed.

    Carries the offending position so tools can point at the source.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.line:
            return f"{base} (at line {self.line}, column {self.column})"
        return base


class QgmError(ReproError):
    """Raised when a query graph model is malformed."""


class OrderError(ReproError):
    """Raised for illegal operations on order specifications."""


class PropertyError(ReproError):
    """Raised when plan properties are combined inconsistently."""


class OptimizerError(ReproError):
    """Raised when the optimizer cannot produce a plan."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails at run time."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for bad experiment ids/configs."""


class ServiceError(ReproError):
    """Raised by the query service (bad state, closed service...)."""


class AdmissionError(ServiceError):
    """Raised when the service's admission queue is full (backpressure)."""


class ServiceClosed(ServiceError):
    """Raised for work submitted to (or stranded in) a closed service.

    Graceful shutdown fails every still-queued future with this, so a
    caller blocked on ``.result()`` unblocks with a typed error instead
    of hanging forever.
    """


class QueryTimeout(ServiceError):
    """Raised when a query exceeds its deadline.

    Deadlines are cooperative: executor operators poll their execution
    context's cancellation token at batch boundaries, so the timeout
    surfaces from inside a running scan/sort/join, not just at
    admission time.
    """


class QueryCancelled(ServiceError):
    """Raised when a query's cancellation token is tripped explicitly."""
