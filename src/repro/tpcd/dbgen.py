"""dbgen-style synthetic TPC-D data generator.

Deterministic (seeded) and scaled: scale factor 1.0 corresponds to the
official row counts (150k customers, 1.5M orders, ~6M lineitems); tests
and benchmarks use small fractions. Value distributions follow the spec
where the benchmark queries are sensitive to them.
"""

from __future__ import annotations

import datetime
import decimal
import random
from typing import Iterator, List, Tuple

from repro.storage import Database
from repro.tpcd.schema import tpcd_indexes, tpcd_schema

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTIONS = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]
CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX"]
TYPES = [
    "STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM BURNISHED BRASS",
    "LARGE BRUSHED STEEL", "ECONOMY POLISHED NICKEL", "PROMO ANODIZED ZINC",
]
BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]

START_DATE = datetime.date(1992, 1, 1)
END_DATE = datetime.date(1998, 8, 2)
_DATE_SPAN = (END_DATE - START_DATE).days

_CENT = decimal.Decimal("0.01")


def _money(value: float) -> decimal.Decimal:
    return decimal.Decimal(str(round(value, 2))).quantize(_CENT)


class TpcdGenerator:
    """Row generators for every TPC-D table at one scale factor."""

    def __init__(self, scale_factor: float = 0.01, seed: int = 19960604):
        if scale_factor <= 0:
            raise ValueError("scale factor must be positive")
        self.scale_factor = scale_factor
        self.seed = seed
        self.customers = max(5, int(150_000 * scale_factor))
        self.orders = max(10, int(1_500_000 * scale_factor))
        self.parts = max(5, int(200_000 * scale_factor))
        self.suppliers = max(2, int(10_000 * scale_factor))

    def _rng(self, table: str) -> random.Random:
        return random.Random(f"{self.seed}:{table}")

    # ------------------------------------------------------------------
    # Small tables
    # ------------------------------------------------------------------

    def region_rows(self) -> Iterator[tuple]:
        for key, name in enumerate(REGIONS):
            yield (key, name, f"region {name.lower()}")

    def nation_rows(self) -> Iterator[tuple]:
        for key, (name, region_key) in enumerate(NATIONS):
            yield (key, name, region_key, f"nation {name.lower()}")

    def supplier_rows(self) -> Iterator[tuple]:
        rng = self._rng("supplier")
        for key in range(1, self.suppliers + 1):
            yield (
                key,
                f"Supplier#{key:09d}",
                f"addr-{rng.randint(1, 999999)}",
                rng.randrange(len(NATIONS)),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                _money(rng.uniform(-999.99, 9999.99)),
                "supplier comment",
            )

    def customer_rows(self) -> Iterator[tuple]:
        rng = self._rng("customer")
        for key in range(1, self.customers + 1):
            yield (
                key,
                f"Customer#{key:09d}",
                f"addr-{rng.randint(1, 999999)}",
                rng.randrange(len(NATIONS)),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                _money(rng.uniform(-999.99, 9999.99)),
                rng.choice(SEGMENTS),
                "customer comment",
            )

    def part_rows(self) -> Iterator[tuple]:
        rng = self._rng("part")
        for key in range(1, self.parts + 1):
            yield (
                key,
                f"part {key} {rng.choice(TYPES).lower()}",
                f"Manufacturer#{rng.randint(1, 5)}",
                rng.choice(BRANDS),
                rng.choice(TYPES),
                rng.randint(1, 50),
                rng.choice(CONTAINERS),
                _money(900 + (key % 1000) * 0.1),
                "part comment",
            )

    def partsupp_rows(self) -> Iterator[tuple]:
        rng = self._rng("partsupp")
        suppliers_per_part = min(4, self.suppliers)
        for part_key in range(1, self.parts + 1):
            seen = set()
            for offset in range(suppliers_per_part):
                supp_key = (
                    (part_key + offset * (self.suppliers // 4 + 1))
                    % self.suppliers
                ) + 1
                if supp_key in seen:
                    continue  # tiny scale factors: avoid key collisions
                seen.add(supp_key)
                yield (
                    part_key,
                    supp_key,
                    rng.randint(1, 9999),
                    _money(rng.uniform(1.0, 1000.0)),
                    "partsupp comment",
                )

    # ------------------------------------------------------------------
    # Orders / lineitem
    # ------------------------------------------------------------------

    def order_and_lineitem_rows(
        self,
    ) -> Tuple[List[tuple], List[tuple]]:
        """Orders and their lineitems together (they share randomness).

        Lineitems come out in (l_orderkey, l_linenumber) order, so the
        clustered index on ``l_orderkey`` is physically clustered — the
        premise of Figure 7's ordered nested-loop join.
        """
        rng = self._rng("orders")
        orders: List[tuple] = []
        lineitems: List[tuple] = []
        for order_key in range(1, self.orders + 1):
            cust_key = rng.randint(1, self.customers)
            order_date = START_DATE + datetime.timedelta(
                days=rng.randint(0, _DATE_SPAN - 151)
            )
            line_count = rng.randint(1, 7)
            total = decimal.Decimal("0.00")
            all_shipped = True
            any_shipped = False
            for line_number in range(1, line_count + 1):
                quantity = rng.randint(1, 50)
                part_key = rng.randint(1, self.parts)
                supp_key = rng.randint(1, self.suppliers)
                extended = _money(quantity * (900 + (part_key % 1000) * 0.1))
                discount = _money(rng.randint(0, 10) / 100.0)
                tax = _money(rng.randint(0, 8) / 100.0)
                ship_date = order_date + datetime.timedelta(
                    days=rng.randint(1, 121)
                )
                commit_date = order_date + datetime.timedelta(
                    days=rng.randint(30, 90)
                )
                receipt_date = ship_date + datetime.timedelta(
                    days=rng.randint(1, 30)
                )
                shipped = ship_date <= END_DATE - datetime.timedelta(days=90)
                if shipped:
                    any_shipped = True
                else:
                    all_shipped = False
                return_flag = (
                    rng.choice(["R", "A"]) if shipped and rng.random() < 0.4
                    else "N"
                )
                line_status = "F" if shipped else "O"
                lineitems.append(
                    (
                        order_key,
                        part_key,
                        supp_key,
                        line_number,
                        quantity,
                        extended,
                        discount,
                        tax,
                        return_flag,
                        line_status,
                        ship_date,
                        commit_date,
                        receipt_date,
                        rng.choice(SHIP_INSTRUCTIONS),
                        rng.choice(SHIP_MODES),
                        "lineitem comment",
                    )
                )
                total += extended
            status = "F" if all_shipped else ("O" if not any_shipped else "P")
            orders.append(
                (
                    order_key,
                    cust_key,
                    status,
                    total,
                    order_date,
                    rng.choice(PRIORITIES),
                    f"Clerk#{rng.randint(1, max(1, self.orders // 1000)):09d}",
                    0,
                    "order comment",
                )
            )
        return orders, lineitems


def build_tpcd_database(
    scale_factor: float = 0.01,
    seed: int = 19960604,
    buffer_pool_pages: int = 4096,
    with_indexes: bool = True,
) -> Database:
    """Create, load, and index a TPC-D database."""
    generator = TpcdGenerator(scale_factor, seed)
    database = Database(buffer_pool_pages)
    schemas = tpcd_schema()
    database.create_table(schemas["region"], generator.region_rows())
    database.create_table(schemas["nation"], generator.nation_rows())
    database.create_table(schemas["supplier"], generator.supplier_rows())
    database.create_table(schemas["customer"], generator.customer_rows())
    database.create_table(schemas["part"], generator.part_rows())
    database.create_table(schemas["partsupp"], generator.partsupp_rows())
    orders, lineitems = generator.order_and_lineitem_rows()
    database.create_table(schemas["orders"], orders)
    database.create_table(schemas["lineitem"], lineitems)
    if with_indexes:
        for index in tpcd_indexes():
            database.create_index(index)
    database.reset_io(cold=True)
    return database
