"""TPC-D benchmark queries (the ones order optimization touches).

``QUERY_3`` is the paper's Section 8.1 experiment subject. The paper's
printed SQL contains a well-known typo (``c_custkey = o_orderkey``); we
use the official predicate ``c_custkey = o_custkey`` — the typo'd join
would be empty on real data. ``QUERY_3_PAPER`` preserves the printed
text for reference.
"""

from __future__ import annotations

from repro.errors import BenchmarkError

# Q1: pricing summary report. GROUP BY + ORDER BY on the same columns —
# one sort serves both (Cover Order); grouping columns have tiny NDV.
QUERY_1 = """
select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= date('1998-09-02')
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus
"""

# Q3: shipping priority. The paper's experiment (with the join typo
# corrected — see module docstring).
QUERY_3 = """
select l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) as rev,
       o_orderdate, o_shippriority
from customer, orders, lineitem
where o_orderkey = l_orderkey
  and c_custkey = o_custkey
  and c_mktsegment = 'BUILDING'
  and o_orderdate < date('1995-03-15')
  and l_shipdate > date('1995-03-15')
group by l_orderkey, o_orderdate, o_shippriority
order by rev desc, o_orderdate
"""

# The text exactly as printed in the paper (including the typo), kept
# for documentation; running it yields an empty result on spec data.
QUERY_3_PAPER = """
select l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) as rev,
       o_orderdate, o_shippriority
from customer, orders, lineitem
where o_orderkey = l_orderkey
  and c_custkey = o_orderkey
  and c_mktsegment = 'BUILDING'
  and o_orderdate < date('1995-03-15')
  and l_shipdate > date('1995-03-15')
group by l_orderkey, o_orderdate, o_shippriority
order by rev desc, o_orderdate
"""

# Q4-like: order priority checking (simplified to our dialect — no
# EXISTS; counts late-commit lineitems joined through orders).
QUERY_4_LIKE = """
select o_orderpriority, count(*) as order_count
from orders, lineitem
where l_orderkey = o_orderkey
  and o_orderdate >= date('1993-07-01')
  and o_orderdate < date('1993-10-01')
  and l_receiptdate > l_commitdate
group by o_orderpriority
order by o_orderpriority
"""

# Q10-like: returned-item reporting, trimmed to tables our executor
# joins comfortably at test scale.
QUERY_10_LIKE = """
select c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) as revenue,
       c_acctbal, n_name
from customer, orders, lineitem, nation
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate >= date('1993-10-01')
  and o_orderdate < date('1994-01-01')
  and l_returnflag = 'R'
  and c_nationkey = n_nationkey
group by c_custkey, c_name, c_acctbal, n_name
order by revenue desc
"""

# Q5-like: local supplier volume (joins through nation; the region
# dimension is folded into a nation-key range to stay in our dialect).
QUERY_5_LIKE = """
select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from customer, orders, lineitem, nation
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and c_nationkey = n_nationkey
  and o_orderdate >= date('1994-01-01')
  and o_orderdate < date('1995-01-01')
group by n_name
order by revenue desc
"""

# Q6: forecasting revenue change — a pure scalar aggregate, the case
# where order optimization must know to do nothing.
QUERY_6 = """
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date('1994-01-01')
  and l_shipdate < date('1995-01-01')
  and l_discount between 0.05 and 0.07
  and l_quantity < 24
"""

_QUERIES = {
    "q1": QUERY_1,
    "q3": QUERY_3,
    "q3_paper": QUERY_3_PAPER,
    "q4": QUERY_4_LIKE,
    "q5": QUERY_5_LIKE,
    "q6": QUERY_6,
    "q10": QUERY_10_LIKE,
}


def tpcd_query(name: str) -> str:
    """Look up a query by short name ('q1', 'q3', ...)."""
    try:
        return _QUERIES[name.lower()]
    except KeyError:
        raise BenchmarkError(
            f"unknown TPC-D query {name!r}; have {sorted(_QUERIES)}"
        ) from None
