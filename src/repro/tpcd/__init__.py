"""TPC-D substrate: schema, dbgen-style generator, and benchmark queries.

The paper evaluates on a 1 GB TPC-D database (Section 8.1). We have no
dbgen and no 1 GB budget inside unit tests, so this package generates a
faithfully-shaped synthetic TPC-D database at a configurable scale
factor (SF 1.0 ~ the official row counts; tests use SF 0.002-0.01,
benchmarks SF 0.02-0.05). Distributions follow the TPC-D spec where they
matter to the queries: order dates span 1992-1998, each order carries
1-7 lineitems, ship dates trail order dates by 1-121 days, market
segments are uniform over five values.
"""

from repro.tpcd.schema import TPCD_TABLES, tpcd_indexes, tpcd_schema
from repro.tpcd.dbgen import TpcdGenerator, build_tpcd_database
from repro.tpcd.queries import QUERY_1, QUERY_3, QUERY_3_PAPER, tpcd_query

__all__ = [
    "TPCD_TABLES",
    "tpcd_indexes",
    "tpcd_schema",
    "TpcdGenerator",
    "build_tpcd_database",
    "QUERY_1",
    "QUERY_3",
    "QUERY_3_PAPER",
    "tpcd_query",
]
