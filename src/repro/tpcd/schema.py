"""TPC-D table schemas and the benchmark index set."""

from __future__ import annotations

from typing import Dict, List

from repro.catalog import Column, Index, TableSchema
from repro.sqltypes import DATE, INTEGER, decimal_type, varchar

MONEY = decimal_type(15, 2)

TPCD_TABLES = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)


def tpcd_schema() -> Dict[str, TableSchema]:
    """All eight TPC-D table schemas (comments shortened for memory)."""
    return {
        "region": TableSchema(
            "region",
            [
                Column("r_regionkey", INTEGER, nullable=False),
                Column("r_name", varchar(25), nullable=False),
                Column("r_comment", varchar(32)),
            ],
            primary_key=("r_regionkey",),
        ),
        "nation": TableSchema(
            "nation",
            [
                Column("n_nationkey", INTEGER, nullable=False),
                Column("n_name", varchar(25), nullable=False),
                Column("n_regionkey", INTEGER, nullable=False),
                Column("n_comment", varchar(32)),
            ],
            primary_key=("n_nationkey",),
        ),
        "supplier": TableSchema(
            "supplier",
            [
                Column("s_suppkey", INTEGER, nullable=False),
                Column("s_name", varchar(25), nullable=False),
                Column("s_address", varchar(40)),
                Column("s_nationkey", INTEGER, nullable=False),
                Column("s_phone", varchar(15)),
                Column("s_acctbal", MONEY),
                Column("s_comment", varchar(32)),
            ],
            primary_key=("s_suppkey",),
        ),
        "customer": TableSchema(
            "customer",
            [
                Column("c_custkey", INTEGER, nullable=False),
                Column("c_name", varchar(25), nullable=False),
                Column("c_address", varchar(40)),
                Column("c_nationkey", INTEGER, nullable=False),
                Column("c_phone", varchar(15)),
                Column("c_acctbal", MONEY),
                Column("c_mktsegment", varchar(10)),
                Column("c_comment", varchar(32)),
            ],
            primary_key=("c_custkey",),
        ),
        "part": TableSchema(
            "part",
            [
                Column("p_partkey", INTEGER, nullable=False),
                Column("p_name", varchar(55), nullable=False),
                Column("p_mfgr", varchar(25)),
                Column("p_brand", varchar(10)),
                Column("p_type", varchar(25)),
                Column("p_size", INTEGER),
                Column("p_container", varchar(10)),
                Column("p_retailprice", MONEY),
                Column("p_comment", varchar(23)),
            ],
            primary_key=("p_partkey",),
        ),
        "partsupp": TableSchema(
            "partsupp",
            [
                Column("ps_partkey", INTEGER, nullable=False),
                Column("ps_suppkey", INTEGER, nullable=False),
                Column("ps_availqty", INTEGER),
                Column("ps_supplycost", MONEY),
                Column("ps_comment", varchar(32)),
            ],
            primary_key=("ps_partkey", "ps_suppkey"),
        ),
        "orders": TableSchema(
            "orders",
            [
                Column("o_orderkey", INTEGER, nullable=False),
                Column("o_custkey", INTEGER, nullable=False),
                Column("o_orderstatus", varchar(1)),
                Column("o_totalprice", MONEY),
                Column("o_orderdate", DATE, nullable=False),
                Column("o_orderpriority", varchar(15)),
                Column("o_clerk", varchar(15)),
                Column("o_shippriority", INTEGER),
                Column("o_comment", varchar(32)),
            ],
            primary_key=("o_orderkey",),
        ),
        "lineitem": TableSchema(
            "lineitem",
            [
                Column("l_orderkey", INTEGER, nullable=False),
                Column("l_partkey", INTEGER, nullable=False),
                Column("l_suppkey", INTEGER, nullable=False),
                Column("l_linenumber", INTEGER, nullable=False),
                Column("l_quantity", INTEGER),
                Column("l_extendedprice", MONEY),
                Column("l_discount", decimal_type(4, 2)),
                Column("l_tax", decimal_type(4, 2)),
                Column("l_returnflag", varchar(1)),
                Column("l_linestatus", varchar(1)),
                Column("l_shipdate", DATE),
                Column("l_commitdate", DATE),
                Column("l_receiptdate", DATE),
                Column("l_shipinstruct", varchar(25)),
                Column("l_shipmode", varchar(10)),
                Column("l_comment", varchar(27)),
            ],
            primary_key=("l_orderkey", "l_linenumber"),
        ),
    }


def tpcd_indexes() -> List[Index]:
    """The index set of the paper's warehouse configuration.

    Figure 7 relies on a *clustered* index on ``l_orderkey`` (lineitems
    are generated in order-key order, so clustering holds physically)
    and on index access to ``orders`` by customer key.
    """
    return [
        Index.on("pk_region", "region", ["r_regionkey"], unique=True),
        Index.on("pk_nation", "nation", ["n_nationkey"], unique=True),
        Index.on("pk_supplier", "supplier", ["s_suppkey"], unique=True),
        Index.on(
            "pk_customer", "customer", ["c_custkey"], unique=True,
            clustered=True,
        ),
        Index.on("pk_part", "part", ["p_partkey"], unique=True),
        Index.on(
            "pk_partsupp", "partsupp", ["ps_partkey", "ps_suppkey"],
            unique=True,
        ),
        Index.on(
            "pk_orders", "orders", ["o_orderkey"], unique=True,
            clustered=True,
        ),
        Index.on("idx_o_custkey", "orders", ["o_custkey"]),
        Index.on("idx_o_orderdate", "orders", ["o_orderdate"]),
        Index.on(
            "idx_l_orderkey", "lineitem", ["l_orderkey"], clustered=True
        ),
        Index.on("idx_l_shipdate", "lineitem", ["l_shipdate"]),
        Index.on("idx_c_mktsegment", "customer", ["c_mktsegment"]),
    ]
