"""The normalized query block the cost-based planner consumes.

After view merging and predicate pushdown, the QGM shapes our dialect
produces collapse to one pipeline:

    join/select core  ->  [GROUP BY]  ->  [HAVING]  ->  projection
                                                        [DISTINCT]
                                                        [ORDER BY]

:class:`QueryBlock` captures that pipeline; :func:`normalize` flattens a
rewritten QGM box tree into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.ordering import OrderSpec
from repro.errors import QgmError
from repro.expr.nodes import Aggregate, ColumnRef, Expression
from repro.qgm.boxes import (
    BaseTableQuantifier,
    Box,
    BoxQuantifier,
    GroupByBox,
    SelectBox,
    SelectItem,
)


@dataclass
class QueryBlock:
    """One plannable query block.

    ``tables`` preserves FROM order (insertion-ordered dict); when
    ``outer_joins`` is non-empty the planner joins in exactly that order
    (outer joins are not freely reorderable).
    """

    tables: Dict[str, str]  # alias -> table name, in FROM order
    predicate: Optional[Expression]
    select_items: List[SelectItem]
    group_columns: List[ColumnRef] = field(default_factory=list)
    aggregates: List[Tuple[str, Aggregate]] = field(default_factory=list)
    having: Optional[Expression] = None
    distinct: bool = False
    order_by: OrderSpec = field(default_factory=OrderSpec)
    # alias -> ON predicate for LEFT OUTER JOINed quantifiers.
    outer_joins: Dict[str, Expression] = field(default_factory=dict)
    fetch_first: Optional[int] = None
    # alias -> unmergeable view box (derived table), planned separately;
    # such aliases also appear in ``tables`` mapped to DERIVED_TABLE.
    derived: Dict[str, Box] = field(default_factory=dict)

    def has_group_by(self) -> bool:
        return bool(self.group_columns) or bool(self.aggregates)

    def null_supplying_aliases(self) -> frozenset:
        return frozenset(self.outer_joins)

    def is_derived(self, alias: str) -> bool:
        return alias in self.derived

    def output_columns(self) -> List[ColumnRef]:
        return [item.output for item in self.select_items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryBlock(tables={self.tables}, group={self.group_columns}, "
            f"order_by={self.order_by})"
        )


# Sentinel table name for derived-table aliases in QueryBlock.tables.
DERIVED_TABLE = "$derived"


def normalize(root: Box) -> QueryBlock:
    """Flatten a (rewritten) box tree into a :class:`QueryBlock`."""
    order_by = root.output_order
    fetch_first = root.fetch_first
    distinct = False
    having: Optional[Expression] = None
    select_items: List[SelectItem] = list(root.output_items())
    aggregates: List[Tuple[str, Aggregate]] = []
    group_columns: List[ColumnRef] = []

    box: Box = root
    if isinstance(box, SelectBox):
        distinct = box.distinct
        quantifier_list = box.quantifiers()
        is_group_pipeline = (
            len(quantifier_list) == 1
            and isinstance(quantifier_list[0], BoxQuantifier)
            and isinstance(quantifier_list[0].box, GroupByBox)
        )
        if not is_group_pipeline:
            # Plain select block (base tables and/or derived tables).
            tables, derived = _base_tables(box)
            return QueryBlock(
                tables=tables,
                predicate=box.predicate,
                select_items=select_items,
                distinct=distinct,
                order_by=order_by,
                outer_joins=dict(box.outer_joins),
                fetch_first=fetch_first,
                derived=derived,
            )
        # SelectBox over a GroupByBox: HAVING / final projection.
        having = box.predicate
        box = quantifier_list[0].box

    if not isinstance(box, GroupByBox):
        raise QgmError(f"cannot normalize root {root!r}")
    group_box = box
    group_columns = list(group_box.group_columns)
    aggregates = list(group_box.aggregates)
    inner = group_box.quantifier
    if not isinstance(inner, BoxQuantifier) or not isinstance(
        inner.box, SelectBox
    ):
        raise QgmError("GROUP BY box must range over a SELECT box")
    core = inner.box
    if box is root:
        select_items = list(group_box.output_items())
        order_by = group_box.output_order
        fetch_first = group_box.fetch_first
    tables, derived = _base_tables(core)
    return QueryBlock(
        tables=tables,
        predicate=core.predicate,
        select_items=select_items,
        group_columns=group_columns,
        aggregates=aggregates,
        having=having,
        distinct=distinct,
        order_by=order_by,
        outer_joins=dict(core.outer_joins),
        fetch_first=fetch_first,
        derived=derived,
    )


def _all_base(box: SelectBox) -> bool:
    return all(
        isinstance(quantifier, BaseTableQuantifier)
        for quantifier in box.quantifiers()
    )


def _base_tables(box: SelectBox) -> Tuple[Dict[str, str], Dict[str, Box]]:
    """(alias -> table name, alias -> derived box) in FROM order."""
    tables: Dict[str, str] = {}
    derived: Dict[str, Box] = {}
    for quantifier in box.quantifiers():
        if isinstance(quantifier, BaseTableQuantifier):
            tables[quantifier.alias] = quantifier.table_name
        elif isinstance(quantifier, BoxQuantifier):
            tables[quantifier.alias] = DERIVED_TABLE
            derived[quantifier.alias] = quantifier.box
        else:
            raise QgmError(
                f"cannot plan quantifier {quantifier.alias!r}"
            )
    return tables, derived
