"""QGM boxes and quantifiers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.general import GeneralOrderSpec
from repro.core.ordering import OrderSpec
from repro.errors import QgmError
from repro.expr.nodes import Aggregate, ColumnRef, Expression


@dataclass
class SelectItem:
    """One output column of a box: an expression plus its exposed name.

    ``output`` is the column reference downstream consumers use. For a
    bare column it is the column itself (names flow through, as in
    Starburst); for computed expressions it is a synthetic reference
    qualified by the empty string, e.g. ``ColumnRef("", "rev")``.
    """

    expression: Expression
    name: str

    @property
    def output(self) -> ColumnRef:
        if isinstance(self.expression, ColumnRef):
            return self.expression
        return ColumnRef("", self.name)

    def is_computed(self) -> bool:
        return not isinstance(self.expression, ColumnRef)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if isinstance(self.expression, ColumnRef) and (
            self.expression.name == self.name
        ):
            return str(self.expression)
        return f"{self.expression} AS {self.name}"


class Quantifier:
    """An arc in the QGM graph: a named range over a table or a box."""

    def __init__(self, alias: str):
        if not alias:
            raise QgmError("quantifier needs an alias")
        self.alias = alias
        # Input order requirement (Section 5.1); GROUP BY sets this on
        # the quantifier feeding the group-by box.
        self.input_order: Optional[GeneralOrderSpec] = None


class BaseTableQuantifier(Quantifier):
    """A quantifier ranging over a base table."""

    def __init__(self, alias: str, table_name: str):
        super().__init__(alias)
        self.table_name = table_name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Quantifier({self.alias} -> table {self.table_name})"


class BoxQuantifier(Quantifier):
    """A quantifier ranging over another box (view / nested block)."""

    def __init__(self, alias: str, box: "Box"):
        super().__init__(alias)
        self.box = box

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Quantifier({self.alias} -> {self.box!r})"


class Box:
    """Abstract QGM box."""

    def __init__(self):
        # Output order requirement — ORDER BY hangs here.
        self.output_order: OrderSpec = OrderSpec()
        # Interesting orders attached during the order scan; they double
        # as sort-ahead orders during planning (Section 5.1).
        self.interesting_orders: List[OrderSpec] = []
        # FETCH FIRST n ROWS ONLY on this box's output, if any.
        self.fetch_first: Optional[int] = None

    def quantifiers(self) -> Sequence[Quantifier]:
        raise NotImplementedError

    def output_items(self) -> Sequence[SelectItem]:
        raise NotImplementedError

    def output_columns(self) -> List[ColumnRef]:
        return [item.output for item in self.output_items()]


class SelectBox(Box):
    """SELECT box: projection + predicate over one or more quantifiers.

    Two or more quantifiers make it a join box. ``distinct`` corresponds
    to SELECT DISTINCT.
    """

    def __init__(
        self,
        quantifiers: Sequence[Quantifier],
        items: Sequence[SelectItem],
        predicate: Optional[Expression] = None,
        distinct: bool = False,
        outer_joins: Optional[dict] = None,
    ):
        super().__init__()
        if not quantifiers:
            raise QgmError("SELECT box needs at least one quantifier")
        if not items:
            raise QgmError("SELECT box needs at least one output item")
        self._quantifiers = list(quantifiers)
        self.items = list(items)
        self.predicate = predicate
        self.distinct = distinct
        # alias -> ON predicate, for quantifiers LEFT OUTER JOINed to
        # everything preceding them in FROM order.
        self.outer_joins: dict = dict(outer_joins or {})
        names = [quantifier.alias for quantifier in self._quantifiers]
        if len(set(names)) != len(names):
            raise QgmError(f"duplicate quantifier aliases: {names}")
        for alias in self.outer_joins:
            if alias not in names:
                raise QgmError(f"outer join on unknown alias {alias!r}")
            if alias == names[0]:
                raise QgmError("first FROM entry cannot be outer-joined")

    def quantifiers(self) -> Sequence[Quantifier]:
        return self._quantifiers

    def output_items(self) -> Sequence[SelectItem]:
        return self.items

    def is_join(self) -> bool:
        return len(self._quantifiers) > 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        aliases = ", ".join(q.alias for q in self._quantifiers)
        return f"SelectBox[{aliases}]"


class UnionBox(Box):
    """UNION / UNION ALL over two or more branch boxes.

    Branches must agree in arity; output item names come from the first
    branch. ``all`` keeps duplicates; plain UNION deduplicates — an
    order-based DISTINCT whose sort the optimizer covers with the
    union's ORDER BY when possible.
    """

    def __init__(self, branches: Sequence[Box], all_rows: bool = False):
        super().__init__()
        if len(branches) < 2:
            raise QgmError("UNION needs at least two branches")
        arity = len(branches[0].output_items())
        for branch in branches[1:]:
            if len(branch.output_items()) != arity:
                raise QgmError("UNION branches must have equal arity")
        self.branches = list(branches)
        self.all_rows = all_rows

    def quantifiers(self) -> Sequence[Quantifier]:
        return ()

    def output_items(self) -> Sequence[SelectItem]:
        # Synthetic outputs named after the first branch, deduplicated.
        items = []
        seen = set()
        for index, item in enumerate(self.branches[0].output_items()):
            name = item.name
            if name in seen:
                name = f"c{index + 1}"
            seen.add(name)
            items.append(SelectItem(ColumnRef("", name), name))
        return items

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "UNION ALL" if self.all_rows else "UNION"
        return f"UnionBox[{kind}, {len(self.branches)} branches]"


class GroupByBox(Box):
    """GROUP BY box over exactly one quantifier.

    ``group_columns`` come from the GROUP BY clause; ``aggregates`` are
    (name, Aggregate) pairs. Output items are the group columns followed
    by the aggregate outputs.
    """

    def __init__(
        self,
        quantifier: Quantifier,
        group_columns: Sequence[ColumnRef],
        aggregates: Sequence[Tuple[str, Aggregate]],
    ):
        super().__init__()
        self.quantifier = quantifier
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)
        if not self.group_columns and not self.aggregates:
            raise QgmError("GROUP BY box needs group columns or aggregates")
        # The order-based implementation wants its input grouped: hang a
        # general (degrees-of-freedom) input order requirement off the
        # quantifier. Hash-based GROUP BY remains available to planning.
        if self.group_columns:
            quantifier.input_order = GeneralOrderSpec.from_group_by(
                self.group_columns
            )

    def quantifiers(self) -> Sequence[Quantifier]:
        return (self.quantifier,)

    def output_items(self) -> Sequence[SelectItem]:
        items = [
            SelectItem(column, column.name) for column in self.group_columns
        ]
        items.extend(
            SelectItem(aggregate, name) for name, aggregate in self.aggregates
        )
        return items

    def aggregate_outputs(self) -> List[ColumnRef]:
        return [ColumnRef("", name) for name, _aggregate in self.aggregates]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(column) for column in self.group_columns)
        return f"GroupByBox[{inner}]"
