"""Query Graph Model (QGM) — the optimizer's input representation.

Section 3 of the paper: boxes represent relational operations, arcs
(quantifiers) represent table references. A SELECT box with multiple
quantifiers is a join; ORDER BY is an output order requirement on a box;
GROUP BY contributes an input order requirement on its quantifier.

After construction, rewrite heuristics (predicate pushdown, view
merging) produce a semantically equivalent but more efficient QGM, which
:func:`~repro.qgm.block.normalize` flattens into the
:class:`~repro.qgm.block.QueryBlock` pipeline that cost-based planning
consumes.
"""

from repro.qgm.boxes import (
    BaseTableQuantifier,
    Box,
    BoxQuantifier,
    GroupByBox,
    Quantifier,
    SelectBox,
    SelectItem,
)
from repro.qgm.block import QueryBlock, normalize
from repro.qgm.rewrite import merge_views, push_down_predicates, rewrite

__all__ = [
    "BaseTableQuantifier",
    "Box",
    "BoxQuantifier",
    "GroupByBox",
    "Quantifier",
    "SelectBox",
    "SelectItem",
    "QueryBlock",
    "normalize",
    "merge_views",
    "push_down_predicates",
    "rewrite",
]
