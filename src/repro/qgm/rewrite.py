"""QGM rewrite heuristics (Section 3 / [PHH92]): view merging and
predicate pushdown.

These run before cost-based optimization and before the order scan, so
interesting orders from an ORDER BY can later be pushed *through* what
used to be a view boundary — the paper's "pushed down in a join tree or
view".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.expr.analysis import columns_of, conjuncts_of
from repro.expr.nodes import BooleanExpr, BooleanOp, ColumnRef, Expression
from repro.expr.transform import substitute_columns
from repro.qgm.boxes import (
    BaseTableQuantifier,
    Box,
    BoxQuantifier,
    GroupByBox,
    SelectBox,
    SelectItem,
)


def rewrite(root: Box) -> Box:
    """Apply all rewrites until fixpoint (they are cheap and confluent)."""
    root = merge_views(root)
    root = push_down_predicates(root)
    return root


def _and_all(conjuncts: List[Expression]) -> Optional[Expression]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return BooleanExpr(BooleanOp.AND, tuple(conjuncts))


def merge_views(box: Box) -> Box:
    """Merge mergeable SELECT-box quantifiers into their parent.

    A view is mergeable when it is a plain SELECT box: no DISTINCT, no
    grouping, no ORDER BY of its own. Its predicate conjoins into the
    parent and parent references to its outputs are replaced by the
    underlying expressions.
    """
    from repro.qgm.boxes import UnionBox

    if isinstance(box, UnionBox):
        box.branches = [merge_views(branch) for branch in box.branches]
        return box
    if isinstance(box, GroupByBox):
        inner = box.quantifier
        if isinstance(inner, BoxQuantifier):
            inner.box = merge_views(inner.box)
        return box
    if not isinstance(box, SelectBox):
        return box

    changed = True
    while changed:
        changed = False
        new_quantifiers = []
        substitution: Dict[ColumnRef, Expression] = {}
        extra_predicates: List[Expression] = []
        for quantifier in box.quantifiers():
            if isinstance(quantifier, BoxQuantifier):
                quantifier.box = merge_views(quantifier.box)
                view = quantifier.box
                if (
                    isinstance(view, SelectBox)
                    and not view.distinct
                    and view.output_order.is_empty()
                    and view.fetch_first is None
                    and not view.outer_joins
                    and quantifier.alias not in box.outer_joins
                    # Views still containing nested boxes (a GROUP BY or
                    # another unmergeable view) stay whole: they are
                    # planned as derived tables.
                    and all(
                        isinstance(inner, BaseTableQuantifier)
                        for inner in view.quantifiers()
                    )
                ):
                    for item in view.items:
                        exposed = ColumnRef(quantifier.alias, item.name)
                        substitution[exposed] = item.expression
                    new_quantifiers.extend(view.quantifiers())
                    if view.predicate is not None:
                        extra_predicates.append(view.predicate)
                    changed = True
                    continue
            new_quantifiers.append(quantifier)
        if changed:
            box._quantifiers = new_quantifiers
            box.items = [
                SelectItem(
                    substitute_columns(item.expression, substitution),
                    item.name,
                )
                for item in box.items
            ]
            predicates = []
            if box.predicate is not None:
                predicates.append(
                    substitute_columns(box.predicate, substitution)
                )
            predicates.extend(extra_predicates)
            box.predicate = _and_all(predicates)
            box.output_order = _substitute_order(
                box.output_order, substitution, box.items
            )
    return box


def _substitute_order(
    order, substitution: Dict[ColumnRef, Expression], items: List[SelectItem]
):
    """Rewrite order-requirement keys through a view-merge substitution."""
    from repro.core.ordering import OrderSpec

    if order.is_empty():
        return order
    keys = []
    for key in order:
        replacement = substitution.get(key.column)
        if replacement is None:
            keys.append(key)
        elif isinstance(replacement, ColumnRef):
            keys.append(key.with_column(replacement))
        else:
            # Computed view column: order by the parent item exposing it.
            exposed = next(
                (
                    item.output
                    for item in items
                    if item.expression == replacement
                ),
                None,
            )
            if exposed is None:
                keys.append(key)
            else:
                keys.append(key.with_column(exposed))
    return OrderSpec(keys)


def push_down_predicates(box: Box) -> Box:
    """Push HAVING conjuncts that mention only grouping columns below the
    GROUP BY (the classical transformation; [YL93, CS93])."""
    from repro.qgm.boxes import UnionBox

    if isinstance(box, UnionBox):
        box.branches = [
            push_down_predicates(branch) for branch in box.branches
        ]
        return box
    if isinstance(box, SelectBox):
        for quantifier in box.quantifiers():
            if isinstance(quantifier, BoxQuantifier):
                quantifier.box = push_down_predicates(quantifier.box)
        quantifiers = box.quantifiers()
        if (
            len(quantifiers) == 1
            and isinstance(quantifiers[0], BoxQuantifier)
            and isinstance(quantifiers[0].box, GroupByBox)
            and box.predicate is not None
        ):
            group_box = quantifiers[0].box
            group_set = set(group_box.group_columns)
            pushable: List[Expression] = []
            residual: List[Expression] = []
            for conjunct in conjuncts_of(box.predicate):
                if columns_of(conjunct) <= group_set:
                    pushable.append(conjunct)
                else:
                    residual.append(conjunct)
            if pushable:
                inner = group_box.quantifier
                if isinstance(inner, BoxQuantifier) and isinstance(
                    inner.box, SelectBox
                ):
                    core = inner.box
                    merged = conjuncts_of(core.predicate) + pushable
                    core.predicate = _and_all(merged)
                    box.predicate = _and_all(residual)
        return box
    if isinstance(box, GroupByBox):
        inner = box.quantifier
        if isinstance(inner, BoxQuantifier):
            inner.box = push_down_predicates(inner.box)
        return box
    return box
