"""Config-aware wrappers over the core order operations.

With ``order_optimization`` off these degrade to the naive behaviour the
paper's disabled DB2 build exhibits: literal column-list prefix tests, no
reduction, no minimal sort columns.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import OrderContext
from repro.core.general import GeneralOrderSpec
from repro.core.ordering import OrderSpec
from repro.core.reduce import reduce_order
from repro.core.test import test_order, test_order_naive
from repro.optimizer.config import OptimizerConfig


def order_satisfies(
    config: OptimizerConfig,
    interesting: OrderSpec,
    order_property: OrderSpec,
    context: OrderContext,
) -> bool:
    """Does ``order_property`` satisfy ``interesting``? (Figure 3 / naive)"""
    if config.effective("enable_reduction"):
        return test_order(interesting, order_property, context)
    return test_order_naive(interesting, order_property)


def sort_columns_for(
    config: OptimizerConfig,
    interesting: OrderSpec,
    context: OrderContext,
) -> OrderSpec:
    """Sort columns needed to satisfy ``interesting`` (minimal when on)."""
    if config.effective("enable_reduction"):
        return reduce_order(interesting, context)
    return interesting


def satisfied_prefix_length(
    config: OptimizerConfig,
    target: OrderSpec,
    order_property: OrderSpec,
    context: OrderContext,
) -> int:
    """Longest *proper* prefix of ``target`` already satisfied.

    Capped at ``len(target) - 1`` so a nonzero result always leaves a
    suffix to enforce — callers that see the whole target satisfied
    should not be sorting at all. FDs/ODs/constants in ``context`` can
    lengthen the usable prefix beyond a literal column match.
    """
    for length in range(len(target) - 1, 0, -1):
        if order_satisfies(config, target.prefix(length), order_property, context):
            return length
    return 0


def general_satisfies(
    config: OptimizerConfig,
    general: GeneralOrderSpec,
    order_property: OrderSpec,
    context: OrderContext,
) -> bool:
    """Degrees-of-freedom satisfaction (Section 7), or the rigid check."""
    if config.effective("enable_general_orders"):
        return general.satisfied_by(order_property, context)
    rigid = _rigid_spec(general)
    return order_satisfies(config, rigid, order_property, context)


def general_sort_target(
    config: OptimizerConfig,
    general: GeneralOrderSpec,
    context: OrderContext,
    hint: Optional[OrderSpec] = None,
) -> OrderSpec:
    """The sort order to enforce for a general requirement."""
    if config.effective("enable_general_orders"):
        return general.concrete(context, hint=hint)
    return _rigid_spec(general)


def _rigid_spec(general: GeneralOrderSpec) -> OrderSpec:
    """The general order collapsed to its written column sequence."""
    from repro.core.ordering import OrderKey

    keys = []
    for segment in general.segments:
        if segment.is_fixed:
            keys.append(segment.fixed_key)
        else:
            for column in sorted(
                segment.columns, key=lambda c: (c.qualifier, c.name)
            ):
                keys.append(OrderKey(column))
    return OrderSpec(keys)
