"""Shared planning state and single-table access path generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.catalog import Index, TableSchema
from repro.core.context import OrderContext
from repro.core.homogenize import homogenize_order
from repro.core.instrument import COUNTERS
from repro.core.od import EMPTY_ODS, ODSet
from repro.core.ordering import OrderSpec
from repro.cost.estimate import SelectivityEstimator, StatsView
from repro.cost.model import CostModel
from repro.expr.analysis import (
    analyze_predicates,
    columns_of,
    conjuncts_of,
    is_column_constant_equality,
    is_column_parameter_equality,
)
from repro.expr.nodes import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    Literal,
    Parameter,
)
from repro.optimizer.config import OptimizerConfig, PlannerStats
from repro.optimizer.plan import OpKind, PlanNode
from repro.properties.odharvest import harvest_expression_ods
from repro.properties.propagate import (
    base_table_properties,
    propagate_filter,
    propagate_sort,
)
from repro.qgm.block import QueryBlock
from repro.storage import Database


@dataclass
class PlannerContext:
    """Everything shared across one planning run."""

    database: Database
    config: OptimizerConfig
    block: QueryBlock
    cost_model: CostModel
    stats_view: StatsView
    estimator: SelectivityEstimator
    # Conjuncts of the WHERE clause, split by the aliases they touch.
    local_predicates: Dict[str, List[Expression]] = field(default_factory=dict)
    join_predicates: List[Expression] = field(default_factory=list)
    # WHERE conjuncts touching a null-supplying (outer-joined) alias:
    # they filter *after* padding, so they must not be pushed below the
    # outer join.
    post_join_predicates: List[Expression] = field(default_factory=list)
    # Interesting (sort-ahead) orders produced by the order scan.
    interesting_orders: List[OrderSpec] = field(default_factory=list)
    # The optimistic context: all predicates assumed applied, all base
    # keys known (Section 5.1's order-scan assumption).
    optimistic: OrderContext = field(default_factory=OrderContext)
    # ODs harvested from monotonic computed select items (e.g.
    # ``val + 1 AS v``); empty when ``use_order_dependencies`` is off.
    block_ods: ODSet = EMPTY_ODS
    stats: PlannerStats = field(default_factory=PlannerStats)
    # alias -> pre-planned access path for derived tables (set by the
    # Optimizer facade before enumeration).
    derived_plans: Dict[str, List["PlanNode"]] = field(default_factory=dict)
    # available-column-set -> interesting orders homogenized to it
    # (aligned with ``interesting_orders``; None where impossible). Every
    # join pair over the same DP subset shares one entry.
    _homogenized_cache: Dict[FrozenSet[ColumnRef], Tuple[Optional[OrderSpec], ...]] = field(
        default_factory=dict
    )

    def homogenized_interesting(
        self, available: Iterable[ColumnRef]
    ) -> Tuple[Optional[OrderSpec], ...]:
        """The block's interesting orders homogenized onto ``available``.

        Homogenization is always against the optimistic context
        (Section 5.1's assumption), so the answer depends only on the
        available column set — which repeats for every plan pair of
        every DP subset with the same schema. Cached per column set.
        """
        key = (
            available
            if isinstance(available, frozenset)
            else frozenset(available)
        )
        COUNTERS["planner.homogenized_calls"] = (
            COUNTERS.get("planner.homogenized_calls", 0) + 1
        )
        cached = self._homogenized_cache.get(key)
        if cached is None:
            cached = tuple(
                homogenize_order(interesting, key, self.optimistic)
                for interesting in self.interesting_orders
            )
            self._homogenized_cache[key] = cached
        else:
            COUNTERS["planner.homogenized_memo_hits"] = (
                COUNTERS.get("planner.homogenized_memo_hits", 0) + 1
            )
        return cached

    @classmethod
    def build(
        cls,
        database: Database,
        config: OptimizerConfig,
        block: QueryBlock,
        cost_model: Optional[CostModel] = None,
        derived_plans: Optional[Dict[str, List["PlanNode"]]] = None,
    ) -> "PlannerContext":
        tables_by_alias = {
            alias: database.catalog.table(table_name)
            for alias, table_name in block.tables.items()
            if not block.is_derived(alias)
        }
        stats_view = StatsView(
            tables_by_alias, overrides=database.catalog.stats_overrides
        )
        context = cls(
            database=database,
            config=config,
            block=block,
            cost_model=cost_model or CostModel(),
            stats_view=stats_view,
            estimator=SelectivityEstimator(stats_view),
            derived_plans=dict(derived_plans or {}),
        )
        context._split_predicates()
        context._harvest_block_ods()
        context._build_optimistic_context()
        return context

    def _split_predicates(self) -> None:
        self.local_predicates = {alias: [] for alias in self.block.tables}
        null_aliases = self.block.null_supplying_aliases()
        first_alias = next(iter(self.block.tables))
        for conjunct in conjuncts_of(self.block.predicate):
            aliases = {column.qualifier for column in columns_of(conjunct)}
            aliases.discard("")
            if aliases & null_aliases:
                self.post_join_predicates.append(conjunct)
            elif len(aliases) == 1:
                self.local_predicates[next(iter(aliases))].append(conjunct)
            elif not aliases:
                # Column-free conjunct (e.g. "1 = 2", ":p = 5"): evaluate
                # once at the first table's access path.
                self.local_predicates[first_alias].append(conjunct)
            else:
                self.join_predicates.append(conjunct)

    def column_nullable(self, column: ColumnRef) -> bool:
        """Conservatively: can this column carry NULLs at this block?

        Anything not traceable to a declared NOT NULL base-table column
        — derived-table outputs, unknown qualifiers, columns of a
        null-supplying (outer-joined) alias — counts as nullable. The
        OD harvest uses this to refuse direction-flipping edges whose
        NULL rows would land at the wrong end of the flipped order.
        """
        alias = column.qualifier
        if alias not in self.block.tables or self.block.is_derived(alias):
            return True
        if alias in self.block.null_supplying_aliases():
            return True
        table = self.table_for(alias)
        if not table.has_column(column.name):
            return True
        return table.column(column.name).nullable

    def _harvest_block_ods(self) -> None:
        """ODs from the block's computed select items (gated).

        ``val + 1 AS v`` order-equates ``r.val`` and the output column
        ``("", "v")``; ``year(d) AS y`` adds the one-way ``d |-> y``.
        These feed the optimistic context (so the order scan can push a
        sort on ``val`` down for ``ORDER BY v``) and the final
        ORDER-BY/projection steps in finalize.
        """
        if not self.config.effective("use_order_dependencies"):
            self.block_ods = EMPTY_ODS
            return
        self.block_ods = harvest_expression_ods(
            (
                (item.expression, item.output)
                for item in self.block.select_items
            ),
            nullable=self.column_nullable,
        )

    def _build_optimistic_context(self) -> None:
        """All predicates assumed applied + every base-table key (§5.1).

        Outer-join ON equalities contribute only their one-directional
        FD (preserved column determines null-supplying column, §4.1) —
        never an equivalence class.
        """
        from repro.core.fd import FDSet, fd
        from repro.expr.analysis import analyze_predicates as analyze

        facts = analyze_predicates(conjuncts_of(self.block.predicate))
        keys = []
        for alias, table_name in self.block.tables.items():
            if self.block.is_derived(alias):
                for key in self.derived_plans[alias][0].properties.key_property.keys:
                    keys.append(list(key))
                continue
            table = self.database.catalog.table(table_name)
            for key in table.keys():
                keys.append([ColumnRef(alias, name) for name in key])
        extra = FDSet()
        for alias, on_predicate in self.block.outer_joins.items():
            for left, right in analyze([on_predicate]).equalities:
                if right.qualifier == alias and left.qualifier != alias:
                    extra = extra.add(fd([left], [right]))
                elif left.qualifier == alias and right.qualifier != alias:
                    extra = extra.add(fd([right], [left]))
        self.optimistic = OrderContext.from_facts(
            facts, keys=keys, extra_fds=extra, ods=self.block_ods
        )

    # ------------------------------------------------------------------
    # Cardinalities
    # ------------------------------------------------------------------

    def base_cardinality(self, alias: str) -> float:
        """Rows surviving the local predicates of one quantifier."""
        if alias in self.derived_plans:
            rows = self.derived_plans[alias][0].properties.cardinality
        else:
            rows = float(self.stats_view.row_count(alias))
        # The whole local-predicate list is one observed unit (it
        # becomes a single FILTER node), so feedback overrides are
        # consulted for the conjunction before falling back to the
        # per-predicate independence product.
        rows *= self.estimator.conjunction_selectivity(
            self.local_predicates.get(alias, ())
        )
        return max(1.0, rows)

    def is_derived(self, alias: str) -> bool:
        return self.block.is_derived(alias)

    def subset_cardinality(self, aliases: frozenset) -> float:
        """Estimated rows for the join of ``aliases``.

        Deliberately order-independent so DP subplans agree.
        """
        rows = 1.0
        for alias in aliases:
            rows *= self.base_cardinality(alias)
        for predicate in self.join_predicates:
            touched = {c.qualifier for c in columns_of(predicate)} - {""}
            if touched and touched <= set(aliases):
                rows *= self.estimator.selectivity(predicate)
        return max(1.0, rows)

    def pages_for(self, rows: float, alias_count: int = 1) -> float:
        """Crude page estimate for intermediate results."""
        return max(1.0, rows / 64.0)

    def table_for(self, alias: str) -> TableSchema:
        return self.database.catalog.table(self.block.tables[alias])


# ----------------------------------------------------------------------
# Sargable predicate extraction
# ----------------------------------------------------------------------


@dataclass
class SargableBounds:
    """Index bounds mined from local predicates."""

    low: Optional[Tuple[Any, ...]] = None
    high: Optional[Tuple[Any, ...]] = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    covered: List[Expression] = field(default_factory=list)

    def is_bounded(self) -> bool:
        return self.low is not None or self.high is not None


def extract_sargable(
    index: Index, alias: str, predicates: Sequence[Expression]
) -> SargableBounds:
    """Match predicates against an index key prefix.

    Leading columns bound by equality extend both bounds; the first
    range-bound column closes the prefix.
    """
    bounds = SargableBounds()
    equal_prefix: List[Any] = []
    remaining = list(predicates)
    for key_column in index.key:
        column = ColumnRef(alias, key_column.name)
        eq_value, eq_predicate = _find_equality(column, remaining)
        if eq_predicate is not None:
            equal_prefix.append(eq_value)
            bounds.covered.append(eq_predicate)
            remaining.remove(eq_predicate)
            continue
        low, high, low_inc, high_inc, covered = _find_range(column, remaining)
        if covered:
            if low is not None:
                bounds.low = tuple(equal_prefix + [low])
                bounds.low_inclusive = low_inc
            elif equal_prefix:
                bounds.low = tuple(equal_prefix)
            if high is not None:
                bounds.high = tuple(equal_prefix + [high])
                bounds.high_inclusive = high_inc
            elif equal_prefix:
                bounds.high = tuple(equal_prefix)
            bounds.covered.extend(covered)
            return bounds
        break
    if equal_prefix:
        bounds.low = tuple(equal_prefix)
        bounds.high = tuple(equal_prefix)
    return bounds


def _find_equality(
    column: ColumnRef, predicates: Sequence[Expression]
) -> Tuple[Any, Optional[Expression]]:
    for predicate in predicates:
        matched = is_column_constant_equality(predicate)
        if matched is not None and matched[0] == column:
            return matched[1].value, predicate
        # Host variables are constants whose value arrives at execution
        # (§4.1): keep the Parameter node in the bound tuple and let the
        # index scan resolve it from the active binding scope.
        parameter = is_column_parameter_equality(predicate)
        if parameter is not None and parameter[0] == column:
            return parameter[1], predicate
    return None, None


def _find_range(
    column: ColumnRef, predicates: Sequence[Expression]
) -> Tuple[Any, Any, bool, bool, List[Expression]]:
    low = high = None
    low_inc = high_inc = True
    covered: List[Expression] = []
    for predicate in predicates:
        if not isinstance(predicate, Comparison):
            continue
        left, right, op = predicate.left, predicate.right, predicate.op
        if isinstance(right, ColumnRef) and isinstance(
            left, (Literal, Parameter)
        ):
            left, right = right, left
            op = op.flipped()
        if left != column or not isinstance(right, (Literal, Parameter)):
            continue
        value = right if isinstance(right, Parameter) else right.value
        if op in (ComparisonOp.GT, ComparisonOp.GE) and low is None:
            low, low_inc = value, op is ComparisonOp.GE
            covered.append(predicate)
        elif op in (ComparisonOp.LT, ComparisonOp.LE) and high is None:
            high, high_inc = value, op is ComparisonOp.LE
            covered.append(predicate)
    return low, high, low_inc, high_inc, covered


# ----------------------------------------------------------------------
# Access paths
# ----------------------------------------------------------------------


def access_paths(planner: PlannerContext, alias: str) -> List[PlanNode]:
    """All single-table plans for one quantifier, filters applied."""
    if planner.is_derived(alias):
        variants = [
            _apply_filters(
                planner,
                node,
                planner.local_predicates.get(alias, []),
                planner.base_cardinality(alias),
            )
            for node in planner.derived_plans[alias]
        ]
        planner.stats.plans_generated += len(variants)
        return variants
    table = planner.table_for(alias)
    predicates = planner.local_predicates.get(alias, [])
    filtered_rows = planner.base_cardinality(alias)
    plans: List[PlanNode] = [
        _table_scan_plan(planner, alias, table, predicates, filtered_rows)
    ]
    if table.partitioning is None:
        for index in planner.database.catalog.indexes_on(table.name):
            plans.append(
                _index_scan_plan(
                    planner, alias, table, index, predicates, filtered_rows,
                    descending=False,
                )
            )
            if _descending_scan_useful(planner, index, alias):
                plans.append(
                    _index_scan_plan(
                        planner, alias, table, index, predicates,
                        filtered_rows, descending=True,
                    )
                )
    else:
        # Indexes on a partitioned table are *local* (one B-tree per
        # partition): a globally ordered scan is inherently a k-way
        # merge, which is an exchange — offered by the parallel access
        # paths below when partitioning is enabled, and not at all
        # otherwise (point probes for index NLJ still work). Lazy
        # import: parallel builds on this module.
        from repro.optimizer.parallel import partitioned_access_paths

        plans.extend(partitioned_access_paths(planner, alias, table))
    planner.stats.plans_generated += len(plans)
    return plans


def _descending_scan_useful(
    planner: PlannerContext, index: Index, alias: str
) -> bool:
    """Backward scans only when some interesting order starts descending
    where the index is ascending (or vice versa)."""
    if not planner.config.order_optimization:
        return False
    reversed_spec = index.order_spec(alias).reversed()
    if reversed_spec.is_empty():
        return False
    head = reversed_spec.head()
    for interesting in planner.interesting_orders:
        if interesting and interesting.head() == head:
            return True
    return False


def _apply_filters(
    planner: PlannerContext,
    node: PlanNode,
    predicates: Sequence[Expression],
    final_rows: float,
) -> PlanNode:
    if not predicates:
        return node
    predicate = predicates[0]
    for extra in predicates[1:]:
        from repro.expr.nodes import BooleanExpr, BooleanOp

        predicate = BooleanExpr(BooleanOp.AND, (predicate, extra))
    properties = propagate_filter(node.properties, predicate, final_rows)
    cost = node.cost + planner.cost_model.filter_rows(
        node.properties.cardinality
    )
    return PlanNode(
        OpKind.FILTER,
        (node,),
        properties,
        cost,
        {"predicate": predicate},
    )


def _table_scan_plan(
    planner: PlannerContext,
    alias: str,
    table: TableSchema,
    predicates: Sequence[Expression],
    filtered_rows: float,
) -> PlanNode:
    properties = base_table_properties(alias, table)
    cost = planner.cost_model.table_scan(
        table.stats.pages, table.stats.row_count
    )
    node = PlanNode(
        OpKind.TABLE_SCAN,
        (),
        properties,
        cost,
        {"table": table.name, "alias": alias},
    )
    return _apply_filters(planner, node, predicates, filtered_rows)


def _index_scan_plan(
    planner: PlannerContext,
    alias: str,
    table: TableSchema,
    index: Index,
    predicates: Sequence[Expression],
    filtered_rows: float,
    descending: bool,
) -> PlanNode:
    bounds = extract_sargable(index, alias, predicates)
    covered_selectivity = 1.0
    for predicate in bounds.covered:
        covered_selectivity *= planner.estimator.selectivity(predicate)
    matched_rows = max(1.0, table.stats.row_count * covered_selectivity)
    tree = planner.database.store(table.name).indexes.get(index.name)
    height = tree[1].height if tree is not None else 2
    cost = planner.cost_model.index_scan(
        table_pages=table.stats.pages,
        table_rows=table.stats.row_count,
        matched_rows=matched_rows,
        tree_height=height,
        clustered=index.clustered,
    )
    properties = base_table_properties(alias, table).with_cardinality(
        matched_rows
    )
    spec = index.order_spec(alias)
    if descending:
        spec = spec.reversed()
    properties = propagate_sort(properties, spec)
    # Fold the covered predicates' facts into the properties (they are
    # enforced by the scan bounds, not by a filter node).
    for predicate in bounds.covered:
        properties = propagate_filter(properties, predicate, matched_rows)
    node = PlanNode(
        OpKind.INDEX_SCAN,
        (),
        properties,
        cost,
        {
            "table": table.name,
            "index": index.name,
            "alias": alias,
            "low": bounds.low,
            "high": bounds.high,
            "low_inclusive": bounds.low_inclusive,
            "high_inclusive": bounds.high_inclusive,
            "descending": descending,
        },
    )
    residual = [
        predicate
        for predicate in predicates
        if predicate not in bounds.covered
    ]
    return _apply_filters(planner, node, residual, filtered_rows)
