"""Bottom-up join enumeration with interesting orders and sort-ahead.

System-R style dynamic programming over quantifier subsets, left-deep
trees, with the paper's twist (Section 5.2): at every level, for each
interesting order hung off the block, the optimizer also tries *sorting
the outer* on that order (homogenized to the columns available so far) —
so a sort for an ORDER BY / GROUP BY can land arbitrarily deep. Two
subplans over the same tables but with different (useful) orders are not
pruned against each other, which is the O(n^2) complexity factor the
paper concedes.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.ordering import OrderSpec
from repro.core.reduce import reduce_order
from repro.errors import OptimizerError
from repro.expr.analysis import columns_of, is_column_equality
from repro.expr.nodes import BooleanExpr, BooleanOp, ColumnRef, Expression
from repro.optimizer.helpers import (
    order_satisfies,
    satisfied_prefix_length,
    sort_columns_for,
)
from repro.optimizer.plan import OpKind, PlanNode
from repro.optimizer.planner import PlannerContext, access_paths
from repro.properties.propagate import propagate_join, propagate_sort

AliasSet = FrozenSet[str]

# Cap on plans kept per DP subset after dominance pruning.
_MAX_PLANS_PER_SUBSET = 12


def _and_all(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return BooleanExpr(BooleanOp.AND, tuple(conjuncts))


def enumerate_joins(planner: PlannerContext) -> List[PlanNode]:
    """Plan the join of every quantifier in the block; returns the
    surviving plans for the full alias set.

    Blocks containing LEFT OUTER JOINs are planned in FROM order (outer
    joins are not freely reorderable); pure inner-join blocks get full
    subset dynamic programming.
    """
    if planner.block.outer_joins:
        return _enumerate_sequential(planner)
    aliases = sorted(planner.block.tables)
    best: Dict[AliasSet, List[PlanNode]] = {}
    for alias in aliases:
        plans = access_paths(planner, alias)
        plans.extend(_sort_ahead_variants(planner, plans))
        best[frozenset((alias,))] = _prune(planner, plans)

    universe = frozenset(aliases)
    for size in range(2, len(aliases) + 1):
        for subset_tuple in combinations(aliases, size):
            subset = frozenset(subset_tuple)
            planner.stats.subsets_expanded += 1
            candidates: List[PlanNode] = []
            for inner_alias in subset:
                outer_set = subset - {inner_alias}
                outer_plans = best.get(outer_set, ())
                if not outer_plans:
                    continue
                if not _connected(planner, outer_set, inner_alias):
                    # Avoid Cartesian products unless the subset has no
                    # connected decomposition at all.
                    if _subset_has_connection(planner, subset):
                        continue
                inner_plans = best[frozenset((inner_alias,))]
                for outer_plan in outer_plans:
                    candidates.extend(
                        _join_methods(
                            planner, outer_plan, inner_alias, inner_plans
                        )
                    )
            if not candidates:
                raise OptimizerError(
                    f"no join candidates for subset {sorted(subset)}"
                )
            candidates.extend(_sort_ahead_variants(planner, candidates))
            best[subset] = _prune(planner, candidates)
    return best[universe]


def _enumerate_sequential(planner: PlannerContext) -> List[PlanNode]:
    """Left-deep planning in FROM order (used when outer joins exist)."""
    aliases = list(planner.block.tables)
    outer_joins = planner.block.outer_joins
    plans = access_paths(planner, aliases[0])
    plans.extend(_sort_ahead_variants(planner, plans))
    plans = _prune(planner, plans)
    for alias in aliases[1:]:
        candidates: List[PlanNode] = []
        if alias in outer_joins:
            for plan in plans:
                candidates.extend(
                    _left_outer_join_methods(
                        planner, plan, alias, outer_joins[alias]
                    )
                )
        else:
            inner_plans = _prune(planner, access_paths(planner, alias))
            for plan in plans:
                candidates.extend(
                    _join_methods(planner, plan, alias, inner_plans)
                )
        if not candidates:
            raise OptimizerError(f"no join candidates adding {alias}")
        candidates.extend(_sort_ahead_variants(planner, candidates))
        plans = _prune(planner, candidates)
        planner.stats.subsets_expanded += 1
    return plans


def _left_outer_join_methods(
    planner: PlannerContext,
    outer_plan: PlanNode,
    inner_alias: str,
    on_predicate: Expression,
) -> List[PlanNode]:
    """LEFT OUTER JOIN methods: nested-loop, hash, and index probes.

    ON conjuncts touching only the inner table filter the inner input
    before matching (ON semantics); cross-side conjuncts decide matches
    and padding.
    """
    from repro.expr.analysis import conjuncts_of
    from repro.optimizer.planner import _apply_filters, _table_scan_plan
    from repro.properties.propagate import (
        base_table_properties,
        propagate_left_outer_join,
    )

    derived = planner.is_derived(inner_alias)
    table = None if derived else planner.table_for(inner_alias)
    on_conjuncts = conjuncts_of(on_predicate)
    inner_only: List[Expression] = []
    cross: List[Expression] = []
    for conjunct in on_conjuncts:
        touched = {c.qualifier for c in columns_of(conjunct)} - {""}
        if touched <= {inner_alias}:
            inner_only.append(conjunct)
        else:
            cross.append(conjunct)

    if derived:
        base_inner_rows = planner.derived_plans[inner_alias][
            0
        ].properties.cardinality
        inner_columns_all = frozenset(
            planner.derived_plans[inner_alias][0].properties.schema.columns
        )
    else:
        base_inner_rows = float(table.stats.row_count)
        inner_columns_all = frozenset(
            ColumnRef(inner_alias, column.name) for column in table.columns
        )
    inner_rows = base_inner_rows
    for conjunct in inner_only:
        inner_rows *= planner.estimator.selectivity(conjunct)
    inner_rows = max(1.0, inner_rows)
    outer_rows = outer_plan.properties.cardinality
    match_selectivity = 1.0
    for conjunct in cross:
        match_selectivity *= planner.estimator.selectivity(conjunct)
    output_rows = max(outer_rows, outer_rows * inner_rows * match_selectivity)

    outer_columns = frozenset(outer_plan.properties.schema.columns)
    pairs = _dedupe_pairs(
        _equi_pairs(cross, outer_columns, inner_columns_all)
    )
    residual = [
        conjunct
        for conjunct in cross
        if conjunct not in {p for _o, _i, p in pairs}
    ]
    results: List[PlanNode] = []

    # --- nested loops over a filtered inner ---
    if derived:
        inner_scan = _apply_filters(
            planner,
            planner.derived_plans[inner_alias][0],
            inner_only,
            inner_rows,
        )
    else:
        inner_scan = _table_scan_plan(
            planner, inner_alias, table, inner_only, inner_rows
        )
    properties = propagate_left_outer_join(
        outer_plan.properties, inner_scan.properties, cross, output_rows
    )
    per_iteration = planner.cost_model.filter_rows(inner_rows)
    cost = (
        outer_plan.cost
        + inner_scan.cost
        + planner.cost_model.nested_loop_join(
            outer_rows, per_iteration, output_rows
        )
    )
    results.append(
        PlanNode(
            OpKind.NLJ,
            (outer_plan, inner_scan),
            properties,
            cost,
            {"predicate": _and_all(cross), "left_outer": True},
        )
    )

    # --- hash left outer join ---
    if pairs and planner.config.enable_hash_join:
        properties = propagate_left_outer_join(
            outer_plan.properties, inner_scan.properties, cross, output_rows
        )
        cost = (
            outer_plan.cost
            + inner_scan.cost
            + planner.cost_model.hash_join(
                inner_rows,
                outer_rows,
                output_rows,
                planner.pages_for(inner_rows),
            )
        )
        results.append(
            PlanNode(
                OpKind.HASH_JOIN,
                (outer_plan, inner_scan),
                properties,
                cost,
                {
                    "outer_keys": [o for o, _i, _p in pairs],
                    "inner_keys": [i for _o, i, _p in pairs],
                    "residual": _and_all(residual),
                    "left_outer": True,
                },
            )
        )

    # --- index-probe left outer join ---
    if pairs and planner.config.enable_index_nlj and not derived:
        store = planner.database.store(table.name)
        for index in planner.database.catalog.indexes_on(table.name):
            if index.name not in store.indexes:
                continue
            probe_pairs = []
            for key_column in index.key:
                target = ColumnRef(inner_alias, key_column.name)
                match = next(
                    (pair for pair in pairs if pair[1] == target), None
                )
                if match is None:
                    break
                probe_pairs.append(match)
            if not probe_pairs:
                continue
            probe_outer = [o for o, _i, _p in probe_pairs]
            covered = {p for _o, _i, p in probe_pairs}
            probe_residual = [
                conjunct for conjunct in cross if conjunct not in covered
            ] + inner_only
            context = outer_plan.properties.context()
            ordered = planner.config.order_optimization and order_satisfies(
                planner.config,
                OrderSpec.of(*probe_outer),
                outer_plan.order,
                context,
            )
            inner_properties = base_table_properties(inner_alias, table)
            properties = propagate_left_outer_join(
                outer_plan.properties, inner_properties, cross, output_rows
            )
            matches = max(
                0.1,
                table.stats.row_count
                * planner.estimator.selectivity(probe_pairs[0][2]),
            )
            cost = outer_plan.cost + planner.cost_model.index_nlj(
                outer_rows=outer_rows,
                matches_per_probe=matches,
                table_pages=table.stats.pages,
                table_rows=table.stats.row_count,
                tree_height=store.indexes[index.name][1].height,
                ordered=ordered,
                clustered=index.clustered,
                output_rows=output_rows,
            )
            results.append(
                PlanNode(
                    OpKind.NLJ_INDEX,
                    (outer_plan,),
                    properties,
                    cost,
                    {
                        "table": table.name,
                        "index": index.name,
                        "alias": inner_alias,
                        "probe_columns": probe_outer,
                        "residual": _and_all(probe_residual),
                        "ordered": ordered,
                        "left_outer": True,
                    },
                )
            )
    planner.stats.plans_generated += len(results)
    return results


def _connected(
    planner: PlannerContext, outer_set: AliasSet, inner_alias: str
) -> bool:
    for predicate in planner.join_predicates:
        touched = {c.qualifier for c in columns_of(predicate)} - {""}
        if inner_alias in touched and touched - {inner_alias} <= outer_set and (
            touched - {inner_alias}
        ):
            return True
    return False


def _subset_has_connection(planner: PlannerContext, subset: AliasSet) -> bool:
    for inner_alias in subset:
        if _connected(planner, subset - {inner_alias}, inner_alias):
            return True
    return False


def _applicable_join_predicates(
    planner: PlannerContext, outer_set: AliasSet, inner_alias: str
) -> List[Expression]:
    """Join conjuncts evaluable once ``inner_alias`` joins ``outer_set``
    that were not evaluable before."""
    subset = outer_set | {inner_alias}
    found = []
    for predicate in planner.join_predicates:
        touched = {c.qualifier for c in columns_of(predicate)} - {""}
        if not touched <= subset:
            continue
        if touched <= outer_set:
            continue  # already applied below
        found.append(predicate)
    return found


def _equi_pairs(
    predicates: Sequence[Expression],
    outer_columns: FrozenSet[ColumnRef],
    inner_columns: FrozenSet[ColumnRef],
) -> List[Tuple[ColumnRef, ColumnRef, Expression]]:
    """(outer column, inner column, predicate) for each equi-conjunct."""
    pairs = []
    for predicate in predicates:
        match = is_column_equality(predicate)
        if match is None:
            continue
        left, right = match
        if left in outer_columns and right in inner_columns:
            pairs.append((left, right, predicate))
        elif right in outer_columns and left in inner_columns:
            pairs.append((right, left, predicate))
    return pairs


def _dedupe_pairs(
    pairs: List[Tuple[ColumnRef, ColumnRef, Expression]],
) -> List[Tuple[ColumnRef, ColumnRef, Expression]]:
    """One equi-pair per distinct outer and inner column.

    Two predicates equating different outer columns to the same inner
    column (a.x = b.x AND c.x = b.x) keep only the first as a join key;
    the other is evaluated as a residual predicate.
    """
    seen_outer: set = set()
    seen_inner: set = set()
    unique = []
    for outer, inner, predicate in pairs:
        if outer in seen_outer or inner in seen_inner:
            continue
        seen_outer.add(outer)
        seen_inner.add(inner)
        unique.append((outer, inner, predicate))
    return unique


def _join_methods(
    planner: PlannerContext,
    outer_plan: PlanNode,
    inner_alias: str,
    inner_plans: Sequence[PlanNode],
) -> List[PlanNode]:
    """Every join method combining ``outer_plan`` with ``inner_alias``."""
    config = planner.config
    outer_set = outer_plan.aliases()
    subset = outer_set | {inner_alias}
    predicates = _applicable_join_predicates(planner, outer_set, inner_alias)
    output_rows = planner.subset_cardinality(subset)
    outer_columns = frozenset(outer_plan.properties.schema.columns)
    results: List[PlanNode] = []

    inner_columns_by_plan = {
        id(plan): frozenset(plan.properties.schema.columns)
        for plan in inner_plans
    }

    for inner_plan in inner_plans:
        inner_columns = inner_columns_by_plan[id(inner_plan)]
        pairs = _dedupe_pairs(
            _equi_pairs(predicates, outer_columns, inner_columns)
        )
        residual = [
            predicate
            for predicate in predicates
            if predicate not in {p for _o, _i, p in pairs}
        ]
        # --- naive nested loops (always legal; also covers Cartesian) ---
        results.append(
            _nested_loop(
                planner, outer_plan, inner_plan, predicates, output_rows
            )
        )
        if pairs:
            if config.enable_hash_join:
                results.append(
                    _hash_join(
                        planner,
                        outer_plan,
                        inner_plan,
                        pairs,
                        residual,
                        output_rows,
                    )
                )
            if config.enable_merge_join:
                results.extend(
                    _merge_joins(
                        planner,
                        outer_plan,
                        inner_plan,
                        pairs,
                        residual,
                        output_rows,
                    )
                )
    if config.enable_index_nlj:
        results.extend(
            _index_nlj_joins(
                planner, outer_plan, inner_alias, predicates, output_rows
            )
        )
    if config.effective("enable_partitioning"):
        from repro.optimizer.parallel import partition_wise_joins

        results.extend(
            partition_wise_joins(
                planner,
                outer_plan,
                inner_plans,
                predicates,
                lambda plan: _dedupe_pairs(
                    _equi_pairs(
                        predicates,
                        outer_columns,
                        inner_columns_by_plan[id(plan)],
                    )
                ),
                output_rows,
            )
        )
    planner.stats.plans_generated += len(results)
    return results


def _nested_loop(
    planner: PlannerContext,
    outer_plan: PlanNode,
    inner_plan: PlanNode,
    predicates: Sequence[Expression],
    output_rows: float,
) -> PlanNode:
    properties = propagate_join(
        outer_plan.properties,
        inner_plan.properties,
        predicates,
        output_rows,
        preserves_outer_order=True,
    )
    inner_rows = inner_plan.properties.cardinality
    # Inner is materialized once; per outer row we pay CPU over it.
    per_iteration = planner.cost_model.filter_rows(inner_rows)
    cost = (
        outer_plan.cost
        + inner_plan.cost
        + planner.cost_model.nested_loop_join(
            outer_plan.properties.cardinality, per_iteration, output_rows
        )
    )
    return PlanNode(
        OpKind.NLJ,
        (outer_plan, inner_plan),
        properties,
        cost,
        {"predicate": _and_all(list(predicates))},
    )


def _hash_join(
    planner: PlannerContext,
    outer_plan: PlanNode,
    inner_plan: PlanNode,
    pairs: Sequence[Tuple[ColumnRef, ColumnRef, Expression]],
    residual: Sequence[Expression],
    output_rows: float,
) -> PlanNode:
    predicates = [predicate for _o, _i, predicate in pairs] + list(residual)
    properties = propagate_join(
        outer_plan.properties,
        inner_plan.properties,
        predicates,
        output_rows,
        preserves_outer_order=True,  # probe side streams in order
    )
    build_rows = inner_plan.properties.cardinality
    cost = (
        outer_plan.cost
        + inner_plan.cost
        + planner.cost_model.hash_join(
            build_rows,
            outer_plan.properties.cardinality,
            output_rows,
            planner.pages_for(build_rows),
        )
    )
    return PlanNode(
        OpKind.HASH_JOIN,
        (outer_plan, inner_plan),
        properties,
        cost,
        {
            "outer_keys": [o for o, _i, _p in pairs],
            "inner_keys": [i for _o, i, _p in pairs],
            "residual": _and_all(list(residual)),
        },
    )


def _merge_joins(
    planner: PlannerContext,
    outer_plan: PlanNode,
    inner_plan: PlanNode,
    pairs: Sequence[Tuple[ColumnRef, ColumnRef, Expression]],
    residual: Sequence[Expression],
    output_rows: float,
) -> List[PlanNode]:
    """Merge join, inserting sorts on either side when needed.

    §5.2: when an interesting order is pushed to the outer of a merge
    join, "a cover with the merge-join order is also required" — so when
    the outer needs a sort anyway, we also try sorting it on the *cover*
    of the join order and each pending interesting order: the same sort
    then feeds both the merge join and the downstream consumer.
    """
    config = planner.config
    predicates = [predicate for _o, _i, predicate in pairs] + list(residual)

    # Equi-pairs are an unordered set; any key sequence yields a valid
    # merge join. Shared sort segments: also try the sequence that leads
    # with the outer's delivered order, so the outer's enforcement sort
    # degrades to a partial sort reusing the earlier sort's prefix.
    sequences = [list(pairs)]
    if config.effective("enable_partial_sort"):
        aligned = _segment_aligned_pairs(outer_plan, pairs)
        if aligned is not None:
            sequences.append(aligned)

    results: List[PlanNode] = []
    for sequence in sequences:
        outer_keys = [o for o, _i, _p in sequence]
        inner_keys = [i for _o, i, _p in sequence]
        outer_required = OrderSpec.of(*outer_keys)
        inner_required = OrderSpec.of(*inner_keys)

        sorted_inner = _ensure_order(
            planner, inner_plan, inner_required, "merge-join"
        )
        if sorted_inner is None:
            continue
        outer_variants: List[PlanNode] = []
        primary = _ensure_order(
            planner, outer_plan, outer_required, "merge-join"
        )
        if primary is not None:
            outer_variants.append(primary)
        if (
            config.effective("enable_cover")
            and primary is not None
            and primary is not outer_plan  # a sort was needed anyway
        ):
            outer_variants.extend(
                _covered_merge_sorts(planner, outer_plan, outer_required)
            )

        for sorted_outer in outer_variants:
            properties = propagate_join(
                sorted_outer.properties,
                sorted_inner.properties,
                predicates,
                output_rows,
                preserves_outer_order=True,
            )
            cost = (
                sorted_outer.cost
                + sorted_inner.cost
                + planner.cost_model.merge_join(
                    sorted_outer.properties.cardinality,
                    sorted_inner.properties.cardinality,
                    output_rows,
                )
            )
            results.append(
                PlanNode(
                    OpKind.MERGE_JOIN,
                    (sorted_outer, sorted_inner),
                    properties,
                    cost,
                    {
                        "outer_keys": outer_keys,
                        "inner_keys": inner_keys,
                        "residual": _and_all(list(residual)),
                    },
                )
            )
    return results


def _segment_aligned_pairs(
    outer_plan: PlanNode,
    pairs: Sequence[Tuple[ColumnRef, ColumnRef, Expression]],
) -> Optional[List[Tuple[ColumnRef, ColumnRef, Expression]]]:
    """Reorder equi-pairs so the outer's delivered order leads.

    Walks the outer's order property, pulling forward each pair whose
    outer column matches the next delivered key; remaining pairs keep
    their original relative order. Returns None when the walk changes
    nothing (first delivered key matches no pair, or the order is
    already aligned).
    """
    by_outer = {}
    for pair in pairs:
        by_outer.setdefault(pair[0], pair)
    leading: List[Tuple[ColumnRef, ColumnRef, Expression]] = []
    used = set()
    for key in outer_plan.order:
        pair = by_outer.get(key.column)
        if pair is None or id(pair) in used:
            break
        leading.append(pair)
        used.add(id(pair))
    if not leading:
        return None
    aligned = leading + [pair for pair in pairs if id(pair) not in used]
    if aligned == list(pairs):
        return None
    return aligned


def _covered_merge_sorts(
    planner: PlannerContext,
    outer_plan: PlanNode,
    outer_required: OrderSpec,
) -> List[PlanNode]:
    """Sorts on covers of the merge-join order with interesting orders."""
    from repro.core.cover import cover_order

    context = outer_plan.properties.context()
    available = frozenset(outer_plan.properties.schema.columns)
    variants: List[PlanNode] = []
    seen = {outer_required}
    for homogenized in planner.homogenized_interesting(available)[:2]:
        if homogenized is None or homogenized.is_empty():
            continue
        cover = cover_order(outer_required, homogenized, context)
        if cover is None or cover in seen:
            continue
        if not cover.subset_columns(available):
            continue
        seen.add(cover)
        variants.append(
            make_sort(planner, outer_plan, cover, "merge-join cover")
        )
    return variants


def _ensure_order(
    planner: PlannerContext,
    plan: PlanNode,
    required: OrderSpec,
    reason: str,
) -> Optional[PlanNode]:
    """``plan`` if its order satisfies ``required``, else a sort on top."""
    if required.is_empty():
        return plan
    context = plan.properties.context()
    if order_satisfies(planner.config, required, plan.order, context):
        return plan
    target = sort_columns_for(planner.config, required, context)
    if target.is_empty():
        return plan
    if not target.subset_columns(plan.properties.schema.columns):
        return None
    return make_sort(planner, plan, target, reason)


def make_sort(
    planner: PlannerContext,
    plan: PlanNode,
    order: OrderSpec,
    reason: str,
) -> PlanNode:
    """Enforce ``order`` on ``plan`` — the single sort construction site.

    With ``enable_partial_sort`` on, a delivered order satisfying a
    proper prefix of the target turns the enforcement into a segmented
    partial sort: only the suffix keys are sorted, one prefix-group at
    a time.
    """
    properties = propagate_sort(plan.properties, order)
    rows = plan.properties.cardinality
    if planner.config.effective("enable_partial_sort"):
        prefix_length = satisfied_prefix_length(
            planner.config, order, plan.order, plan.properties.context()
        )
        if prefix_length:
            groups = _distinct_prefix_groups(
                planner, order.prefix(prefix_length), rows
            )
            cost = plan.cost + planner.cost_model.partial_sort(
                rows,
                groups,
                len(order) - prefix_length,
                planner.pages_for(rows),
            )
            return PlanNode(
                OpKind.PARTIAL_SORT,
                (plan,),
                properties,
                cost,
                {
                    "order": order,
                    "prefix": prefix_length,
                    "groups": groups,
                    "reason": reason,
                },
            )
    cost = plan.cost + planner.cost_model.sort(
        rows, len(order), planner.pages_for(rows)
    )
    return PlanNode(
        OpKind.SORT,
        (plan,),
        properties,
        cost,
        {"order": order, "reason": reason},
    )


def _distinct_prefix_groups(
    planner: PlannerContext, prefix: OrderSpec, rows: float
) -> float:
    """Estimated distinct prefix-value count.

    Prefers the joint NDV from the table's row sample: correlated
    prefixes (``(year(d), d)``-style, or region/nation pairs) have far
    fewer real combinations than the per-column NDV product claims,
    and overestimating groups makes partial sort look too cheap. The
    product (capped by row count) remains the fallback when the prefix
    spans tables or no sample exists.
    """
    joint = planner.stats_view.joint_ndv([key.column for key in prefix])
    if joint is not None:
        return max(1.0, min(joint, max(1.0, rows)))
    groups = 1.0
    for key in prefix:
        stats = planner.stats_view.column_stats(key.column)
        groups *= float(stats.ndv) if stats is not None else 10.0
    return max(1.0, min(groups, max(1.0, rows)))


def _index_nlj_joins(
    planner: PlannerContext,
    outer_plan: PlanNode,
    inner_alias: str,
    predicates: Sequence[Expression],
    output_rows: float,
) -> List[PlanNode]:
    """Nested-loop joins probing an index of the inner table."""
    if planner.is_derived(inner_alias):
        return []  # derived tables have no indexes to probe
    table = planner.table_for(inner_alias)
    outer_columns = frozenset(outer_plan.properties.schema.columns)
    inner_base = frozenset(
        ColumnRef(inner_alias, column.name) for column in table.columns
    )
    pairs = _equi_pairs(predicates, outer_columns, inner_base)
    if not pairs:
        return []
    store = planner.database.store(table.name)
    results: List[PlanNode] = []
    for index in planner.database.catalog.indexes_on(table.name):
        if index.name not in store.indexes:
            continue
        probe_pairs = []
        for key_column in index.key:
            target = ColumnRef(inner_alias, key_column.name)
            match = next(
                (pair for pair in pairs if pair[1] == target), None
            )
            if match is None:
                break
            probe_pairs.append(match)
        if not probe_pairs:
            continue
        probe_outer = [o for o, _i, _p in probe_pairs]
        covered = {p for _o, _i, p in probe_pairs}
        residual = [
            predicate for predicate in predicates if predicate not in covered
        ]
        local = planner.local_predicates.get(inner_alias, [])
        residual_all = residual + list(local)

        # Detecting that the probe stream arrives in index order IS order
        # optimization (Section 8.1: the disabled optimizer "was unable
        # to determine that the same sort could be used to generate an
        # ordered nested-loop join"), so the disabled build never plans
        # ordered probes and prices every probe as random I/O.
        context = outer_plan.properties.context()
        ordered = planner.config.order_optimization and order_satisfies(
            planner.config,
            OrderSpec.of(*probe_outer),
            outer_plan.order,
            context,
        )
        from repro.properties.propagate import base_table_properties

        inner_properties = base_table_properties(inner_alias, table)
        join_predicates = [p for _o, _i, p in probe_pairs] + residual_all
        properties = propagate_join(
            outer_plan.properties,
            inner_properties,
            join_predicates,
            output_rows,
            preserves_outer_order=True,
        )
        outer_rows = outer_plan.properties.cardinality
        matches = max(
            0.1,
            table.stats.row_count
            * planner.estimator.selectivity(probe_pairs[0][2]),
        )
        tree_height = store.indexes[index.name][1].height
        cost = outer_plan.cost + planner.cost_model.index_nlj(
            outer_rows=outer_rows,
            matches_per_probe=matches,
            table_pages=table.stats.pages,
            table_rows=table.stats.row_count,
            tree_height=tree_height,
            ordered=ordered,
            clustered=index.clustered,
            output_rows=output_rows,
        )
        results.append(
            PlanNode(
                OpKind.NLJ_INDEX,
                (outer_plan,),
                properties,
                cost,
                {
                    "table": table.name,
                    "index": index.name,
                    "alias": inner_alias,
                    "probe_columns": probe_outer,
                    "residual": _and_all(residual_all),
                    "ordered": ordered,
                },
            )
        )
    return results


def _sort_ahead_variants(
    planner: PlannerContext, plans: Sequence[PlanNode]
) -> List[PlanNode]:
    """Sorted variants of the cheapest plans for each interesting order.

    This is sort-ahead (Section 5.1/5.2): each interesting order hung off
    the block is homogenized to the columns available at this level; a
    sort enforcing it is tried on the cheapest subplan.
    """
    config = planner.config
    if not config.effective("enable_sort_ahead"):
        return []
    if not plans:
        return []
    cheapest = min(plans, key=lambda plan: plan.cost.total_ms)
    variants: List[PlanNode] = []
    available = frozenset(cheapest.properties.schema.columns)
    context = cheapest.properties.context()
    homogenized_orders = planner.homogenized_interesting(available)
    for homogenized in homogenized_orders[: config.max_sort_ahead_orders]:
        if homogenized is None or homogenized.is_empty():
            continue
        target = reduce_order(homogenized, context)
        if target.is_empty():
            continue
        if order_satisfies(config, target, cheapest.order, context):
            continue
        variants.append(make_sort(planner, cheapest, target, "sort-ahead"))
    planner.stats.sort_ahead_plans += len(variants)
    return variants


def _prune(planner: PlannerContext, plans: List[PlanNode]) -> List[PlanNode]:
    """Dominance pruning: drop a plan if a cheaper (or equal) plan's order
    property satisfies its order property. Keep at most a bounded number
    of survivors, cheapest first."""
    config = planner.config
    survivors: List[PlanNode] = []
    for plan in sorted(plans, key=lambda p: p.cost.total_ms):
        context = plan.properties.context()
        dominated = False
        for kept in survivors:
            if kept.cost.total_ms <= plan.cost.total_ms and order_satisfies(
                config, plan.order, kept.order, context
            ):
                dominated = True
                break
        if dominated:
            planner.stats.plans_pruned += 1
            continue
        survivors.append(plan)
        if len(survivors) >= _MAX_PLANS_PER_SUBSET:
            break
    return survivors
