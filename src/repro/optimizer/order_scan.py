"""The order scan (Section 5.1): generate interesting orders top-down.

Before cost-based planning, interesting orders arising from ORDER BY,
GROUP BY, and DISTINCT are pushed down to the join box, homogenized and
covered along the way, to become sort-ahead candidates. The scan is
*optimistic*: it assumes every predicate below a box has been applied
(so all equivalence classes and key FDs are usable), and when full
homogenization fails it keeps the largest homogenizable prefix hoping an
FD discovered during planning makes the suffix redundant.
"""

from __future__ import annotations

from typing import List

from repro.core.general import GeneralOrderSpec
from repro.core.homogenize import homogenize_prefix
from repro.core.ordering import OrderSpec
from repro.core.reduce import reduce_order
from repro.expr.nodes import ColumnRef
from repro.optimizer.planner import PlannerContext


def run_order_scan(planner: PlannerContext) -> List[OrderSpec]:
    """Interesting (sort-ahead) orders for the block's join box."""
    if not planner.config.effective("enable_sort_ahead"):
        return []
    block = planner.block
    optimistic = planner.optimistic
    collected = []
    for alias, table_name in block.tables.items():
        if block.is_derived(alias):
            collected.extend(
                planner.derived_plans[alias][0].properties.schema.columns
            )
        else:
            collected.extend(
                ColumnRef(alias, name)
                for name in planner.database.catalog.table(
                    table_name
                ).column_names
            )
    # Frozen once: homogenization memo keys include the target column
    # set, so every push below probes the same table.
    base_columns = frozenset(collected)
    candidates: List[OrderSpec] = []

    def push(specification: OrderSpec) -> None:
        """Homogenize to base columns, reduce, and collect."""
        if specification.is_empty():
            return
        pushed = homogenize_prefix(specification, base_columns, optimistic)
        if pushed.is_empty():
            return
        reduced = reduce_order(pushed, optimistic)
        if not reduced.is_empty() and reduced not in candidates:
            candidates.append(reduced)

    if block.has_group_by() and block.group_columns:
        general = GeneralOrderSpec.from_group_by(block.group_columns)
        if planner.config.effective("enable_cover") and not block.order_by.is_empty():
            aligned = general.aligned_with(block.order_by, optimistic)
            if aligned is not None:
                push(aligned)
        push(general.concrete(optimistic))
    if block.distinct:
        outputs = [
            item.output
            for item in block.select_items
            if item.output.qualifier  # base columns only
        ]
        if outputs:
            general = GeneralOrderSpec.from_distinct(outputs)
            if planner.config.effective("enable_cover") and not block.order_by.is_empty():
                aligned = general.aligned_with(block.order_by, optimistic)
                if aligned is not None:
                    push(aligned)
            push(general.concrete(optimistic, hint=block.order_by))
    if not block.has_group_by() and not block.order_by.is_empty():
        push(block.order_by)

    # Stage 3 of the scan (§5.1): interesting orders for merge joins —
    # each equi-join column is a candidate; reduction collapses the two
    # sides of a class onto one head.
    from repro.expr.analysis import is_column_equality

    for predicate in planner.join_predicates:
        pair = is_column_equality(predicate)
        if pair is not None:
            push(OrderSpec.of(pair[0]))

    return candidates[: planner.config.max_sort_ahead_orders]
