"""Partition-parallel planning: pruned scans, exchanges, partition-wise
joins and group-bys.

Everything here is gated by ``OptimizerConfig.enable_partitioning``
(itself behind the master switch): with the feature off, a partitioned
table is planned as one sequential stream and none of these plan shapes
exist.

Two modeling decisions shape the plans:

* Per-partition B-trees are **local** indexes. A globally ordered index
  scan over a partitioned table is inherently a k-way merge of the
  per-partition cursors — an exchange capability — so the sequential
  planner does not offer whole-table index scans on partitioned tables
  at all (point probes through ``PartitionedTree.probe`` still work for
  index nested loops). With partitioning enabled, the merge-exchange
  access path below supplies the ordered scan; without it, the planner
  scans and, if order is needed, sorts — which is exactly the
  asymmetry the paper's machinery should observe.

* A parallel subtree is always capped by an exchange before it meets a
  classic operator, so the DP enumeration only ever sees singleton
  streams at the root of each candidate; partition-wise joins peel a
  gather exchange open again and zip its children instead of joining
  the gathered stream.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.catalog import Index, TableSchema
from repro.catalog.partition import RANGE, PartitionSpec
from repro.core.ordering import OrderSpec
from repro.cost.model import Cost
from repro.expr.nodes import ColumnRef, Expression, Parameter
from repro.expr.schema import RowSchema
from repro.optimizer.plan import OpKind, PlanNode
from repro.optimizer.planner import (
    PlannerContext,
    _apply_filters,
    _find_equality,
    _find_range,
    extract_sargable,
)
from repro.properties.partitioning import (
    HASH_KIND,
    SINGLETON,
    PartitioningProperty,
    hash_partitioning,
    range_partitioning,
)
from repro.properties.propagate import (
    base_table_properties,
    propagate_filter,
    propagate_group_by,
    propagate_join,
    propagate_sort,
)


def partition_property(spec: PartitionSpec, alias: str) -> PartitioningProperty:
    """The stream property a partitioned table's parallel scan delivers."""
    columns = tuple(ColumnRef(alias, name) for name in spec.columns)
    if spec.kind == RANGE:
        return range_partitioning(columns, spec.partition_count)
    return hash_partitioning(columns, spec.partition_count)


# ----------------------------------------------------------------------
# Partition pruning
# ----------------------------------------------------------------------


def pruned_partitions(
    spec: PartitionSpec, alias: str, predicates: Sequence[Expression]
) -> Optional[Tuple[int, ...]]:
    """Partitions that can hold qualifying rows, or None when the
    predicates say nothing about the partition key.

    Host variables (``Parameter``) never prune: the plan is cached and
    re-bound, so pruning may only use values fixed at plan time.
    """
    values = []
    for name in spec.columns:
        value, predicate = _find_equality(
            ColumnRef(alias, name), predicates
        )
        if predicate is None or isinstance(value, Parameter):
            break
        values.append(value)
    else:
        return spec.prune_equal(values)
    if spec.kind == RANGE:
        low, high, _low_inc, high_inc, covered = _find_range(
            ColumnRef(alias, spec.columns[0]), predicates
        )
        if isinstance(low, Parameter):
            low = None
        if isinstance(high, Parameter):
            high = None
        if covered and (low is not None or high is not None):
            return spec.prune_range(low, high, high_inclusive=high_inc)
    return None


# ----------------------------------------------------------------------
# Access paths
# ----------------------------------------------------------------------


def partitioned_access_paths(
    planner: PlannerContext, alias: str, table: TableSchema
) -> List[PlanNode]:
    """Parallel and pruned access paths for one partitioned quantifier.

    Three families:

    * a **pruned sequential scan** (``PARTITION_SCAN``) when the local
      predicates pin the partition key — charges exactly the pages of
      the surviving partitions;
    * a **gather exchange** over per-partition scans (filters pushed
      below the exchange, so the workers do the filtering);
    * a **merge exchange** over per-partition local-index scans for
      every index: each partition delivers the index order, the merge
      preserves it globally — an ordered stream with zero sorts.
    """
    spec = table.partitioning
    config = planner.config
    if spec is None or not config.effective("enable_partitioning"):
        return []
    predicates = planner.local_predicates.get(alias, [])
    filtered_rows = planner.base_cardinality(alias)
    count = spec.partition_count
    heap = planner.database.store(table.name).heap
    plans: List[PlanNode] = []

    pruned = pruned_partitions(spec, alias, predicates)
    if pruned is not None and len(pruned) < count:
        plans.append(
            _pruned_scan_plan(
                planner, alias, table, predicates, filtered_rows, pruned, heap
            )
        )

    # Range specs prune the parallel paths too: an exchange over the
    # surviving partitions only. Hash gathers must keep every partition
    # in position — partition-wise joins zip their children index-for-
    # index against repartitioned inner buckets.
    if spec.kind == RANGE and pruned is not None:
        parts: Tuple[int, ...] = pruned
    else:
        parts = tuple(range(count))
    if not parts:
        return plans

    # An exchange needs >= 2 streams. With one surviving partition the
    # pruned sequential scan (already appended) covers unordered access,
    # and the index family below degenerates to a plain local-index
    # scan over that partition — no exchange wrapper.
    if len(parts) > 1:
        plans.append(
            _gather_scan_plan(
                planner, alias, table, spec, predicates, filtered_rows,
                heap, parts,
            )
        )

    for index in planner.database.catalog.indexes_on(table.name):
        for descending in (False, True):
            if descending and not _descending_merge_useful(
                planner, index, alias
            ):
                continue
            plans.append(
                _merge_index_plan(
                    planner,
                    alias,
                    table,
                    spec,
                    index,
                    predicates,
                    filtered_rows,
                    descending,
                    parts,
                )
            )
    return plans


def _descending_merge_useful(
    planner: PlannerContext, index: Index, alias: str
) -> bool:
    reversed_spec = index.order_spec(alias).reversed()
    if reversed_spec.is_empty():
        return False
    head = reversed_spec.head()
    return any(
        interesting and interesting.head() == head
        for interesting in planner.interesting_orders
    )


def _pruned_scan_plan(
    planner: PlannerContext,
    alias: str,
    table: TableSchema,
    predicates: Sequence[Expression],
    filtered_rows: float,
    pruned: Tuple[int, ...],
    heap,
) -> PlanNode:
    pages = sum(heap.partition_page_count(p) for p in pruned)
    scanned_rows = float(
        sum(heap.partition(p).row_count for p in pruned)
    )
    properties = base_table_properties(alias, table).with_cardinality(
        max(1.0, scanned_rows)
    )
    cost = planner.cost_model.table_scan(pages, scanned_rows)
    node = PlanNode(
        OpKind.PARTITION_SCAN,
        (),
        properties,
        cost,
        {"table": table.name, "alias": alias, "partitions": tuple(pruned)},
    )
    # Pruning only skips partitions that cannot match — every local
    # predicate still applies to the rows that remain.
    final = max(1.0, min(filtered_rows, scanned_rows or 1.0))
    return _apply_filters(planner, node, predicates, final)


def _partition_child(
    planner: PlannerContext,
    alias: str,
    table: TableSchema,
    spec: PartitionSpec,
    predicates: Sequence[Expression],
    filtered_rows: float,
    partition: int,
    heap,
    share: int,
) -> PlanNode:
    """One partition's scan + filters, as a parallel-subtree leaf.

    ``share`` is how many partitions survive pruning — the filtered
    cardinality splits across those, not the full partition count.
    """
    pages = heap.partition_page_count(partition)
    rows = float(heap.partition(partition).row_count)
    properties = (
        base_table_properties(alias, table)
        .with_cardinality(max(1.0, rows))
        .with_partitioning(partition_property(spec, alias))
    )
    cost = planner.cost_model.table_scan(pages, rows)
    node = PlanNode(
        OpKind.PARTITION_SCAN,
        (),
        properties,
        cost,
        {"table": table.name, "alias": alias, "partitions": (partition,)},
    )
    return _apply_filters(
        planner, node, predicates, max(1.0, filtered_rows / share)
    )


def _gather_scan_plan(
    planner: PlannerContext,
    alias: str,
    table: TableSchema,
    spec: PartitionSpec,
    predicates: Sequence[Expression],
    filtered_rows: float,
    heap,
    parts: Tuple[int, ...],
) -> PlanNode:
    children = tuple(
        _partition_child(
            planner, alias, table, spec, predicates, filtered_rows, p, heap,
            len(parts),
        )
        for p in parts
    )
    return gather_plan(planner, children, filtered_rows)


def _merge_index_plan(
    planner: PlannerContext,
    alias: str,
    table: TableSchema,
    spec: PartitionSpec,
    index: Index,
    predicates: Sequence[Expression],
    filtered_rows: float,
    descending: bool,
    parts: Tuple[int, ...],
) -> PlanNode:
    """Merge exchange over the surviving partitions' local-index scans."""
    count = spec.partition_count
    share = len(parts)
    bounds = extract_sargable(index, alias, predicates)
    covered_selectivity = 1.0
    for predicate in bounds.covered:
        covered_selectivity *= planner.estimator.selectivity(predicate)
    matched_rows = max(
        1.0, table.stats.row_count * covered_selectivity
    )
    tree = planner.database.store(table.name).indexes.get(index.name)
    height = tree[1].height if tree is not None else 2
    order = index.order_spec(alias)
    if descending:
        order = order.reversed()
    residual = [
        predicate
        for predicate in predicates
        if predicate not in bounds.covered
    ]

    children = []
    for partition in parts:
        properties = base_table_properties(alias, table).with_cardinality(
            max(1.0, matched_rows / share)
        )
        if share > 1:
            properties = properties.with_partitioning(
                partition_property(spec, alias)
            )
        properties = propagate_sort(properties, order)
        for predicate in bounds.covered:
            properties = propagate_filter(
                properties, predicate, max(1.0, matched_rows / share)
            )
        cost = planner.cost_model.index_scan(
            # Pages per partition stay 1/count of the table — pruning
            # shrinks how many partitions are read, not their size —
            # while the surviving matches split across the pruned set.
            table_pages=max(1, table.stats.pages // count),
            table_rows=table.stats.row_count / count,
            matched_rows=matched_rows / share,
            tree_height=height,
            clustered=index.clustered,
        )
        node = PlanNode(
            OpKind.INDEX_SCAN,
            (),
            properties,
            cost,
            {
                "table": table.name,
                "index": index.name,
                "alias": alias,
                "low": bounds.low,
                "high": bounds.high,
                "low_inclusive": bounds.low_inclusive,
                "high_inclusive": bounds.high_inclusive,
                "descending": descending,
                "partition": partition,
            },
        )
        children.append(
            _apply_filters(
                planner, node, residual, max(1.0, filtered_rows / share)
            )
        )
    if share == 1:
        # Pruned to one partition: its local-index scan already delivers
        # the order on a singleton stream; a one-way merge is illegal.
        return children[0]
    return merge_plan(planner, tuple(children), filtered_rows, order)


# ----------------------------------------------------------------------
# Exchange construction
# ----------------------------------------------------------------------


def _subtree_cost(children: Sequence[PlanNode]) -> Cost:
    total = Cost(0.0, 0.0)
    for child in children:
        total = total + child.cost
    return total


def gather_plan(
    planner: PlannerContext,
    children: Tuple[PlanNode, ...],
    total_rows: float,
) -> PlanNode:
    """Cap a parallel subtree with an unordered gather exchange."""
    count = len(children)
    template = children[0].properties
    properties = (
        template.with_partitioning(SINGLETON)
        .with_cardinality(total_rows)
        .with_order(OrderSpec())
    )
    cost = planner.cost_model.parallel_input(
        _subtree_cost(children), count
    ) + planner.cost_model.exchange_gather(total_rows, count)
    return PlanNode(
        OpKind.GATHER_EXCHANGE, children, properties, cost, {}
    )


def merge_plan(
    planner: PlannerContext,
    children: Tuple[PlanNode, ...],
    total_rows: float,
    order: OrderSpec,
) -> PlanNode:
    """Cap a parallel subtree with an order-preserving merge exchange.

    Every child must already deliver ``order``; the merge interleaves
    without disturbing it, so the gathered stream keeps the order
    property — no sort, which is the point.
    """
    count = len(children)
    template = children[0].properties
    properties = template.with_partitioning(SINGLETON).with_cardinality(
        total_rows
    )
    cost = planner.cost_model.parallel_input(
        _subtree_cost(children), count
    ) + planner.cost_model.exchange_merge(total_rows, count)
    return PlanNode(
        OpKind.MERGE_EXCHANGE,
        children,
        properties,
        cost,
        {"order": order},
    )


# ----------------------------------------------------------------------
# Partition-wise joins
# ----------------------------------------------------------------------


def partition_wise_joins(
    planner: PlannerContext,
    outer_plan: PlanNode,
    inner_plans: Sequence[PlanNode],
    predicates: Sequence[Expression],
    pairs_of,
    output_rows: float,
) -> List[PlanNode]:
    """Hash joins executed partition by partition under a gather.

    Requires the outer to be gather-rooted with hash-partitioned
    children whose partition columns are all join keys. The inner side
    either arrives co-partitioned (a gather whose children carry the
    same hash partitioning over the matching join columns — zip the
    children, no data movement) or is a singleton stream repartitioned
    through ``PARTITION_SPLIT`` buckets sharing one child.

    ``pairs_of(inner_plan)`` supplies the deduped equi-pairs for one
    inner candidate (computed by the enumeration, which already has
    them).
    """
    config = planner.config
    if not config.effective("enable_partitioning"):
        return []
    if not config.enable_hash_join:
        return []
    if outer_plan.kind is not OpKind.GATHER_EXCHANGE:
        return []
    outer_children = outer_plan.children
    partitioning = outer_children[0].properties.partitioning
    if partitioning.kind != HASH_KIND:
        return []
    count = partitioning.count

    results: List[PlanNode] = []
    for inner_plan in inner_plans:
        pairs = pairs_of(inner_plan)
        if not pairs:
            continue
        by_outer = {o: i for o, i, _p in pairs}
        split_columns: List[ColumnRef] = []
        for column in partitioning.columns:
            inner_column = by_outer.get(column)
            if inner_column is None:
                break
            split_columns.append(inner_column)
        if len(split_columns) != len(partitioning.columns):
            continue
        residual = [
            predicate
            for predicate in predicates
            if predicate not in {p for _o, _i, p in pairs}
        ]
        join_predicates = [p for _o, _i, p in pairs] + residual

        inner_children, extra_cost = _partitioned_inner(
            planner, inner_plan, split_columns, count
        )
        if inner_children is None:
            continue

        per_partition = max(1.0, output_rows / count)
        join_nodes = []
        for outer_child, inner_child in zip(outer_children, inner_children):
            properties = propagate_join(
                outer_child.properties,
                inner_child.properties,
                join_predicates,
                per_partition,
                preserves_outer_order=True,
            )
            build_rows = inner_child.properties.cardinality
            method = planner.cost_model.hash_join(
                build_rows,
                outer_child.properties.cardinality,
                per_partition,
                planner.pages_for(build_rows),
            )
            join_nodes.append(
                PlanNode(
                    OpKind.HASH_JOIN,
                    (outer_child, inner_child),
                    properties,
                    outer_child.cost + method,
                    {
                        "outer_keys": [o for o, _i, _p in pairs],
                        "inner_keys": [i for _o, i, _p in pairs],
                        "residual": _and_all(residual),
                    },
                )
            )
        # Explicit total: outer children + per-partition join work run
        # on the pool; the inner side's cost is added exactly once
        # (zip case: via the join nodes' inputs; split case: serially,
        # because the shared child executes once under a lock).
        parallel_work = _subtree_cost(join_nodes)
        if extra_cost is None:
            total = planner.cost_model.parallel_input(parallel_work, count)
        else:
            total = (
                planner.cost_model.parallel_input(parallel_work, count)
                + extra_cost
            )
        total = total + planner.cost_model.exchange_gather(
            output_rows, count
        )
        template = join_nodes[0].properties
        properties = (
            template.with_partitioning(SINGLETON)
            .with_cardinality(output_rows)
            .with_order(OrderSpec())
        )
        results.append(
            PlanNode(
                OpKind.GATHER_EXCHANGE,
                tuple(join_nodes),
                properties,
                total,
                {},
            )
        )
    planner.stats.plans_generated += len(results)
    return results


def _partitioned_inner(
    planner: PlannerContext,
    inner_plan: PlanNode,
    split_columns: Sequence[ColumnRef],
    count: int,
) -> Tuple[Optional[Sequence[PlanNode]], Optional[Cost]]:
    """The inner side as ``count`` co-located per-partition streams.

    Returns ``(children, serial_cost)``: ``serial_cost`` is None when
    the children's own costs already account for everything (the
    co-partitioned zip), or the one-time cost of the shared split child
    plus the repartition itself.
    """
    if inner_plan.kind is OpKind.GATHER_EXCHANGE:
        children = inner_plan.children
        inner_part = children[0].properties.partitioning
        if (
            inner_part.kind == HASH_KIND
            and inner_part.count == count
            and tuple(inner_part.columns) == tuple(split_columns)
        ):
            return children, None
        return None, None
    if inner_plan.properties.partitioning.is_parallel:
        return None, None
    rows = inner_plan.properties.cardinality
    available = frozenset(inner_plan.properties.schema.columns)
    if not set(split_columns) <= available:
        return None, None
    split_cost = planner.cost_model.repartition(rows, count)
    per_bucket = max(1.0, rows / count)
    splits = []
    for index in range(count):
        # A bucket is a subsequence of the child's rows: cardinality
        # shrinks, order survives, and the stream is now hash-placed on
        # the split columns.
        properties = inner_plan.properties.with_cardinality(
            per_bucket
        ).with_partitioning(hash_partitioning(tuple(split_columns), count))
        splits.append(
            PlanNode(
                OpKind.PARTITION_SPLIT,
                (inner_plan,),
                properties,
                # Display-only: the real accounting happens at the
                # gather, where the shared child is charged once.
                split_cost,
                {
                    "index": index,
                    "columns": tuple(split_columns),
                    "count": count,
                },
            )
        )
    return splits, inner_plan.cost + split_cost


# ----------------------------------------------------------------------
# Partition-wise GROUP BY
# ----------------------------------------------------------------------


def partitioned_group_by(
    planner: PlannerContext,
    plan: PlanNode,
    output_schema: RowSchema,
    aggregate_columns: Sequence[ColumnRef],
    output_rows: float,
) -> Optional[PlanNode]:
    """Push a hash GROUP BY below a gather exchange.

    Sound only when the children's partitioning co-locates the grouping
    columns (Test Partitioning): every group then lives wholly inside
    one partition, so per-partition aggregation is complete — no
    combine stage — and the gather concatenates disjoint group sets.
    """
    block = planner.block
    config = planner.config
    if not config.effective("enable_partitioning"):
        return None
    if not config.enable_hash_group_by:
        return None
    if plan.kind is not OpKind.GATHER_EXCHANGE:
        return None
    if not block.group_columns:
        return None
    children = plan.children
    first = children[0].properties
    if not first.partitioning.colocates(
        block.group_columns, first.context()
    ):
        return None
    count = len(children)
    per_partition = max(1.0, output_rows / count)
    grouped = []
    for child in children:
        properties = propagate_group_by(
            child.properties,
            block.group_columns,
            output_schema,
            aggregate_columns,
            per_partition,
        ).with_order(OrderSpec())
        cost = child.cost + planner.cost_model.group_by_hash(
            child.properties.cardinality,
            per_partition,
            planner.pages_for(per_partition),
        )
        grouped.append(
            PlanNode(
                OpKind.GROUP_HASH,
                (child,),
                properties,
                cost,
                {
                    "group_columns": list(block.group_columns),
                    "aggregates": list(block.aggregates),
                },
            )
        )
    return gather_plan(planner, tuple(grouped), output_rows)


def _and_all(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    from repro.expr.nodes import BooleanExpr, BooleanOp

    return BooleanExpr(BooleanOp.AND, tuple(conjuncts))
