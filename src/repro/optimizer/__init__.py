"""Cost-based optimizer with order optimization (paper Section 5).

The entry point is :class:`~repro.optimizer.optimizer.Optimizer`, which
parses/accepts a query, runs the QGM rewrites and the order scan, does
bottom-up join enumeration with interesting orders and sort-ahead, and
returns an executable :class:`~repro.optimizer.plan.Plan`.

``OptimizerConfig(order_optimization=False)`` reproduces the paper's
"disabled" DB2 build: naive order tests (no reduction), no order
combination, no sort-ahead, no degrees-of-freedom GROUP BY orders.
"""

from repro.optimizer.config import OptimizerConfig
from repro.optimizer.plan import Plan, PlanNode
from repro.optimizer.optimizer import Optimizer

__all__ = ["Optimizer", "OptimizerConfig", "Plan", "PlanNode"]
