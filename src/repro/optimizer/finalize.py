"""Planning above the join: GROUP BY, HAVING, DISTINCT, ORDER BY,
projection.

This is where the paper's operations pay off together (Section 6): the
GROUP BY's general order is aligned with the ORDER BY via Cover Order
logic so one sort can serve both; Test Order decides whether any sort is
needed at all; Reduce Order supplies the minimal sort columns.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.general import GeneralOrderSpec
from repro.core.homogenize import homogenize_order
from repro.core.od import EMPTY_ODS, ODSet
from repro.core.ordering import OrderSpec
from repro.expr.nodes import ColumnRef
from repro.expr.schema import RowSchema
from repro.optimizer.enumerate import make_sort
from repro.optimizer.helpers import (
    general_satisfies,
    order_satisfies,
    sort_columns_for,
)
from repro.optimizer.plan import OpKind, PlanNode
from repro.optimizer.planner import PlannerContext
from repro.properties.odharvest import harvest_expression_ods
from repro.properties.propagate import (
    propagate_distinct,
    propagate_filter,
    propagate_group_by,
    propagate_project,
)
from repro.properties.stream import StreamProperties


def finalize_plans(
    planner: PlannerContext, join_plans: Sequence[PlanNode]
) -> List[PlanNode]:
    """Complete each join plan into a full query plan; returns candidates."""
    block = planner.block
    candidates: List[PlanNode] = []
    for plan in join_plans:
        plan = _apply_post_join_filters(planner, plan)
        variants: List[PlanNode] = [plan]
        if block.has_group_by():
            variants = _plan_group_by(planner, plan)
        if block.having is not None:
            variants = [
                _apply_having(planner, variant) for variant in variants
            ]
        if block.distinct:
            expanded: List[PlanNode] = []
            for variant in variants:
                expanded.extend(_plan_distinct(planner, variant))
            variants = expanded
        ordered: List[PlanNode] = []
        for variant in variants:
            ensured = _ensure_order_by(planner, variant)
            if ensured is not None:
                ordered.append(_final_projection(planner, ensured))
                continue
            # ORDER BY names computed outputs the pre-projection stream
            # cannot provide (``val + 1 AS v ... ORDER BY v``): project
            # first, sort the projected stream. With ODs on, the sort
            # usually disappears above instead — an order-equivalent
            # source column satisfies or substitutes for the target.
            projected = _final_projection(planner, variant)
            ensured = _ensure_order_by(planner, projected)
            if ensured is not None:
                ordered.append(ensured)
        variants = [_apply_fetch_first(planner, variant) for variant in ordered]
        candidates.extend(variants)
    return candidates


def _apply_post_join_filters(
    planner: PlannerContext, plan: PlanNode
) -> PlanNode:
    """WHERE conjuncts on null-supplying aliases run after all joins."""
    predicates = planner.post_join_predicates
    if not predicates:
        return plan
    combined = predicates[0]
    for extra in predicates[1:]:
        from repro.expr.nodes import BooleanExpr, BooleanOp

        combined = BooleanExpr(BooleanOp.AND, (combined, extra))
    selectivity = planner.estimator.selectivity(combined)
    rows = plan.properties.cardinality * selectivity
    properties = propagate_filter(plan.properties, combined, rows)
    cost = plan.cost + planner.cost_model.filter_rows(
        plan.properties.cardinality
    )
    return PlanNode(
        OpKind.FILTER, (plan,), properties, cost, {"predicate": combined}
    )


def _apply_fetch_first(planner: PlannerContext, plan: PlanNode) -> PlanNode:
    """FETCH FIRST n ROWS ONLY — with the Top-N sort rewrite.

    When the plan ends ``limit`` over ``project`` over a full ORDER BY
    sort, the sort is replaced by a bounded top-n sort: the interesting-
    order machinery already minimized its columns, the limit minimizes
    its rows.
    """
    count = planner.block.fetch_first
    if count is None:
        return plan
    plan = _rewrite_topmost_sort_to_topn(planner, plan, count)
    rows = min(float(count), plan.properties.cardinality)
    properties = plan.properties.with_cardinality(rows)
    return PlanNode(
        OpKind.LIMIT,
        (plan,),
        properties,
        plan.cost + planner.cost_model.project_rows(rows),
        {"count": count},
    )


def _rewrite_topmost_sort_to_topn(
    planner: PlannerContext, plan: PlanNode, count: int
) -> PlanNode:
    """Replace the topmost ORDER BY sort (possibly under projections or
    filters that preserve row identity) with a top-n sort."""
    if plan.kind is OpKind.SORT and plan.args.get("reason") == "order by":
        child = plan.children[0]
        rows = child.properties.cardinality
        order = plan.args["order"]
        cost = child.cost + planner.cost_model.top_n_sort(
            rows, len(order), count
        )
        return PlanNode(
            OpKind.TOPN,
            (child,),
            plan.properties,
            cost,
            {"order": order, "count": count},
        )
    if (
        plan.kind is OpKind.PARTIAL_SORT
        and plan.args.get("reason") == "order by"
        and plan.args.get("limit") is None
    ):
        # Groups stream out in target order, so the partial sort can
        # stop after enough groups and bound each group's heap: cheaper
        # than converting to a full top-n sort (which would re-sort the
        # prefix the input already delivers).
        child = plan.children[0]
        rows = child.properties.cardinality
        order = plan.args["order"]
        cost = child.cost + planner.cost_model.partial_sort_limited(
            rows,
            plan.args["groups"],
            len(order) - plan.args["prefix"],
            count,
        )
        return PlanNode(
            OpKind.PARTIAL_SORT,
            (child,),
            plan.properties,
            cost,
            dict(plan.args, limit=count),
        )
    if plan.kind is OpKind.PROJECT:
        rewritten = _rewrite_topmost_sort_to_topn(
            planner, plan.children[0], count
        )
        if rewritten is not plan.children[0]:
            return PlanNode(
                plan.kind,
                (rewritten,),
                plan.properties,
                rewritten.cost
                + planner.cost_model.project_rows(
                    min(float(count), rewritten.properties.cardinality)
                ),
                plan.args,
            )
    return plan


# ----------------------------------------------------------------------
# GROUP BY
# ----------------------------------------------------------------------


def _group_output_schema(planner: PlannerContext) -> RowSchema:
    block = planner.block
    outputs = list(block.group_columns) + [
        ColumnRef("", name) for name, _aggregate in block.aggregates
    ]
    return RowSchema(outputs)


def _group_output_rows(planner: PlannerContext, input_rows: float) -> float:
    """Estimated group count: joint NDV when the grouping columns share
    a sampled base table, else the per-column NDV product — capped."""
    block = planner.block
    if not block.group_columns:
        return 1.0
    joint = planner.stats_view.joint_ndv(list(block.group_columns))
    if joint is not None:
        return max(1.0, min(joint, input_rows))
    groups = 1.0
    for column in block.group_columns:
        stats = planner.stats_view.column_stats(column)
        groups *= float(stats.ndv) if stats is not None else 10.0
    return max(1.0, min(groups, input_rows))


def _plan_group_by(
    planner: PlannerContext, plan: PlanNode
) -> List[PlanNode]:
    """Sorted and hash GROUP BY variants over one join plan."""
    block = planner.block
    config = planner.config
    output_schema = _group_output_schema(planner)
    aggregate_columns = [
        ColumnRef("", name) for name, _aggregate in block.aggregates
    ]
    input_rows = plan.properties.cardinality
    output_rows = _group_output_rows(planner, input_rows)
    context = plan.properties.context()
    variants: List[PlanNode] = []

    general = GeneralOrderSpec.from_group_by(block.group_columns)

    def grouped(child: PlanNode, hash_based: bool) -> PlanNode:
        properties = propagate_group_by(
            child.properties,
            block.group_columns,
            output_schema,
            aggregate_columns,
            output_rows,
        )
        if hash_based:
            properties = properties.with_order(OrderSpec())
            cost = child.cost + planner.cost_model.group_by_hash(
                child.properties.cardinality,
                output_rows,
                planner.pages_for(output_rows),
            )
            kind = OpKind.GROUP_HASH
        else:
            cost = child.cost + planner.cost_model.group_by_sorted(
                child.properties.cardinality, output_rows
            )
            kind = OpKind.GROUP_SORTED
        return PlanNode(
            kind,
            (child,),
            properties,
            cost,
            {
                "group_columns": list(block.group_columns),
                "aggregates": list(block.aggregates),
            },
        )

    # --- order-based GROUP BY ---
    if not block.group_columns:
        # Scalar aggregation: hash operator handles it trivially.
        variants.append(grouped(plan, hash_based=True))
        return variants

    if general_satisfies(config, general, plan.order, context):
        variants.append(grouped(plan, hash_based=False))
    else:
        for target in _group_sort_targets(planner, general, context):
            if not target.subset_columns(plan.properties.schema.columns):
                continue
            sorted_child = make_sort(planner, plan, target, "group by")
            variants.append(grouped(sorted_child, hash_based=False))

    # --- hash-based GROUP BY ---
    if config.enable_hash_group_by:
        variants.append(grouped(plan, hash_based=True))

    # --- partition-wise GROUP BY (pushed below a gather exchange) ---
    if config.effective("enable_partitioning"):
        from repro.optimizer.parallel import partitioned_group_by

        parallel = partitioned_group_by(
            planner, plan, output_schema, aggregate_columns, output_rows
        )
        if parallel is not None:
            variants.append(parallel)
    return variants


def _group_sort_targets(
    planner: PlannerContext,
    general: GeneralOrderSpec,
    context,
) -> List[OrderSpec]:
    """Candidate sort orders establishing the GROUP BY requirement.

    With order optimization on: the order aligned with the ORDER BY (one
    sort serves both, the Cover Order payoff) and the minimal concrete
    order. With it off: exactly the written grouping column list.
    """
    block = planner.block
    config = planner.config
    if not config.effective("enable_general_orders"):
        return [OrderSpec.of(*block.group_columns)]
    targets: List[OrderSpec] = []
    if config.effective("enable_cover") and not block.order_by.is_empty():
        aligned = general.aligned_with(block.order_by, context)
        if aligned is not None and not aligned.is_empty():
            targets.append(aligned)
    minimal = general.concrete(context)
    if not minimal.is_empty() and minimal not in targets:
        targets.append(minimal)
    if not targets:
        # Everything reduced away (e.g. one-record stream): group input
        # is trivially grouped; sort on the first column as a fallback.
        targets.append(OrderSpec.of(*block.group_columns))
    return targets


def _apply_having(planner: PlannerContext, plan: PlanNode) -> PlanNode:
    having = planner.block.having
    selectivity = planner.estimator.selectivity(having)
    rows = plan.properties.cardinality * selectivity
    properties = propagate_filter(plan.properties, having, rows)
    cost = plan.cost + planner.cost_model.filter_rows(
        plan.properties.cardinality
    )
    return PlanNode(
        OpKind.FILTER, (plan,), properties, cost, {"predicate": having}
    )


# ----------------------------------------------------------------------
# DISTINCT
# ----------------------------------------------------------------------


def _distinct_output_rows(
    planner: PlannerContext, columns: List[ColumnRef], input_rows: float
) -> float:
    """Estimated distinct row count over the output columns.

    Mirrors GROUP BY's estimate: joint NDV when the columns share a
    sampled base table (correlated pairs stop multiplying), else the
    per-column NDV product — capped by the input. Computed output
    columns carry no statistics; when *nothing* has statistics the old
    halve-the-input heuristic is all that's defensible.
    """
    if not columns:
        return 1.0
    joint = planner.stats_view.joint_ndv(columns)
    if joint is not None:
        return max(1.0, min(joint, input_rows))
    distinct = 1.0
    known = False
    for column in columns:
        stats = planner.stats_view.column_stats(column)
        if stats is not None:
            known = True
            distinct *= float(stats.ndv)
        else:
            distinct *= 10.0
    if not known:
        return max(1.0, input_rows * 0.5)
    return max(1.0, min(distinct, input_rows))


def _plan_distinct(
    planner: PlannerContext, plan: PlanNode
) -> List[PlanNode]:
    """Sorted and hash DISTINCT variants (applied on the output columns).

    DISTINCT runs over the final select list; we project first so
    duplicate elimination sees exactly the output columns.
    """
    projected = _final_projection(planner, plan, mark_projected=True)
    config = planner.config
    columns = list(projected.properties.schema.columns)
    output_rows = _distinct_output_rows(
        planner, columns, projected.properties.cardinality
    )
    context = projected.properties.context()
    general = GeneralOrderSpec.from_distinct(columns)
    variants: List[PlanNode] = []

    def distinct_node(child: PlanNode, hash_based: bool) -> PlanNode:
        properties = propagate_distinct(child.properties, output_rows)
        if hash_based:
            properties = properties.with_order(OrderSpec())
            kind = OpKind.DISTINCT_HASH
            cost = child.cost + planner.cost_model.group_by_hash(
                child.properties.cardinality,
                output_rows,
                planner.pages_for(output_rows),
            )
        else:
            kind = OpKind.DISTINCT_SORTED
            cost = child.cost + planner.cost_model.group_by_sorted(
                child.properties.cardinality, output_rows
            )
        return PlanNode(kind, (child,), properties, cost, {})

    if general_satisfies(config, general, projected.order, context):
        variants.append(distinct_node(projected, hash_based=False))
    else:
        if config.effective("enable_cover") and not planner.block.order_by.is_empty():
            aligned = general.aligned_with(planner.block.order_by, context)
        else:
            aligned = None
        target = aligned if aligned is not None else general.concrete(
            context, hint=planner.block.order_by or None
        )
        if not config.effective("enable_general_orders"):
            target = OrderSpec.of(*columns)
        if not target.is_empty() and target.subset_columns(columns):
            sorted_child = make_sort(planner, projected, target, "distinct")
            variants.append(distinct_node(sorted_child, hash_based=False))
    if config.enable_hash_group_by or not variants:
        variants.append(distinct_node(projected, hash_based=True))
    return variants


# ----------------------------------------------------------------------
# ORDER BY and final projection
# ----------------------------------------------------------------------


def _ensure_order_by(
    planner: PlannerContext, plan: PlanNode
) -> Optional[PlanNode]:
    order_by = planner.block.order_by
    if order_by.is_empty():
        return plan
    context = plan.properties.context()
    if not planner.block_ods.is_empty():
        # Block ODs relate current columns to computed outputs that only
        # exist after the final projection (``val + 1 AS v``); folding
        # them in lets the order test accept a ``val``-sorted stream for
        # ``ORDER BY v`` — the projection preserves row order.
        context = context.with_ods(planner.block_ods)
    if order_satisfies(planner.config, order_by, plan.order, context):
        return plan
    target = sort_columns_for(planner.config, order_by, context)
    if target.is_empty():
        return plan
    if not target.subset_columns(plan.properties.schema.columns):
        if planner.block_ods.is_empty():
            return None
        # ORDER BY names a computed output: re-express the sort on the
        # pre-projection schema through order-equivalent ODs.
        remapped = homogenize_order(
            target, plan.properties.schema.columns, context
        )
        if remapped is None:
            return None
        if remapped.is_empty():
            return plan
        target = remapped
    return make_sort(planner, plan, target, "order by")


def _final_projection(
    planner: PlannerContext, plan: PlanNode, mark_projected: bool = False
) -> PlanNode:
    """Project to the block's select list (skipped if already done)."""
    if plan.args.get("final_projection"):
        return plan
    block = planner.block
    expressions = [item.expression for item in block.select_items]
    outputs = [item.output for item in block.select_items]
    current = list(plan.properties.schema.columns)
    if outputs == current:
        # The stream already delivers exactly the output schema — a
        # projection below (e.g. DISTINCT's) computed any derived
        # items; re-projecting would re-evaluate their expressions
        # against a schema that no longer has the source columns.
        return plan
    # Deduplicate output columns (SELECT a.x, a.x is legal SQL but our
    # schemas demand uniqueness; the executor re-expands on fetch).
    seen = set()
    unique_expressions = []
    unique_outputs = []
    for expression, output in zip(expressions, outputs):
        if output in seen:
            continue
        seen.add(output)
        unique_expressions.append(expression)
        unique_outputs.append(output)
    schema = RowSchema(unique_outputs)
    simple = all(
        isinstance(expression, ColumnRef) for expression in unique_expressions
    )
    if simple:
        properties = propagate_project(plan.properties, unique_outputs)
    else:
        # Computed outputs: keys/FDs/equivalences are conservatively
        # dropped, but monotonic items carry order facts across. The
        # harvested item ODs (``val |-> v``) both re-express the input
        # order on the outputs and, projected onto the output schema,
        # relate outputs to each other (``val + 1`` and ``val + 2``).
        if planner.config.effective("use_order_dependencies"):
            item_ods = harvest_expression_ods(
                zip(unique_expressions, unique_outputs),
                nullable=planner.column_nullable,
            )
        else:
            item_ods = EMPTY_ODS
        combined = plan.properties.ods.union(item_ods)
        output_set = frozenset(unique_outputs)
        properties = StreamProperties(
            schema=schema,
            order=_surviving_order(
                plan.properties.order, output_set, combined
            ),
            cardinality=plan.properties.cardinality,
            ods=combined.projected(output_set),
        )
    cost = plan.cost + planner.cost_model.project_rows(
        plan.properties.cardinality
    )
    return PlanNode(
        OpKind.PROJECT,
        (plan,),
        properties,
        cost,
        {
            "expressions": unique_expressions,
            "final_projection": True,
        },
    )


def _surviving_order(
    order: OrderSpec, columns, ods: ODSet = EMPTY_ODS
) -> OrderSpec:
    from repro.core.ordering import OrderKey

    keys: List[OrderKey] = []
    seen = set()
    for key in order:
        if key.column in columns:
            keys.append(key)
            seen.add(key.column)
            continue
        # A projected-away sort column may live on through an
        # order-equivalent output (``val + 1 AS v``). A duplicate
        # target is skippable because order equivalence makes it
        # constant within ties of the earlier key.
        candidates = [
            (target, flip)
            for target in columns
            for flip in (ods.order_equivalent_flip(key.column, target),)
            if flip is not None
        ]
        if candidates:
            chosen, flip = min(
                candidates,
                key=lambda pair: (pair[0].qualifier, pair[0].name),
            )
            if chosen in seen:
                continue
            replacement = key.with_column(chosen)
            keys.append(replacement.reversed() if flip else replacement)
            seen.add(chosen)
            continue
        # A one-way edge (``d |-> year(d)``) may stand in only as the
        # *last* claimed key: ties of the coarse target span several
        # source values, so nothing after it stays ordered.
        one_way = [
            (target, flip)
            for target in columns
            if target not in seen
            for flip in sorted(ods.flips(key.column, target))
        ]
        if one_way:
            chosen, flip = min(
                one_way, key=lambda pair: (pair[0].qualifier, pair[0].name)
            )
            replacement = key.with_column(chosen)
            keys.append(replacement.reversed() if flip else replacement)
        break
    return OrderSpec(keys)
