"""Plan (QEP) representation.

A :class:`PlanNode` is one operator of a query execution plan, carrying
its output :class:`~repro.properties.stream.StreamProperties` and the
cumulative :class:`~repro.cost.model.Cost` of the subtree. The tree is
immutable; the optimizer builds new nodes bottom-up, mirroring the
paper's "builds a QEP bottom-up, operator-by-operator, computing
properties as it goes".
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.cost.model import Cost
from repro.properties.stream import StreamProperties


class OpKind(enum.Enum):
    """Physical operator kinds a plan node can carry."""

    TABLE_SCAN = "table scan"
    INDEX_SCAN = "index scan"
    FILTER = "filter"
    PROJECT = "project"
    SORT = "sort"
    PARTIAL_SORT = "partial sort"
    NLJ = "nested-loop join"
    NLJ_INDEX = "nested-loop join (index)"
    MERGE_JOIN = "merge-join"
    HASH_JOIN = "hash join"
    GROUP_SORTED = "group by (sorted)"
    GROUP_HASH = "group by (hash)"
    DISTINCT_SORTED = "distinct (sorted)"
    DISTINCT_HASH = "distinct (hash)"
    LIMIT = "limit"
    TOPN = "top-n sort"
    CONCAT = "concat (union all)"
    PARTITION_SCAN = "partition scan"
    GATHER_EXCHANGE = "gather exchange"
    MERGE_EXCHANGE = "merge exchange"
    PARTITION_SPLIT = "partition split"


@dataclass(frozen=True)
class PlanNode:
    """One operator with children, output properties, and subtree cost."""

    kind: OpKind
    children: Tuple["PlanNode", ...]
    properties: StreamProperties
    cost: Cost
    args: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def order(self):
        return self.properties.order

    def aliases(self) -> frozenset:
        """Quantifier aliases contributing to this subtree.

        A derived-table node is a boundary: it contributes its exposed
        alias, not the base tables of its sub-plan.
        """
        if "derived" in self.args:
            return frozenset((self.args["derived"],))
        if self.kind in (
            OpKind.TABLE_SCAN,
            OpKind.INDEX_SCAN,
            OpKind.PARTITION_SCAN,
        ):
            return frozenset((self.args["alias"],))
        merged = frozenset()
        for child in self.children:
            merged |= child.aliases()
        if self.kind is OpKind.NLJ_INDEX:
            merged |= frozenset((self.args["alias"],))
        return merged

    def describe(self) -> str:
        """One-line description for explain output."""
        kind = self.kind.value
        if self.kind is OpKind.TABLE_SCAN:
            return f"{kind} {self.args['table']} as {self.args['alias']}"
        if self.kind is OpKind.INDEX_SCAN:
            direction = " backward" if self.args.get("descending") else ""
            partition = self.args.get("partition")
            part = f" [part {partition}]" if partition is not None else ""
            return (
                f"{kind} {self.args['index']} on {self.args['table']} "
                f"as {self.args['alias']}{direction}{part}"
            )
        if self.kind is OpKind.SORT:
            reason = self.args.get("reason")
            suffix = f" [{reason}]" if reason else ""
            return f"{kind} {self.args['order']}{suffix}"
        if self.kind is OpKind.PARTIAL_SORT:
            reason = self.args.get("reason")
            suffix = f" [{reason}]" if reason else ""
            limit = self.args.get("limit")
            if limit is not None:
                suffix = f" limit {limit}{suffix}"
            return (
                f"{kind} {self.args['order']} "
                f"(prefix {self.args['prefix']}){suffix}"
            )
        if self.kind is OpKind.FILTER:
            return f"{kind} [{self.args['predicate']}]"
        if self.kind is OpKind.NLJ_INDEX:
            marker = "ordered " if self.args.get("ordered") else ""
            outer_marker = " (left outer)" if self.args.get("left_outer") else ""
            probes = ", ".join(str(c) for c in self.args["probe_columns"])
            return (
                f"{marker}{kind}{outer_marker} probe {self.args['index']} "
                f"on {self.args['table']} as {self.args['alias']} [{probes}]"
            )
        if self.kind in (OpKind.MERGE_JOIN, OpKind.HASH_JOIN):
            pairs = ", ".join(
                f"{outer} = {inner}"
                for outer, inner in zip(
                    self.args["outer_keys"], self.args["inner_keys"]
                )
            )
            outer_marker = " (left outer)" if self.args.get("left_outer") else ""
            return f"{kind}{outer_marker} [{pairs}]"
        if self.kind is OpKind.NLJ and self.args.get("left_outer"):
            return f"{kind} (left outer)"
        if self.kind is OpKind.LIMIT:
            return f"{kind} {self.args['count']}"
        if self.kind is OpKind.TOPN:
            return f"top-{self.args['count']} sort {self.args['order']}"
        if self.kind in (OpKind.GROUP_SORTED, OpKind.GROUP_HASH):
            inner = ", ".join(str(c) for c in self.args["group_columns"])
            return f"{kind} [{inner}]"
        if self.kind is OpKind.PROJECT:
            inner = ", ".join(
                str(c) for c in self.properties.schema.columns
            )
            return f"{kind} [{inner}]"
        if self.kind is OpKind.PARTITION_SCAN:
            parts = ",".join(str(p) for p in self.args["partitions"])
            return (
                f"{kind} {self.args['table']} as {self.args['alias']} "
                f"[parts {parts}]"
            )
        if self.kind is OpKind.GATHER_EXCHANGE:
            return f"{kind} ({len(self.children)} streams)"
        if self.kind is OpKind.MERGE_EXCHANGE:
            return (
                f"{kind} {self.args['order']} "
                f"({len(self.children)} streams)"
            )
        if self.kind is OpKind.PARTITION_SPLIT:
            inner = ", ".join(str(c) for c in self.args["columns"])
            return (
                f"{kind} #{self.args['index']} hash({inner}) "
                f"x{self.args['count']}"
            )
        return kind

    def explain(
        self,
        indent: int = 0,
        show_order: bool = True,
        show_cost: bool = False,
    ) -> str:
        line = " " * indent + self.describe()
        if show_order and not self.properties.order.is_empty():
            line += f"  {{order: {self.properties.order}}}"
        if show_cost:
            line += (
                f"  [rows={self.properties.cardinality:.0f}, "
                f"cost={self.cost.total_ms:.1f}ms]"
            )
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 2, show_order, show_cost))
        return "\n".join(lines)

    def find_all(self, kind: OpKind) -> List["PlanNode"]:
        """All nodes of a given kind (plan-shape assertions in tests).

        Visits each physical node once: PARTITION_SPLIT buckets share
        one child subtree, which executes once and must count once.
        """
        found: List["PlanNode"] = []
        self._find_into(kind, found, set())
        return found

    def _find_into(self, kind: OpKind, found: List["PlanNode"], seen: set) -> None:
        if id(self) in seen:
            return
        seen.add(id(self))
        if self.kind is kind:
            found.append(self)
        for child in self.children:
            child._find_into(kind, found, seen)

    def sort_count(self) -> int:
        return len(self.find_all(OpKind.SORT))

    def partial_sort_count(self) -> int:
        return len(self.find_all(OpKind.PARTIAL_SORT))


@dataclass
class Plan:
    """A complete query execution plan."""

    root: PlanNode
    output_names: Tuple[str, ...]

    @property
    def cost(self) -> Cost:
        return self.root.cost

    def explain(self, show_order: bool = True, show_cost: bool = False) -> str:
        return self.root.explain(show_order=show_order, show_cost=show_cost)

    def fingerprint(self) -> str:
        """Structural identity: operator tree shape plus operator args.

        Deliberately excludes costs, estimated rows, and order
        annotations, so re-costing a plan under corrected statistics
        changes the fingerprint only when the chosen *operators*
        change — the workload loop's plan-change detector.
        """
        text = self.root.explain(show_order=False, show_cost=False)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def sort_count(self) -> int:
        return self.root.sort_count()

    def partial_sort_count(self) -> int:
        return self.root.partial_sort_count()

    def find_all(self, kind: OpKind) -> List[PlanNode]:
        return self.root.find_all(kind)
