"""The optimizer facade: SQL/QGM in, executable plan out."""

from __future__ import annotations

from typing import List, Optional

from repro.cost.model import CostModel
from repro.errors import OptimizerError
from repro.optimizer.config import OptimizerConfig, PlannerStats
from repro.optimizer.enumerate import enumerate_joins
from repro.optimizer.finalize import finalize_plans
from repro.optimizer.order_scan import run_order_scan
from repro.optimizer.plan import Plan, PlanNode
from repro.optimizer.planner import PlannerContext
from repro.parser import parse_query
from repro.qgm import normalize, rewrite
from repro.qgm.block import QueryBlock
from repro.qgm.boxes import Box
from repro.storage import Database


class Optimizer:
    """Cost-based query optimizer with order optimization.

    Typical use::

        optimizer = Optimizer(database)
        plan = optimizer.plan_sql("select ... from ... order by ...")
        rows = execute_plan(plan, database)

    Pass ``OptimizerConfig.disabled()`` to reproduce the paper's
    order-optimization-disabled baseline.
    """

    def __init__(
        self,
        database: Database,
        config: Optional[OptimizerConfig] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self.database = database
        self.config = config or OptimizerConfig()
        self.cost_model = cost_model or CostModel()
        self.last_stats: PlannerStats = PlannerStats()
        self.last_interesting_orders: List = []

    def plan_sql(self, sql: str) -> Plan:
        """Parse, rewrite, and plan a SQL query."""
        box = parse_query(sql, self.database.catalog)
        return self.plan_box(box)

    def plan_box(self, box: Box) -> Plan:
        """Rewrite and plan a QGM box tree."""
        from repro.qgm.boxes import UnionBox

        box = rewrite(box)
        if isinstance(box, UnionBox):
            return self._plan_union(box)
        return self.plan_block(normalize(box))

    def plan_block(self, block: QueryBlock) -> Plan:
        """Plan a normalized query block."""
        best, names = self._best_block_node(block)
        return Plan(root=best, output_names=names)

    def _best_block_node(self, block: QueryBlock, extra_interesting=()):
        candidates = self._block_candidates(block, extra_interesting)
        best = min(candidates, key=lambda plan: plan.cost.total_ms)
        names = tuple(item.name for item in block.select_items)
        return best, names

    def _block_candidates(self, block: QueryBlock, extra_interesting=()):
        """All surviving full plans for a block (cheapest first not
        guaranteed). ``extra_interesting`` injects orders wanted by an
        enclosing block — the §5.1 push of interesting orders into a
        view."""
        derived_plans = {}
        for alias, box in block.derived.items():
            derived_plans[alias] = self._plan_derived(alias, box, block)
        planner = PlannerContext.build(
            self.database,
            self.config,
            block,
            self.cost_model,
            derived_plans=derived_plans,
        )
        planner.interesting_orders = run_order_scan(planner)
        for specification in extra_interesting:
            if (
                specification not in planner.interesting_orders
                and not specification.is_empty()
            ):
                planner.interesting_orders.append(specification)
        self.last_interesting_orders = list(planner.interesting_orders)
        join_plans = enumerate_joins(planner)
        candidates = finalize_plans(planner, join_plans)
        if not candidates:
            raise OptimizerError("no complete plan produced")
        self.last_stats = planner.stats
        return candidates

    def _plan_derived(self, alias: str, box: Box, outer_block=None):
        """Plan an unmergeable view and expose it under ``alias``.

        The sub-plan's output columns are renamed to ``alias.name``
        references; its order, key, and FD properties are translated so
        the outer block's order optimization can still exploit them.

        Returns a *list* of candidates: the cheapest plan, plus (when
        the enclosing block wants an order this view's columns could
        provide) the cheapest plan that delivers it — the paper's push
        of a sort "into a view": the outer DP decides whether the
        pre-ordered view pays for itself.
        """
        from repro.expr.nodes import ColumnRef
        from repro.optimizer.helpers import order_satisfies
        from repro.optimizer.plan import OpKind, PlanNode
        from repro.properties.propagate import rename_properties
        from repro.qgm.boxes import UnionBox

        def rename(sub_plan, source_columns, names):
            mapping = {
                source: ColumnRef(alias, name)
                for source, name in zip(source_columns, names)
            }
            properties = rename_properties(sub_plan.properties, mapping)
            return PlanNode(
                OpKind.PROJECT,
                (sub_plan,),
                properties,
                sub_plan.cost
                + self.cost_model.project_rows(
                    sub_plan.properties.cardinality
                ),
                {"expressions": source_columns, "derived": alias},
            )

        if isinstance(box, UnionBox):
            sub_plan = self._plan_union(box).root
            source_columns = list(sub_plan.properties.schema.columns)
            names = [item.name for item in box.output_items()]
            return [rename(sub_plan, source_columns, names)]

        block = normalize(box)
        wanted = self._wanted_view_orders(alias, block, outer_block)
        candidates = self._block_candidates(block, extra_interesting=wanted)
        best = min(candidates, key=lambda plan: plan.cost.total_ms)
        chosen = [best]
        for specification in wanted:
            satisfying = [
                candidate
                for candidate in candidates
                if order_satisfies(
                    self.config,
                    specification,
                    candidate.properties.order,
                    candidate.properties.context(),
                )
            ]
            if satisfying:
                ordered_best = min(
                    satisfying, key=lambda plan: plan.cost.total_ms
                )
                if ordered_best is not best:
                    chosen.append(ordered_best)
                break

        name_by_output = {}
        for item in block.select_items:
            name_by_output.setdefault(item.output, item.name)
        renamed = []
        for sub_plan in chosen:
            source_columns = list(sub_plan.properties.schema.columns)
            names = [
                name_by_output.get(column, column.name)
                for column in source_columns
            ]
            renamed.append(rename(sub_plan, source_columns, names))
        return renamed

    def _wanted_view_orders(self, alias: str, view_block, outer_block):
        """Orders the enclosing block would like this view to provide,
        translated onto the view's own output expressions.

        A computed item like ``val + 1 AS v`` blocks the plain-column
        translation, but when order dependencies are on the view *can*
        deliver the order anyway — its own OD harvest relates ``v`` to
        ``val`` — so the wanted key is expressed on the view's output
        column and the inner planner's homogenization does the rest.
        Non-strict items (``year(d) AS y``) must end the wanted spec:
        ties of the coarse output span several source values, so no
        later key can be promised within them.
        """
        from repro.core.ordering import OrderKey, OrderSpec
        from repro.expr.analysis import monotonic_dependency
        from repro.expr.nodes import ColumnRef

        if outer_block is None:
            return []
        use_ods = self.config.effective("use_order_dependencies")
        expression_by_name = {}
        for item in view_block.select_items:
            expression_by_name.setdefault(item.name, item.expression)
        wanted = []
        sources = [outer_block.order_by]
        if outer_block.group_columns:
            sources.append(OrderSpec.of(*outer_block.group_columns))
        for specification in sources:
            keys = []
            for key in specification:
                if key.column.qualifier != alias:
                    break
                target = expression_by_name.get(key.column.name)
                if target is None:
                    break
                if isinstance(target, ColumnRef):
                    keys.append(OrderKey(target, key.direction))
                    continue
                if not use_ods:
                    break
                dependency = monotonic_dependency(target)
                if dependency is None:
                    break
                keys.append(
                    OrderKey(ColumnRef("", key.column.name), key.direction)
                )
                if not dependency.strict:
                    break
            if keys:
                candidate = OrderSpec(keys)
                if candidate not in wanted:
                    wanted.append(candidate)
        return wanted

    def _plan_union(self, union) -> Plan:
        """Plan UNION [ALL]: branch plans + concat + optional dedupe.

        The dedupe sort of a plain UNION is an interesting order: with
        cover enabled it is aligned with the union's ORDER BY so one
        sort serves both (the Rdb trick the paper cites in §2).
        """
        from repro.core.context import OrderContext
        from repro.core.general import GeneralOrderSpec
        from repro.core.ordering import OrderSpec
        from repro.core.reduce import reduce_order
        from repro.cost.model import Cost
        from repro.expr.schema import RowSchema
        from repro.optimizer.helpers import (
            general_satisfies,
            order_satisfies,
            sort_columns_for,
        )
        from repro.optimizer.plan import OpKind, PlanNode
        from repro.properties.stream import KeyProperty, StreamProperties

        union_items = list(union.output_items())
        names = tuple(item.name for item in union_items)
        common_columns = [item.output for item in union_items]
        common_schema = RowSchema(common_columns)

        branch_nodes = []
        total_rows = 0.0
        for branch in union.branches:
            node, _branch_names = self._best_block_node(normalize(branch))
            branch_columns = list(node.properties.schema.columns)
            rename_props = StreamProperties(
                schema=common_schema,
                cardinality=node.properties.cardinality,
            )
            node = PlanNode(
                OpKind.PROJECT,
                (node,),
                rename_props,
                node.cost
                + self.cost_model.project_rows(node.properties.cardinality),
                {"expressions": branch_columns, "final_projection": True},
            )
            total_rows += node.properties.cardinality
            branch_nodes.append(node)

        concat_props = StreamProperties(
            schema=common_schema, cardinality=total_rows
        )
        concat_cost = sum(
            (node.cost for node in branch_nodes), Cost()
        ) + self.cost_model.project_rows(total_rows)
        plan = PlanNode(
            OpKind.CONCAT,
            tuple(branch_nodes),
            concat_props,
            concat_cost,
            {},
        )

        context = OrderContext.empty()
        if not union.all_rows:
            output_rows = max(1.0, total_rows * 0.5)
            general = GeneralOrderSpec.from_distinct(common_columns)
            target = None
            if self.config.effective("enable_cover") and not union.output_order.is_empty():
                target = general.aligned_with(union.output_order, context)
            if target is None:
                target = general.concrete(context, hint=union.output_order or None)
            if not self.config.effective("enable_general_orders"):
                target = OrderSpec.of(*common_columns)
            candidates = []
            if not target.is_empty():
                sort_cost = self.cost_model.sort(
                    total_rows, len(target), max(1.0, total_rows / 64.0)
                )
                sorted_node = PlanNode(
                    OpKind.SORT,
                    (plan,),
                    concat_props.with_order(target),
                    plan.cost + sort_cost,
                    {"order": target, "reason": "union distinct"},
                )
                dedup_props = StreamProperties(
                    schema=common_schema,
                    order=target,
                    key_property=KeyProperty([common_columns]),
                    cardinality=output_rows,
                )
                candidates.append(
                    PlanNode(
                        OpKind.DISTINCT_SORTED,
                        (sorted_node,),
                        dedup_props,
                        sorted_node.cost
                        + self.cost_model.group_by_sorted(
                            total_rows, output_rows
                        ),
                        {},
                    )
                )
            if self.config.enable_hash_group_by or not candidates:
                hash_props = StreamProperties(
                    schema=common_schema,
                    key_property=KeyProperty([common_columns]),
                    cardinality=output_rows,
                )
                candidates.append(
                    PlanNode(
                        OpKind.DISTINCT_HASH,
                        (plan,),
                        hash_props,
                        plan.cost
                        + self.cost_model.group_by_hash(
                            total_rows,
                            output_rows,
                            max(1.0, output_rows / 64.0),
                        ),
                        {},
                    )
                )

            def with_order_by(candidate):
                if union.output_order.is_empty():
                    return candidate
                ctx = candidate.properties.context()
                if order_satisfies(
                    self.config, union.output_order, candidate.order, ctx
                ):
                    return candidate
                sort_target = sort_columns_for(
                    self.config, union.output_order, ctx
                )
                if sort_target.is_empty():
                    return candidate
                rows = candidate.properties.cardinality
                return PlanNode(
                    OpKind.SORT,
                    (candidate,),
                    candidate.properties.with_order(sort_target),
                    candidate.cost
                    + self.cost_model.sort(
                        rows, len(sort_target), max(1.0, rows / 64.0)
                    ),
                    {"order": sort_target, "reason": "order by"},
                )

            candidates = [with_order_by(c) for c in candidates]
            plan = min(candidates, key=lambda node: node.cost.total_ms)
        elif not union.output_order.is_empty():
            rows = plan.properties.cardinality
            plan = PlanNode(
                OpKind.SORT,
                (plan,),
                plan.properties.with_order(union.output_order),
                plan.cost
                + self.cost_model.sort(
                    rows, len(union.output_order), max(1.0, rows / 64.0)
                ),
                {"order": union.output_order, "reason": "order by"},
            )

        if union.fetch_first is not None:
            rows = min(float(union.fetch_first), plan.properties.cardinality)
            plan = PlanNode(
                OpKind.LIMIT,
                (plan,),
                plan.properties.with_cardinality(rows),
                plan.cost + self.cost_model.project_rows(rows),
                {"count": union.fetch_first},
            )
        return Plan(root=plan, output_names=names)
