"""Optimizer configuration and instrumentation counters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OptimizerConfig:
    """Feature switches for order optimization and planning.

    ``order_optimization`` is the master switch matching the paper's
    Section 8 experiment: with it off, order tests are naive column-list
    comparisons, interesting orders are neither reduced nor combined nor
    pushed down, and GROUP BY demands exactly its written column order.

    The finer-grained switches support the ablation benchmarks; they are
    only consulted when ``order_optimization`` is on.
    """

    order_optimization: bool = True
    enable_reduction: bool = True
    enable_sort_ahead: bool = True
    enable_cover: bool = True
    enable_general_orders: bool = True
    # Order dependencies (beyond the paper; Szlichta et al.): harvest
    # X |-> Y facts from monotonic derived expressions and consult them
    # in the order algebra. Gated here so ``disabled()`` stays the
    # honest 1996 baseline — the core algebra itself is config-free and
    # simply sees an empty ODSet when harvesting is off.
    use_order_dependencies: bool = True
    # Prefix-aware partial sort (beyond the paper): when the delivered
    # order already satisfies a proper prefix of a sort target, enforce
    # the rest with a segmented per-group sort instead of a full
    # external sort, and steer merge-join key sequences toward reusing
    # delivered prefixes (shared sort segments). Off under
    # ``disabled()`` via the master switch.
    enable_partial_sort: bool = True
    # Partitioned storage + parallel exchanges (beyond the paper; the
    # scale-out sibling of the order property): consider partition-
    # pruned scans, partition-parallel joins/group-bys, and order-
    # preserving merge exchanges over range partitions. Off under
    # ``disabled()`` via the master switch and off in
    # ``db2_faithful_config()`` (1996 DB2 had no parallel repertoire
    # here). With the switch off, partitioned tables still execute —
    # the planner just scans them as one sequential stream.
    enable_partitioning: bool = True

    enable_merge_join: bool = True
    enable_hash_join: bool = True
    enable_index_nlj: bool = True
    enable_hash_group_by: bool = True

    max_sort_ahead_orders: int = 4

    def effective(self, feature: str) -> bool:
        """A fine-grained switch, gated by the master switch."""
        if not self.order_optimization:
            return False
        return getattr(self, feature)

    @classmethod
    def disabled(cls) -> "OptimizerConfig":
        """The paper's order-optimization-disabled build."""
        return cls(order_optimization=False)


@dataclass
class PlannerStats:
    """Counters for the enumeration-complexity experiment (Section 5.2)."""

    plans_generated: int = 0
    plans_pruned: int = 0
    subsets_expanded: int = 0
    sort_ahead_plans: int = 0

    def reset(self) -> None:
        self.plans_generated = 0
        self.plans_pruned = 0
        self.subsets_expanded = 0
        self.sort_ahead_plans = 0
