"""Experiment registry and report rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import BenchmarkError


@dataclass
class ExperimentReport:
    """One experiment's outcome in paper-comparable form."""

    experiment_id: str
    title: str
    headers: Sequence[str] = ()
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    text_blocks: List[Tuple[str, str]] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def add_block(self, caption: str, text: str) -> None:
        self.text_blocks.append((caption, text))

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.headers and self.rows:
            widths = [
                max(
                    len(str(self.headers[i])),
                    *(len(str(row[i])) for row in self.rows),
                )
                for i in range(len(self.headers))
            ]
            header = "  ".join(
                str(head).ljust(width)
                for head, width in zip(self.headers, widths)
            )
            lines.append(header)
            lines.append("-" * len(header))
            for row in self.rows:
                lines.append(
                    "  ".join(
                        str(value).ljust(width)
                        for value, width in zip(row, widths)
                    )
                )
        for caption, text in self.text_blocks:
            lines.append("")
            lines.append(f"-- {caption} --")
            lines.append(text)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


_REGISTRY: Dict[str, Tuple[str, Callable[..., ExperimentReport]]] = {}


def experiment(experiment_id: str, title: str):
    """Decorator registering an experiment function."""

    def register(function: Callable[..., ExperimentReport]):
        _REGISTRY[experiment_id] = (title, function)
        return function

    return register


def available_experiments() -> List[Tuple[str, str]]:
    """(id, title) pairs for every registered experiment."""
    _ensure_loaded()
    return [(key, value[0]) for key, value in sorted(_REGISTRY.items())]


def run_experiment(experiment_id: str, **parameters) -> ExperimentReport:
    """Run one experiment by id."""
    _ensure_loaded()
    try:
        _title, function = _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise BenchmarkError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return function(**parameters)


def _ensure_loaded() -> None:
    # Experiments register on import; import lazily to avoid cycles.
    from repro.bench import experiments  # noqa: F401
