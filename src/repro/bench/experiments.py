"""The paper's experiments, one registered function per table/figure.

Every experiment prints the paper's numbers next to ours. Absolute
magnitudes differ (their testbed was a 1 GB TPC-D database on an
RS/6000; ours is a Python engine at a small scale factor) — the
reproduced quantity is the *shape*: which plan wins, which operators
appear, and roughly what the on/off ratio is.
"""

from __future__ import annotations

import datetime
import time
from typing import Dict, List, Tuple

from repro.catalog import Column, Index, TableSchema, hash_spec, range_spec
from repro.optimizer import OptimizerConfig
from repro.storage import Database
from repro.api import execute, plan_query, run_query
from repro.bench.harness import ExperimentReport, experiment
from repro.optimizer.plan import OpKind
from repro.sqltypes import INTEGER
from repro.tpcd import (
    QUERY_3,
    TpcdGenerator,
    build_tpcd_database,
    tpcd_indexes,
    tpcd_schema,
)

DEFAULT_SCALE = 0.02
DEFAULT_RUNS = 5


def db2_faithful_config(order_optimization: bool = True) -> OptimizerConfig:
    """DB2/CS-1996 operator repertoire: no hash join / hash aggregation.

    The paper's plans (Figures 7 and 8) contain only sort/merge/NLJ
    operators; DB2/CS had no hash-based alternatives at the time, so the
    faithful comparison disables ours. ``python -m repro.bench
    ablation_hash`` quantifies what hash operators change.
    """
    config = (
        OptimizerConfig() if order_optimization else OptimizerConfig.disabled()
    )
    config.enable_hash_join = False
    config.enable_hash_group_by = False
    # 1996 DB2 had no segmented-sort operator either; keeping it off
    # also keeps the figure/table plan shapes (full sorts) stable.
    config.enable_partial_sort = False
    # Nor a parallel/partitioned repertoire: no exchange operators.
    config.enable_partitioning = False
    return config


_TPCD_CACHE: Dict[float, Database] = {}


def tpcd_database(scale_factor: float) -> Database:
    """Cached TPC-D database per scale factor (builds take seconds)."""
    if scale_factor not in _TPCD_CACHE:
        _TPCD_CACHE[scale_factor] = build_tpcd_database(
            scale_factor=scale_factor, buffer_pool_pages=1024
        )
    return _TPCD_CACHE[scale_factor]


def _timed_runs(database: Database, sql: str, config, runs: int):
    """Execute ``runs`` times; return (mean wall s, mean simulated ms,
    last result)."""
    plan = plan_query(database, sql, config=config)
    walls: List[float] = []
    sims: List[float] = []
    result = None
    for _ in range(runs):
        result = execute(database, plan, cold_cache=True)
        walls.append(result.elapsed_seconds)
        sims.append(result.simulated_elapsed_ms)
    return (
        sum(walls) / len(walls),
        sum(sims) / len(sims),
        result,
    )


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------


@experiment("table1", "Table 1: elapsed time for TPC-D Query 3")
def table1(
    scale_factor: float = DEFAULT_SCALE, runs: int = DEFAULT_RUNS
) -> ExperimentReport:
    report = ExperimentReport(
        "table1",
        "Elapsed time for Query 3, production vs order-opt-disabled "
        f"(SF {scale_factor}, {runs}-run average)",
        headers=(
            "metric",
            "Production (order opt ON)",
            "Disabled",
            "Ratio",
            "Paper ratio",
        ),
    )
    database = tpcd_database(scale_factor)
    on_wall, on_sim, on_result = _timed_runs(
        database, QUERY_3, db2_faithful_config(True), runs
    )
    off_wall, off_sim, off_result = _timed_runs(
        database, QUERY_3, db2_faithful_config(False), runs
    )
    report.add_row(
        "wall-clock (s)",
        f"{on_wall:.3f}",
        f"{off_wall:.3f}",
        f"{off_wall / on_wall:.2f}",
        "2.04",
    )
    report.add_row(
        "simulated elapsed (ms)",
        f"{on_sim:.0f}",
        f"{off_sim:.0f}",
        f"{off_sim / on_sim:.2f}",
        "2.04",
    )
    report.add_row(
        "optimizer estimate (ms)",
        f"{on_result.plan.cost.total_ms:.0f}",
        f"{off_result.plan.cost.total_ms:.0f}",
        f"{off_result.plan.cost.total_ms / on_result.plan.cost.total_ms:.2f}",
        "-",
    )
    report.add_row(
        "sorts in plan",
        on_result.plan.sort_count(),
        off_result.plan.sort_count(),
        "-",
        "-",
    )
    report.add_note(
        "paper: 192s production vs 393s disabled on 1GB TPC-D / RS-6000; "
        "we reproduce the ratio's direction and magnitude, not seconds"
    )
    report.data.update(
        on_wall=on_wall,
        off_wall=off_wall,
        on_sim=on_sim,
        off_sim=off_sim,
        wall_ratio=off_wall / on_wall,
        sim_ratio=off_sim / on_sim,
        est_ratio=(
            off_result.plan.cost.total_ms / on_result.plan.cost.total_ms
        ),
    )
    assert on_result.rows == off_result.rows
    return report


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------


def _figure1_database() -> Database:
    import random

    rng = random.Random(1996)
    database = Database()
    database.create_table(
        TableSchema(
            "a",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(i, rng.randint(0, 40)) for i in range(2000)],
    )
    database.create_table(
        TableSchema(
            "b",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
        ),
        rows=[
            (rng.randint(0, 1999), rng.randint(0, 100)) for _ in range(8000)
        ],
    )
    database.create_index(Index.on("a_x", "a", ["x"], unique=True, clustered=True))
    database.create_index(Index.on("b_x", "b", ["x"], clustered=True))
    return database


@experiment("fig1", "Figure 1: QGM and QEP for the simple example query")
def fig1(**_ignored) -> ExperimentReport:
    from repro.parser import parse_query
    from repro.qgm import normalize, rewrite

    report = ExperimentReport(
        "fig1", "select a.y, sum(b.y) from a, b where a.x = b.x group by a.y"
    )
    database = _figure1_database()
    sql = (
        "select a.y, sum(b.y) as total from a, b "
        "where a.x = b.x group by a.y"
    )
    box = rewrite(parse_query(sql, database.catalog))
    block = normalize(box)
    qgm_text = (
        f"SELECT box: quantifiers={sorted(block.tables)}, "
        f"predicate=[{block.predicate}]\n"
        f"GROUP BY box: columns={[str(c) for c in block.group_columns]}, "
        f"aggregates={[name for name, _ in block.aggregates]}"
    )
    report.add_block("QGM (normalized)", qgm_text)
    result = run_query(database, sql, config=db2_faithful_config(True))
    report.add_block("QEP (chosen plan)", result.plan.explain())
    report.add_note(
        "the paper's QEP sorts on a.y below a merge-join feeding GROUP "
        "BY; cost-based choice here may pick an equivalent ordered plan"
    )
    report.data["plan"] = result.plan
    return report


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------


def _figure6_database() -> Database:
    import random

    rng = random.Random(66)
    database = Database()
    database.create_table(
        TableSchema(
            "a",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(i, rng.randint(0, 50)) for i in range(500)],
    )
    # b.x is unique: the Section 4.4 premise ("a.x is a base-table key
    # that remains a key after the join") under which Figure 6's single
    # sort satisfies merge-join + GROUP BY + ORDER BY at once.
    database.create_table(
        TableSchema(
            "b",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(i, rng.randint(0, 30)) for i in range(500)],
    )
    database.create_table(
        TableSchema(
            "c",
            [Column("x", INTEGER, nullable=False), Column("z", INTEGER)],
        ),
        rows=[
            (rng.randint(0, 499), rng.randint(0, 100)) for _ in range(8000)
        ],
    )
    database.create_index(
        Index.on("b_x", "b", ["x"], unique=True, clustered=True)
    )
    database.create_index(Index.on("c_x", "c", ["x"], clustered=True))
    return database


FIGURE6_SQL = (
    "select a.x, a.y, b.y, sum(c.z) as total from a, b, c "
    "where a.x = b.x and b.x = c.x "
    "group by a.x, a.y, b.y order by a.x"
)


@experiment(
    "fig6",
    "Figure 6: one sort satisfies merge-join, GROUP BY, and ORDER BY",
)
def fig6(**_ignored) -> ExperimentReport:
    report = ExperimentReport(
        "fig6",
        "sort push-down across two joins (Section 6 example)",
        headers=("config", "sorts", "order-by sorts", "group-by strategy"),
    )
    database = _figure6_database()
    for label, config in (
        ("order opt ON", db2_faithful_config(True)),
        ("order opt OFF", db2_faithful_config(False)),
    ):
        result = run_query(database, FIGURE6_SQL, config=config)
        plan = result.plan
        order_sorts = [
            node
            for node in plan.find_all(OpKind.SORT)
            if node.args.get("reason") == "order by"
        ]
        strategy = (
            "sorted" if plan.find_all(OpKind.GROUP_SORTED) else "hash"
        )
        report.add_row(
            label, plan.sort_count(), len(order_sorts), strategy
        )
        report.add_block(f"plan ({label})", plan.explain())
        report.data[label] = plan
    report.add_note(
        "with order optimization, the GROUP BY sort is reduced to the "
        "minimal columns and covers the ORDER BY (no top sort); the "
        "sort lands below the upper join"
    )
    return report


# ----------------------------------------------------------------------
# Figures 7 and 8
# ----------------------------------------------------------------------


def _query3_plan_report(
    figure: str, order_optimization: bool, scale_factor: float
) -> ExperimentReport:
    database = tpcd_database(scale_factor)
    result = run_query(
        database, QUERY_3, config=db2_faithful_config(order_optimization)
    )
    mode = "production" if order_optimization else "order-opt disabled"
    report = ExperimentReport(
        figure, f"TPC-D Query 3 plan, {mode} (SF {scale_factor})"
    )
    report.add_block("chosen plan", result.plan.explain())
    report.data["plan"] = result.plan
    checks = []
    plan = result.plan
    if order_optimization:
        checks.append(
            (
                "ordered NLJ probing clustered l_orderkey index",
                any(
                    node.args.get("ordered")
                    for node in plan.find_all(OpKind.NLJ_INDEX)
                ),
            )
        )
        checks.append(
            (
                "no sort needed for GROUP BY",
                not any(
                    node.args.get("reason") == "group by"
                    for node in plan.find_all(OpKind.SORT)
                ),
            )
        )
    else:
        checks.append(
            ("merge-join used", bool(plan.find_all(OpKind.MERGE_JOIN)))
        )
        checks.append(
            (
                "extra sort for GROUP BY",
                any(
                    node.args.get("reason") == "group by"
                    for node in plan.find_all(OpKind.SORT)
                ),
            )
        )
    checks.append(
        (
            "top sort on (rev desc, o_orderdate)",
            any(
                node.args.get("reason") == "order by"
                for node in plan.find_all(OpKind.SORT)
            ),
        )
    )
    for label, passed in checks:
        report.add_row(label, "yes" if passed else "NO")
    report.headers = ("paper plan feature", "reproduced")
    return report


@experiment("fig7", "Figure 7: Query 3 plan in the production build")
def fig7(scale_factor: float = DEFAULT_SCALE, **_ignored) -> ExperimentReport:
    return _query3_plan_report("fig7", True, scale_factor)


@experiment("fig8", "Figure 8: Query 3 plan with order optimization disabled")
def fig8(scale_factor: float = DEFAULT_SCALE, **_ignored) -> ExperimentReport:
    return _query3_plan_report("fig8", False, scale_factor)


# ----------------------------------------------------------------------
# Section 5.2 complexity claim
# ----------------------------------------------------------------------


@experiment(
    "complexity",
    "Section 5.2: join enumeration grows ~O(n^2) in sort-ahead orders",
)
def complexity(tables: int = 5, **_ignored) -> ExperimentReport:
    import random

    from repro.core.ordering import OrderSpec
    from repro.expr.nodes import ColumnRef
    from repro.optimizer.enumerate import enumerate_joins
    from repro.optimizer.order_scan import run_order_scan
    from repro.optimizer.planner import PlannerContext
    from repro.parser import parse_query
    from repro.qgm import normalize, rewrite

    rng = random.Random(52)
    database = Database()
    aliases = [f"t{i}" for i in range(tables)]
    for alias in aliases:
        database.create_table(
            TableSchema(
                alias,
                [
                    Column("k", INTEGER, nullable=False),
                    Column("v", INTEGER),
                ],
                primary_key=("k",),
            ),
            rows=[(i, rng.randint(0, 99)) for i in range(300)],
        )
        database.create_index(
            Index.on(f"{alias}_k", alias, ["k"], unique=True, clustered=True)
        )
    joins = " and ".join(
        f"{aliases[i]}.k = {aliases[i + 1]}.k" for i in range(tables - 1)
    )
    sql = (
        "select "
        + ", ".join(f"{alias}.v" for alias in aliases)
        + " from "
        + ", ".join(aliases)
        + f" where {joins}"
    )
    block = normalize(rewrite(parse_query(sql, database.catalog)))

    report = ExperimentReport(
        "complexity",
        f"plans generated while enumerating a {tables}-way join chain, "
        "as sort-ahead orders grow",
        headers=("sort-ahead orders n", "plans generated", "vs n=0"),
    )
    baseline = None
    counts = []
    for n in range(5):
        planner = PlannerContext.build(
            database, OptimizerConfig(), block
        )
        # Synthesize n distinct interesting orders over different value
        # columns, mimicking n order requirements hung off the box.
        planner.interesting_orders = [
            OrderSpec.of(ColumnRef(aliases[i], "v")) for i in range(n)
        ]
        enumerate_joins(planner)
        generated = planner.stats.plans_generated
        counts.append(generated)
        if baseline is None:
            baseline = generated
        report.add_row(n, generated, f"{generated / baseline:.2f}x")
    report.data["counts"] = counts
    report.add_note(
        "the paper proves an O(n^2) factor; in practice n < 3 "
        "(Section 5.2) — growth here should be visibly superlinear "
        "but modest"
    )
    return report


# ----------------------------------------------------------------------
# Ablations (Section 8 discussion)
# ----------------------------------------------------------------------


def _warehouse_database() -> Database:
    import random

    rng = random.Random(88)
    database = Database()
    database.create_table(
        TableSchema(
            "sku",
            [
                Column("id", INTEGER, nullable=False),
                Column("cat", INTEGER),
                Column("region", INTEGER),
            ],
            primary_key=("id",),
        ),
        rows=[
            (i, rng.randint(0, 20), rng.randint(0, 5)) for i in range(3000)
        ],
    )
    database.create_table(
        TableSchema(
            "sales",
            [
                Column("sku_id", INTEGER, nullable=False),
                Column("day", INTEGER),
                Column("amount", INTEGER),
            ],
        ),
        rows=[
            (rng.randint(0, 2999), rng.randint(0, 365), rng.randint(1, 500))
            for _ in range(20000)
        ],
    )
    database.create_index(
        Index.on("pk_sku", "sku", ["id"], unique=True, clustered=True)
    )
    database.create_index(Index.on("sales_sku", "sales", ["sku_id"], clustered=True))
    return database


def _ablation_report(
    experiment_id: str,
    title: str,
    sql: str,
    database: Database,
    configs: List[Tuple[str, OptimizerConfig]],
    runs: int = 3,
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id,
        title,
        headers=("config", "wall (ms)", "simulated (ms)", "sorts", "est (ms)"),
    )
    baseline_rows = None
    for label, config in configs:
        wall, sim, result = _timed_runs(database, sql, config, runs)
        report.add_row(
            label,
            f"{wall * 1000:.0f}",
            f"{sim:.0f}",
            result.plan.sort_count(),
            f"{result.plan.cost.total_ms:.0f}",
        )
        rows = sorted(map(str, result.rows))
        if baseline_rows is None:
            baseline_rows = rows
        elif rows != baseline_rows:
            raise AssertionError(f"result mismatch under {label}")
        report.data[label] = result.plan
    return report


@experiment(
    "ablation_reduce",
    "Ablation: Reduce Order (redundant sort columns from predicates/keys)",
)
def ablation_reduce(**_ignored) -> ExperimentReport:
    # The intro's warehouse redundancy: sort on a constant-bound column,
    # group on key columns plus functionally dependent ones.
    sql = (
        "select id, cat, region, sum(amount) as total "
        "from sku, sales where id = sku_id and region = 3 "
        "group by id, cat, region order by region, id"
    )
    on = db2_faithful_config(True)
    off = db2_faithful_config(True)
    off.enable_reduction = False
    off.enable_general_orders = False
    return _ablation_report(
        "ablation_reduce",
        "grouping on key + dependents, ordering on constant-bound column",
        sql,
        _warehouse_database(),
        [("reduction ON", on), ("reduction OFF", off)],
    )


@experiment(
    "ablation_cover",
    "Ablation: Cover Order (one sort for GROUP BY + ORDER BY)",
)
def ablation_cover(**_ignored) -> ExperimentReport:
    sql = (
        "select cat, region, sum(amount) as total "
        "from sku, sales where id = sku_id "
        "group by cat, region order by region"
    )
    on = db2_faithful_config(True)
    off = db2_faithful_config(True)
    off.enable_cover = False
    return _ablation_report(
        "ablation_cover",
        "GROUP BY {cat, region} + ORDER BY region",
        sql,
        _warehouse_database(),
        [("cover ON", on), ("cover OFF", off)],
    )


@experiment(
    "ablation_sortahead",
    "Ablation: sort-ahead (pushing the sort below the join)",
)
def ablation_sortahead(
    scale_factor: float = DEFAULT_SCALE, **_ignored
) -> ExperimentReport:
    on = db2_faithful_config(True)
    off = db2_faithful_config(True)
    off.enable_sort_ahead = False
    return _ablation_report(
        "ablation_sortahead",
        "TPC-D Query 3 with and without sort-ahead",
        QUERY_3,
        tpcd_database(scale_factor),
        [("sort-ahead ON", on), ("sort-ahead OFF", off)],
    )


@experiment(
    "order_deps",
    "Ablation: order dependencies (monotonic derived columns reuse "
    "existing orders)",
)
def order_deps(**_ignored) -> ExperimentReport:
    """Q-level sort counts with ODs on vs FD-only, asserted on <= off.

    Each query orders by a monotonic image of an indexed column
    (``id + 1``, a flipped NOT NULL column, a computed group-by view
    head); the OD machinery proves the existing order suffices, the
    FD-only build must sort after projecting.
    """
    queries = (
        ("computed alias", "select id + 1 as i2 from sku order by i2"),
        (
            "flip, NOT NULL",
            "select 3000 - id as rev from sku order by rev desc",
        ),
        (
            "view head",
            "select g2, n from (select sku_id + 1 as g2, count(*) as n "
            "from sales group by sku_id) t order by g2",
        ),
    )
    on = db2_faithful_config(True)
    off = db2_faithful_config(True)
    off.use_order_dependencies = False
    database = _warehouse_database()
    report = ExperimentReport(
        "order_deps",
        "sorts per query, order dependencies vs FD-only",
        headers=("query", "sorts (ODs ON)", "sorts (ODs OFF)"),
    )
    for label, sql in queries:
        result_on = run_query(database, sql, config=on)
        result_off = run_query(database, sql, config=off)
        if result_on.rows != result_off.rows:
            raise AssertionError(f"result mismatch for {label!r}")
        sorts_on = result_on.plan.sort_count()
        sorts_off = result_off.plan.sort_count()
        if sorts_on > sorts_off:
            raise AssertionError(
                f"order dependencies added a sort for {label!r}: "
                f"{sorts_on} > {sorts_off}"
            )
        report.add_row(label, sorts_on, sorts_off)
        report.data[label] = (sorts_on, sorts_off)
    report.add_note(
        "Every row must satisfy ON <= OFF (asserted); rows are "
        "byte-compared between builds before counting."
    )
    return report


@experiment(
    "suite",
    "Section 8: order-sensitive query suite, production vs disabled "
    "(the paper's 'internal benchmarks' analog)",
)
def suite(
    scale_factor: float = DEFAULT_SCALE, runs: int = 3, **_ignored
) -> ExperimentReport:
    """Per-query on/off ratios over an order-sensitive workload.

    The paper: "IBM maintains a number of internal benchmarks... On
    those benchmarks and at customer sites, we have observed substantial
    improvement in the performance of many queries." This regenerates
    that flavour of result: a mixed suite where each query leans on a
    different technique.
    """
    from repro.tpcd import tpcd_query

    report = ExperimentReport(
        "suite",
        f"order-sensitive suite at SF {scale_factor} ({runs}-run average)",
        headers=(
            "query",
            "technique exercised",
            "ON wall (ms)",
            "OFF wall (ms)",
            "ratio",
        ),
    )
    tpcd = tpcd_database(scale_factor)
    warehouse = _warehouse_database()
    workload = [
        ("tpcd-q3", "sort-ahead + ordered NLJ + FD group-by", tpcd, tpcd_query("q3")),
        ("tpcd-q1", "group-by/order-by cover", tpcd, tpcd_query("q1")),
        ("tpcd-q4", "index order + small group", tpcd, tpcd_query("q4")),
        (
            "wh-keys",
            "reduction: grouping on key + dependents",
            warehouse,
            "select id, cat, region, sum(amount) as total from sku, sales "
            "where id = sku_id group by id, cat, region order by id",
        ),
        (
            "wh-const",
            "reduction: constant-bound sort column",
            warehouse,
            "select id, region, sum(amount) as total from sku, sales "
            "where id = sku_id and region = 3 "
            "group by id, region order by region, id",
        ),
        (
            "wh-permute",
            "degrees of freedom (§7)",
            warehouse,
            "select cat, region, sum(amount) as total from sku, sales "
            "where id = sku_id group by cat, region order by region",
        ),
    ]
    ratios: List[float] = []
    for name, technique, database, sql in workload:
        on_wall, _on_sim, on_result = _timed_runs(
            database, sql, db2_faithful_config(True), runs
        )
        off_wall, _off_sim, off_result = _timed_runs(
            database, sql, db2_faithful_config(False), runs
        )
        assert sorted(map(str, on_result.rows)) == sorted(
            map(str, off_result.rows)
        )
        ratio = off_wall / on_wall
        ratios.append(max(ratio, 1e-6))
        report.add_row(
            name,
            technique,
            f"{on_wall * 1000:.0f}",
            f"{off_wall * 1000:.0f}",
            f"{ratio:.2f}",
        )
    import math

    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    report.add_row("geometric mean", "", "", "", f"{geomean:.2f}")
    report.data["ratios"] = ratios
    report.data["geomean"] = geomean
    report.add_note(
        "ratios >= 1 mean the order-optimized build wins; the paper "
        "reports 'substantial improvement in many queries' without "
        "numbers beyond Query 3's 2.04x"
    )
    return report


@experiment(
    "ablation_prefetch",
    "Substitution check: the prefetch window is what makes ordered "
    "probes pay (the paper's big-block I/O)",
)
def ablation_prefetch(
    scale_factor: float = DEFAULT_SCALE, runs: int = 3, **_ignored
) -> ExperimentReport:
    """Re-run Q3's Figure-7 plan under different prefetch windows.

    The paper's configuration drove the CPU to 100% with big-block I/O
    and prefetching; our buffer pool models that with a window of pages
    after the previous miss that count as sequential. Shrinking the
    window to 1 (no prefetch) makes the ordered NLJ's sparse monotone
    probes register as random I/O — quantifying how much of Figure 7's
    win rests on the hardware behaviour the paper describes.
    """
    from repro.storage.buffer import BufferPool

    report = ExperimentReport(
        "ablation_prefetch",
        f"Q3 Figure-7 plan, simulated elapsed vs prefetch window "
        f"(SF {scale_factor})",
        headers=("prefetch window (pages)", "simulated elapsed (ms)",
                 "random misses", "sequential misses"),
    )
    database = tpcd_database(scale_factor)
    plan = plan_query(database, QUERY_3, config=db2_faithful_config(True))
    original = BufferPool.PREFETCH_WINDOW
    try:
        for window in (1, 8, 32):
            BufferPool.PREFETCH_WINDOW = window
            sims = []
            result = None
            for _ in range(runs):
                result = execute(database, plan, cold_cache=True)
                sims.append(result.simulated_elapsed_ms)
            report.add_row(
                window,
                f"{sum(sims) / len(sims):.0f}",
                result.io_stats.random_misses,
                result.io_stats.sequential_misses,
            )
    finally:
        BufferPool.PREFETCH_WINDOW = original
    report.add_note(
        "window=1 strips the prefetch model: ordered probes degrade "
        "toward random I/O, shrinking Figure 7's advantage — the "
        "substitution (prefetch window for the paper's big-block I/O) "
        "is load-bearing and explicit"
    )
    return report


# ----------------------------------------------------------------------
# Plan-time profiling of the order algebra itself
# ----------------------------------------------------------------------


def _clear_planning_caches() -> None:
    from repro.core.memo import clear_memos
    from repro.properties.propagate import clear_propagation_memo

    clear_memos()
    clear_propagation_memo()


def _plan_q3_instrumented(
    database: Database, runs: int, memoized: bool
) -> Tuple[float, Dict[str, float]]:
    """(best wall s, counter snapshot) for one cold-cache Q3 planning."""
    from contextlib import nullcontext

    from repro.core import instrument
    from repro.core.memo import memoization_disabled

    config = db2_faithful_config(True)
    best = float("inf")
    stats: Dict[str, float] = {}
    for _ in range(max(1, runs)):
        _clear_planning_caches()
        instrument.reset()
        guard = nullcontext() if memoized else memoization_disabled()
        with guard:
            started = time.perf_counter()
            plan_query(database, QUERY_3, config=config)
            best = min(best, time.perf_counter() - started)
        stats = instrument.snapshot()
    return best, stats


@experiment(
    "core_ops",
    "Plan-time profile: order-algebra call counts and memo hit rates "
    "while planning TPC-D Query 3",
)
def core_ops(
    scale_factor: float = DEFAULT_SCALE, runs: int = DEFAULT_RUNS, **_ignored
) -> ExperimentReport:
    """Before/after view of the algebra memoization on Q3 planning.

    "Before" plans with the four operations' memo tables bypassed (the
    same indexed closure underneath); "after" is the production path.
    The machine-readable payload lands in ``BENCH_core_ops.json`` when
    run through ``python -m repro.bench``.
    """
    from repro.core import instrument

    report = ExperimentReport(
        "core_ops",
        f"order-algebra counters for one TPC-D Q3 planning (SF "
        f"{scale_factor}, best of {runs})",
        headers=("counter", "memo off", "memo on"),
    )
    database = tpcd_database(scale_factor)
    before_wall, before = _plan_q3_instrumented(database, runs, memoized=False)
    after_wall, after = _plan_q3_instrumented(database, runs, memoized=True)

    interesting = (
        "reduce.calls",
        "test.calls",
        "cover.calls",
        "homogenize.calls",
        "closure.builds",
        "closure.iterations",
        "context.builds",
        "stream.context_calls",
        "propagate.join_calls",
    )
    for name in interesting:
        report.add_row(name, before.get(name, 0), after.get(name, 0))
    report.add_row(
        "planning wall-clock (ms)",
        f"{before_wall * 1000:.1f}",
        f"{after_wall * 1000:.1f}",
    )

    hit_rates = {
        subsystem: instrument.hit_rate(after, subsystem)
        for subsystem in ("reduce", "test", "cover", "homogenize")
    }
    algebra_calls = sum(
        after.get(f"{s}.calls", 0)
        for s in ("reduce", "test", "cover", "homogenize")
    )
    algebra_hits = sum(
        after.get(f"{s}.memo_hits", 0)
        for s in ("reduce", "test", "cover", "homogenize")
    )
    overall = algebra_hits / algebra_calls if algebra_calls else 0.0
    for subsystem, rate in hit_rates.items():
        report.add_row(f"{subsystem} hit rate", "-", f"{rate:.1%}")
    report.add_row("overall algebra hit rate", "-", f"{overall:.1%}")
    report.add_note(
        "memo-off still uses the indexed incremental closure; the delta "
        "isolates what the per-context memo tables buy on top"
    )
    report.data["json"] = {
        "experiment": "core_ops",
        "query": "tpcd-q3",
        "scale_factor": scale_factor,
        "runs": runs,
        "before": {
            "wall_seconds": before_wall,
            "counters": {k: before.get(k, 0) for k in interesting},
        },
        "after": {
            "wall_seconds": after_wall,
            "counters": {k: after.get(k, 0) for k in interesting},
        },
        "hit_rates": dict(hit_rates, overall=overall),
    }
    report.data["overall_hit_rate"] = overall
    return report


# ----------------------------------------------------------------------
# Execution-engine throughput (compiled kernels vs interpreter)
# ----------------------------------------------------------------------


@experiment(
    "exec_ops",
    "Executor profile: vector blocks vs compiled batch kernels vs the "
    "tree-walking interpreter on TPC-D Q3/Q10",
)
def exec_ops(
    scale_factor: float = DEFAULT_SCALE, runs: int = DEFAULT_RUNS, **_ignored
) -> ExperimentReport:
    """Execution-throughput baseline for the batched executor.

    Each query is planned once (production config); the *same* operator
    tree shape then runs to completion under all three executor engines
    — ``interpreted`` re-walks every expression tree per row,
    ``compiled`` uses the closure kernels from ``repro.expr.compile``,
    ``vector`` streams columnar selection-vector blocks
    (``repro.expr.vector``) with late materialization. Rows must be
    identical; the wall-clock ratios are pure engine overhead. The
    machine-readable payload lands in ``BENCH_exec_ops.json`` when run
    through ``python -m repro.bench`` — ``row_vs_vector`` is the
    compiled/vector ratio (how much the columnar path buys on top of
    kernel compilation).
    """
    from repro.executor.context import (
        MODE_COMPILED,
        MODE_INTERPRETED,
        MODE_VECTOR,
        ExecutionContext,
    )
    from repro.tpcd import tpcd_query

    report = ExperimentReport(
        "exec_ops",
        f"TPC-D execution wall-clock, vector vs compiled vs interpreted "
        f"engine (SF {scale_factor}, best of {runs}, warm cache)",
        headers=(
            "query",
            "rows",
            "interpreted (ms)",
            "compiled (ms)",
            "vector (ms)",
            "compiled speedup",
            "vector speedup",
        ),
    )
    database = tpcd_database(scale_factor)
    # Default (full-repertoire) config: hash joins / hash aggregation
    # shift the runtime from shared storage code (btree probes, sort
    # comparisons — identical in both engines) into expression
    # evaluation, which is exactly the dimension this experiment
    # isolates. db2_faithful plans measure ~1.5x on the same build;
    # the engines' row output is identical either way.
    config = OptimizerConfig()
    payload: Dict[str, object] = {
        "experiment": "exec_ops",
        "scale_factor": scale_factor,
        "runs": runs,
        "queries": {},
    }
    analyzed = None
    # q1/q6 are engine-bound (aggregation, predicates over one scan);
    # q3/q10 are probe-bound: index-nested-loop page fetches and
    # buffer accounting — identical work in every engine — floor their
    # runtime, so their ratios bound well below the engine-bound pair.
    for name in ("q1", "q3", "q6", "q10"):
        plan = plan_query(database, tpcd_query(name), config=config)
        timings: Dict[str, float] = {}
        rows_by_mode: Dict[str, List[tuple]] = {}
        for mode in (MODE_INTERPRETED, MODE_COMPILED, MODE_VECTOR):
            best = float("inf")
            for _ in range(max(1, runs)):
                context = ExecutionContext(database, mode=mode)
                result = execute(database, plan, context=context)
                best = min(best, result.elapsed_seconds)
            timings[mode] = best
            rows_by_mode[mode] = result.rows
            if name == "q3" and mode == MODE_VECTOR:
                analyzed = result.analyzed
        for mode in (MODE_COMPILED, MODE_VECTOR):
            if rows_by_mode[mode] != rows_by_mode[MODE_INTERPRETED]:
                raise AssertionError(
                    f"executor engines disagree on {name}: "
                    f"{len(rows_by_mode[mode])} ({mode}) vs "
                    f"{len(rows_by_mode[MODE_INTERPRETED])} rows"
                )
        speedup = timings[MODE_INTERPRETED] / timings[MODE_COMPILED]
        vector_speedup = timings[MODE_INTERPRETED] / timings[MODE_VECTOR]
        row_vs_vector = timings[MODE_COMPILED] / timings[MODE_VECTOR]
        report.add_row(
            f"tpcd-{name}",
            len(rows_by_mode[MODE_COMPILED]),
            f"{timings[MODE_INTERPRETED] * 1000:.1f}",
            f"{timings[MODE_COMPILED] * 1000:.1f}",
            f"{timings[MODE_VECTOR] * 1000:.1f}",
            f"{speedup:.2f}x",
            f"{vector_speedup:.2f}x",
        )
        payload["queries"][f"tpcd-{name}"] = {
            "rows": len(rows_by_mode[MODE_COMPILED]),
            "interpreted_seconds": timings[MODE_INTERPRETED],
            "compiled_seconds": timings[MODE_COMPILED],
            "vector_seconds": timings[MODE_VECTOR],
            "speedup": speedup,
            "vector_speedup": vector_speedup,
            "row_vs_vector": row_vs_vector,
        }
    report.add_block("Q3 vector run (explain analyze)", analyzed)
    report.add_note(
        "same plans, same rows, same order in all engines; the "
        "compiled delta is expression interpretation + per-row "
        "iterator overhead, the vector delta adds late "
        "materialization, selection-vector predicates, and run-folded "
        "aggregation on top"
    )
    report.add_note(
        "row_vs_vector on q3/q10 is capped by the storage simulation: "
        "with buffer accounting stubbed out the two engines measure "
        "near parity there, because index probes and page fetches "
        "dominate those plans; q1/q6 show the columnar payoff where "
        "expression work dominates"
    )
    report.data["json"] = payload
    return report


@experiment(
    "ablation_hash",
    "Extension: hash-based operators vs the 1996 sort-based repertoire",
)
def ablation_hash(
    scale_factor: float = DEFAULT_SCALE, **_ignored
) -> ExperimentReport:
    sort_based = db2_faithful_config(True)
    with_hash = OptimizerConfig()  # hash join + hash group-by available
    return _ablation_report(
        "ablation_hash",
        "TPC-D Query 3: order-based vs hash-enabled optimizer",
        QUERY_3,
        tpcd_database(scale_factor),
        [("sort/merge/NLJ only", sort_based), ("hash enabled", with_hash)],
    )


@experiment(
    "verify_smoke",
    "Differential plan-oracle smoke: config-matrix fuzz + property audit",
)
def verify_smoke(**_ignored) -> ExperimentReport:
    """Run the ``repro.verify`` smoke battery and report its counts.

    Registered here so CI that already drives ``python -m repro.bench``
    gets the correctness harness for free; ``python -m repro.verify
    smoke`` is the standalone entry point.
    """
    from repro.verify.oracle import run_audit_battery, run_fuzz, tier1_matrix

    fuzz_report = run_fuzz(
        seed=2026,
        n=12,
        configs=tier1_matrix(),
        audit_configs=("full", "disabled"),
        compare_exec_modes=True,
    )
    audit_mismatches = run_audit_battery()

    report = ExperimentReport(
        "verify_smoke",
        "Differential plan-oracle smoke run",
        headers=("check", "scope", "result"),
    )
    report.add_row(
        "config-matrix fuzz (+ compiled/interpreted executor diff)",
        f"{fuzz_report.queries} queries x {fuzz_report.configs} configs",
        "ok" if fuzz_report.ok else f"{len(fuzz_report.failures)} FAILURES",
    )
    report.add_row(
        "plan-property audit",
        "fixed battery",
        "ok" if not audit_mismatches else f"{len(audit_mismatches)} FAILURES",
    )
    for failure in fuzz_report.failures:
        report.add_note(f"fuzz failure: {failure.spec.sql()}")
    for mismatch in audit_mismatches:
        report.add_note(f"audit failure: {mismatch}")
    report.data["json"] = {
        "fuzz_queries": fuzz_report.queries,
        "fuzz_configs": fuzz_report.configs,
        "fuzz_failures": len(fuzz_report.failures),
        "audit_failures": len(audit_mismatches),
    }
    return report


# ----------------------------------------------------------------------
# Query-service throughput (parameterized plan cache, warm vs cold)
# ----------------------------------------------------------------------


def _service_workload(
    round_index: int, customer_count: int
) -> List[Tuple[str, str]]:
    """One round of the dashboard-replay workload, as (class, sql).

    The shape mirrors how a reporting front end actually re-issues the
    paper's queries: the expensive rollups refresh occasionally with a
    rotating date window, while per-customer drill-downs — the same
    statement with a different key — dominate the statement count.
    Every literal varies per round, so nothing would hit a naive
    text-keyed cache; only auto-parameterization makes these replays.
    """
    statements: List[Tuple[str, str]] = []
    quarters = [f"199{3 + y}-{q:02d}-01" for y in range(3) for q in (1, 4, 7, 10)]
    start = quarters[round_index % len(quarters)]
    end = quarters[(round_index % len(quarters)) + 1] if (
        round_index % len(quarters)
    ) + 1 < len(quarters) else "1996-01-01"
    statements.append((
        "q10_rollup",
        f"""select c_custkey, c_name,
               sum(l_extendedprice * (1 - l_discount)) as revenue,
               c_acctbal, n_name
        from customer, orders, lineitem, nation
        where c_custkey = o_custkey and l_orderkey = o_orderkey
          and o_orderdate >= date('{start}')
          and o_orderdate < date('{end}')
          and l_returnflag = 'R' and c_nationkey = n_nationkey
        group by c_custkey, c_name, c_acctbal, n_name
        order by revenue desc""",
    ))
    if round_index % 4 == 0:
        cutoff = f"1995-0{1 + round_index % 3}-15"
        statements.append((
            "q3_rollup",
            f"""select l_orderkey,
                   sum(l_extendedprice * (1 - l_discount)) as rev,
                   o_orderdate, o_shippriority
            from customer, orders, lineitem
            where o_orderkey = l_orderkey and c_custkey = o_custkey
              and c_mktsegment = 'BUILDING'
              and o_orderdate < date('{cutoff}')
              and l_shipdate > date('{cutoff}')
            group by l_orderkey, o_orderdate, o_shippriority
            order by rev desc, o_orderdate""",
        ))
    for drill in range(4):
        custkey = (137 * (13 * round_index + drill)) % customer_count + 1
        statements.append((
            "q3_customer",
            f"""select l_orderkey,
                   sum(l_extendedprice * (1 - l_discount)) as rev,
                   o_orderdate, o_shippriority
            from customer, orders, lineitem
            where o_orderkey = l_orderkey and c_custkey = o_custkey
              and c_custkey = {custkey}
              and o_orderdate < date('1995-03-15')
              and l_shipdate > date('1995-03-15')
            group by l_orderkey, o_orderdate, o_shippriority
            order by rev desc, o_orderdate""",
        ))
    for drill in range(8):
        custkey = (311 * (17 * round_index + drill)) % customer_count + 1
        statements.append((
            "order_browse",
            f"""select o_orderkey, o_orderdate, o_totalprice
            from orders where o_custkey = {custkey}
            order by o_orderdate desc""",
        ))
    return statements


@experiment(
    "service_throughput",
    "Query service: warm parameterized plan cache vs cold re-planning "
    "on a TPC-D Q3/Q10 replay workload",
)
def service_throughput(
    scale_factor: float = DEFAULT_SCALE, runs: int = DEFAULT_RUNS, **_ignored
) -> ExperimentReport:
    """QPS with and without the plan cache on a dashboard replay.

    Cold baseline: every statement goes through ``run_query`` — parse,
    optimize, execute, exactly what each arrival costs without a
    service. Warm: the same statements submitted to a
    :class:`~repro.service.QueryService`, whose cache normalizes away
    the rotating literals (one plan per statement class) so arrivals
    pay execution only. Both sides run the identical statement texts
    and the row payloads are asserted equal per statement.

    The machine-readable payload lands in ``BENCH_service_ops.json``.
    """
    import time as _time

    from repro.api import run_query
    from repro.errors import AdmissionError, QueryTimeout
    from repro.service import QueryService
    from repro.verify.oracle import normalized

    rounds = max(3, runs)
    database = tpcd_database(scale_factor)
    customer_count = database.store("customer").row_count()
    workload = [
        statement
        for index in range(rounds)
        for statement in _service_workload(index, customer_count)
    ]

    # Cold: re-plan every arrival.
    cold_rows = []
    cold_started = _time.perf_counter()
    for _class_name, sql in workload:
        cold_rows.append(run_query(database, sql).rows)
    cold_elapsed = _time.perf_counter() - cold_started

    # Warm: same texts through the service. One untimed priming round
    # populates the cache; the timed pass then measures steady state.
    with QueryService(database, workers=2, queue_depth=1024) as service:
        for _class_name, sql in _service_workload(0, customer_count):
            service.query(sql)
        prime_stats = service.stats()
        warm_started = _time.perf_counter()
        futures = [service.submit(sql) for _class_name, sql in workload]
        warm_rows = [future.result().rows for future in futures]
        warm_elapsed = _time.perf_counter() - warm_started
        stats = service.stats()

    for (class_name, sql), cold, warm in zip(workload, cold_rows, warm_rows):
        if normalized(cold) != normalized(warm):
            raise AssertionError(
                f"service rows diverge from cold rows for {class_name}: "
                f"{sql[:80]}..."
            )

    # Overloaded: the same replay against a deliberately undersized
    # service — a tiny admission queue plus a tight per-query deadline.
    # This measures the resilience path instead of raw throughput:
    # arrivals beyond the queue fail fast with AdmissionError, admitted
    # stragglers are stopped by their deadline mid-execution, and the
    # service keeps draining the whole time.
    overload_deadline = 0.25
    completed = timed_out = rejected = 0
    with QueryService(
        database, workers=2, queue_depth=8,
        default_timeout=overload_deadline,
    ) as constrained:
        overload_started = _time.perf_counter()
        pending = []
        for _class_name, sql in workload:
            try:
                pending.append(constrained.submit(sql))
            except AdmissionError:
                rejected += 1
        for future in pending:
            try:
                future.result()
                completed += 1
            except QueryTimeout:
                timed_out += 1
        overload_elapsed = _time.perf_counter() - overload_started
        overload_stats = constrained.stats()
    if overload_stats.timeouts != timed_out or overload_stats.rejected != rejected:
        raise AssertionError(
            "service resilience counters disagree with observed outcomes: "
            f"stats timeouts={overload_stats.timeouts} rejected="
            f"{overload_stats.rejected} vs seen {timed_out}/{rejected}"
        )

    cold_qps = len(workload) / cold_elapsed
    warm_qps = len(workload) / warm_elapsed
    speedup = warm_qps / cold_qps
    timed = stats.queries - prime_stats.queries
    hits = stats.cache["hits"] - prime_stats.cache["hits"]
    hit_rate = hits / timed if timed else 0.0

    report = ExperimentReport(
        "service_throughput",
        f"TPC-D Q3/Q10 replay, {len(workload)} statements over {rounds} "
        f"rounds (SF {scale_factor})",
        headers=("path", "elapsed (s)", "QPS", "speedup"),
    )
    report.add_row("cold re-planning", f"{cold_elapsed:.2f}", f"{cold_qps:.1f}", "1.00x")
    report.add_row(
        "warm plan cache", f"{warm_elapsed:.2f}", f"{warm_qps:.1f}",
        f"{speedup:.2f}x",
    )
    report.add_row(
        f"overloaded (queue=8, {overload_deadline * 1000:.0f}ms deadline)",
        f"{overload_elapsed:.2f}",
        f"{completed / overload_elapsed:.1f}",
        "-",
    )
    report.add_note(
        f"overload scenario: {completed} completed, {timed_out} stopped "
        f"by the {overload_deadline * 1000:.0f}ms deadline, {rejected} "
        "rejected at admission — every submitted statement resolved"
    )
    report.add_note(
        f"warm pass: p50={stats.p50_ms:.1f}ms p95={stats.p95_ms:.1f}ms, "
        f"cache hit rate {hit_rate:.0%} over the timed statements "
        f"({stats.cache['misses']} total plans for {stats.queries} queries)"
    )
    report.add_note(
        "every literal rotates per round (dates, custkeys); the hits "
        "are auto-parameterization at work, not text-identical replay"
    )
    report.data["speedup"] = speedup
    report.data["json_name"] = "service_ops"
    report.data["json"] = {
        "experiment": "service_throughput",
        "scale_factor": scale_factor,
        "rounds": rounds,
        "statements": len(workload),
        "cold": {"elapsed_seconds": cold_elapsed, "qps": cold_qps},
        "warm": {
            "elapsed_seconds": warm_elapsed,
            "qps": warm_qps,
            "p50_ms": stats.p50_ms,
            "p95_ms": stats.p95_ms,
            "hit_rate": hit_rate,
            "rejected": stats.rejected,
        },
        "overloaded": {
            "elapsed_seconds": overload_elapsed,
            "deadline_seconds": overload_deadline,
            "queue_depth": 8,
            "completed": completed,
            "timeouts": timed_out,
            "rejected": rejected,
        },
        "speedup": speedup,
    }
    return report


# ----------------------------------------------------------------------
# Order enforcement: prefix-aware partial sort + shared sort segments
# ----------------------------------------------------------------------


def _segment_database() -> Database:
    """Two merge joins sharing the leading join column ``x``.

    ``r`` joins ``s`` on (x, y) and ``t2`` on (x, w); only the
    segment-aligned (x, w) key sequence for the second join reuses the
    (x, y, ...) order the first join already delivered. The t2 join's
    conjuncts are deliberately written w-first so the unaligned
    optimizer picks the (w, x) sequence and pays a fresh full sort.
    """
    import random

    rng = random.Random(11)
    db = Database()
    db.create_table(
        TableSchema(
            "r",
            [
                Column("id", INTEGER, nullable=False),
                Column("x", INTEGER, nullable=False),
                Column("y", INTEGER, nullable=False),
                Column("w", INTEGER, nullable=False),
            ],
            primary_key=("id",),
        ),
        rows=[
            (i, rng.randint(0, 40), rng.randint(0, 10), rng.randint(0, 10))
            for i in range(4000)
        ],
    )
    db.create_table(
        TableSchema(
            "s",
            [
                Column("x", INTEGER, nullable=False),
                Column("y", INTEGER, nullable=False),
            ],
        ),
        rows=[(rng.randint(0, 40), rng.randint(0, 10)) for _ in range(1000)],
    )
    db.create_table(
        TableSchema(
            "t2",
            [
                Column("x", INTEGER, nullable=False),
                Column("w", INTEGER, nullable=False),
            ],
        ),
        rows=[(rng.randint(0, 40), rng.randint(0, 10)) for _ in range(1000)],
    )
    return db


_SEGMENT_SQL = (
    "select r.id from r, s, t2 "
    "where r.x = s.x and r.y = s.y "
    "and r.w = t2.w and r.x = t2.x "
    "order by r.id"
)


@experiment(
    "order_enforcement",
    "Extension: prefix-aware partial sort vs full sort, and shared "
    "sort segments across merge joins",
)
def order_enforcement(
    runs: int = DEFAULT_RUNS, **_ignored
) -> ExperimentReport:
    """Wall-clock and plan-shape payoff of segmented order enforcement.

    Part A is an operator-level microbench: the same prefix-sorted
    input (120k rows ordered on ``g``, random ``v``) is brought to the
    full (g, v) order by ``SortOp`` and by ``PartialSortOp`` with a
    one-key prefix, at several prefix-group cardinalities. Sort memory
    is constrained to 4096 rows, the regime the operator targets: the
    full sort must cut external runs and heap-merge the whole input,
    while per-group sorts stay in memory whenever a group fits. Rows
    are byte-compared between the arms on every configuration. At 10
    groups (12k rows each) the groups themselves overflow sort memory
    and the partial sort degrades gracefully toward the full sort's
    spill behavior — that row is reported but not part of the
    acceptance check.

    Part B plans the shared-segment query (two merge joins on (x, y)
    and (x, w), joined-column conjuncts written against the alignment)
    with partial sort on vs off under the sort/merge-only repertoire,
    asserting the aligned build uses strictly fewer full sorts and the
    same rows.

    The machine-readable payload lands in
    ``BENCH_order_enforcement.json`` when run through
    ``python -m repro.bench``.
    """
    from repro.core import OrderSpec
    from repro.executor import ExecutionContext, PartialSortOp, SortOp
    from repro.executor.operators import PhysicalOperator, chunked
    from repro.expr import RowSchema, col

    import random

    g_column, v_column = col("m", "g"), col("m", "v")
    schema = RowSchema([g_column, v_column])
    order = OrderSpec.of(g_column, v_column)

    class PrefixSortedRows(PhysicalOperator):
        """Static in-memory source delivering rows ordered on ``g``."""

        def __init__(self, rows):
            super().__init__(schema)
            self._rows = rows

        def _batches(self, context):
            yield from chunked(self._rows, context.batch_size)

        def label(self):
            return "prefix-sorted rows"

    total_rows = 120_000
    sort_memory = 4096
    timing_runs = max(1, min(runs, 3))
    scratch = Database()

    def best_of(make_operator):
        best = float("inf")
        context = rows = None
        for _ in range(timing_runs):
            context = ExecutionContext(scratch, sort_memory_rows=sort_memory)
            operator = make_operator()
            started = time.perf_counter()
            rows = operator.execute(context)
            best = min(best, time.perf_counter() - started)
        return best, rows, context

    report = ExperimentReport(
        "order_enforcement",
        f"segmented enforcement: {total_rows} prefix-sorted rows, sort "
        f"memory {sort_memory} rows, best of {timing_runs}",
        headers=(
            "input",
            "rows/group",
            "full sort (ms)",
            "partial sort (ms)",
            "speedup",
            "spill pages (full/partial)",
        ),
    )
    payload: Dict[str, object] = {
        "experiment": "order_enforcement",
        "total_rows": total_rows,
        "sort_memory_rows": sort_memory,
        "runs": timing_runs,
        "microbench": [],
    }
    rng = random.Random(42)
    for groups in (10, 100, 1000):
        rows = [(i % groups, rng.randint(0, 1 << 30)) for i in range(total_rows)]
        rows.sort(key=lambda row: row[0])
        full_seconds, full_rows, full_context = best_of(
            lambda: SortOp(PrefixSortedRows(rows), order)
        )
        partial_seconds, partial_rows, partial_context = best_of(
            lambda: PartialSortOp(PrefixSortedRows(rows), order, 1)
        )
        if full_rows != partial_rows:
            raise AssertionError(
                f"partial sort diverges from full sort at {groups} groups"
            )
        speedup = full_seconds / partial_seconds
        if groups >= 100 and speedup < 1.5:
            report.add_note(
                f"WARNING: speedup {speedup:.2f}x below the 1.5x target "
                f"at {groups} groups"
            )
        report.add_row(
            f"{groups} groups",
            total_rows // groups,
            f"{full_seconds * 1000:.1f}",
            f"{partial_seconds * 1000:.1f}",
            f"{speedup:.2f}x",
            f"{full_context.spill_pages}/{partial_context.spill_pages}",
        )
        payload["microbench"].append(
            {
                "groups": groups,
                "rows_per_group": total_rows // groups,
                "full_sort_seconds": full_seconds,
                "partial_sort_seconds": partial_seconds,
                "speedup": speedup,
                "full_spill_pages": full_context.spill_pages,
                "partial_spill_pages": partial_context.spill_pages,
                "rows_sorted": full_context.rows_sorted,
                "rows_partial_sorted": partial_context.rows_partial_sorted,
            }
        )

    # Part B: shared sort segments across consecutive merge joins.
    merge_only = OptimizerConfig(
        enable_hash_join=False,
        enable_hash_group_by=False,
        enable_index_nlj=False,
    )
    unaligned_config = OptimizerConfig(
        enable_hash_join=False,
        enable_hash_group_by=False,
        enable_index_nlj=False,
        enable_partial_sort=False,
    )
    segment_db = _segment_database()
    aligned_wall, aligned_sim, aligned = _timed_runs(
        segment_db, _SEGMENT_SQL, merge_only, timing_runs
    )
    unaligned_wall, unaligned_sim, unaligned = _timed_runs(
        segment_db, _SEGMENT_SQL, unaligned_config, timing_runs
    )
    if aligned.rows != unaligned.rows:
        raise AssertionError("segment-aligned build changed the result rows")
    aligned_sorts = aligned.plan.sort_count()
    unaligned_sorts = unaligned.plan.sort_count()
    if aligned_sorts >= unaligned_sorts:
        raise AssertionError(
            "segment alignment must use strictly fewer full sorts: "
            f"{aligned_sorts} vs {unaligned_sorts}"
        )
    report.add_row(
        "merge-join segments ON",
        "-",
        "-",
        f"{aligned_wall * 1000:.1f}",
        f"sorts {aligned_sorts} + partial {aligned.plan.partial_sort_count()}",
        "-",
    )
    report.add_row(
        "merge-join segments OFF",
        "-",
        "-",
        f"{unaligned_wall * 1000:.1f}",
        f"sorts {unaligned_sorts}",
        "-",
    )
    payload["shared_segments"] = {
        "sql": _SEGMENT_SQL,
        "aligned_wall_seconds": aligned_wall,
        "aligned_simulated_ms": aligned_sim,
        "aligned_full_sorts": aligned_sorts,
        "aligned_partial_sorts": aligned.plan.partial_sort_count(),
        "unaligned_wall_seconds": unaligned_wall,
        "unaligned_simulated_ms": unaligned_sim,
        "unaligned_full_sorts": unaligned_sorts,
        "rows": len(aligned.rows),
    }
    report.add_note(
        "byte-compared: partial vs full sort rows per microbench row, "
        "aligned vs unaligned rows for the segment query"
    )
    report.add_note(
        "10-group row: 12k-row groups overflow the 4096-row sort memory, "
        "so the partial sort spills per group and converges toward the "
        "full sort — the win comes from groups that fit"
    )
    report.data["json"] = payload
    return report


# ---------------------------------------------------------------------------
# Extension: partition-parallel plans (partitioned storage + exchanges)
# ---------------------------------------------------------------------------

# The ISSUE pins this experiment at TPC-D scale factor >= 0.1; smaller
# --sf values are clamped up so the recorded speedups always come from
# a non-toy table (150k orders / ~600k lineitems).
_PARALLEL_SCALE_FLOOR = 0.1
_PARALLEL_TPCD_CACHE: Dict[float, Database] = {}

# Four roughly equal date bands over the generated 1992..1998 span.
_ORDERS_DATE_BOUNDARIES = (
    datetime.date(1993, 7, 1),
    datetime.date(1995, 1, 1),
    datetime.date(1996, 7, 1),
)


def partitioned_tpcd_database(scale_factor: float) -> Database:
    """TPC-D under the partitioned physical design.

    ``orders`` is range-partitioned on ``o_orderdate`` (four date
    bands) and bulk-loaded in date order, so the *local*
    ``idx_o_orderdate`` is physically clustered and each partition
    scan delivers date order for free — ``pk_orders`` consequently
    loses its clustered flag. ``lineitem`` is hash-partitioned on
    ``l_orderkey``; routing preserves per-partition arrival order, so
    the clustered ``l_orderkey`` index stays physically true inside
    every partition. All other tables keep the warehouse layout.
    """
    if scale_factor not in _PARALLEL_TPCD_CACHE:
        generator = TpcdGenerator(scale_factor)
        schemas = tpcd_schema()
        for table, spec in (
            (
                "orders",
                range_spec(["o_orderdate"], list(_ORDERS_DATE_BOUNDARIES)),
            ),
            ("lineitem", hash_spec(["l_orderkey"], 4)),
        ):
            plain = schemas[table]
            schemas[table] = TableSchema(
                plain.name,
                plain.columns,
                primary_key=plain.primary_key,
                unique_keys=plain.unique_keys,
                partitioning=spec,
            )
        database = Database(4096)
        database.create_table(schemas["region"], generator.region_rows())
        database.create_table(schemas["nation"], generator.nation_rows())
        database.create_table(schemas["supplier"], generator.supplier_rows())
        database.create_table(schemas["customer"], generator.customer_rows())
        database.create_table(schemas["part"], generator.part_rows())
        database.create_table(schemas["partsupp"], generator.partsupp_rows())
        orders, lineitems = generator.order_and_lineitem_rows()
        orders.sort(key=lambda row: (row[4], row[0]))  # physical date order
        database.create_table(schemas["orders"], orders)
        database.create_table(schemas["lineitem"], lineitems)
        for index in tpcd_indexes():
            if index.name == "pk_orders":
                index = Index.on(
                    "pk_orders", "orders", ["o_orderkey"], unique=True
                )
            elif index.name == "idx_o_orderdate":
                index = Index.on(
                    "idx_o_orderdate", "orders", ["o_orderdate"],
                    clustered=True,
                )
            database.create_index(index)
        database.reset_io(cold=True)
        _PARALLEL_TPCD_CACHE[scale_factor] = database
    return _PARALLEL_TPCD_CACHE[scale_factor]


_PARALLEL_CASES = (
    (
        "pruned_scan",
        "date-band aggregate",
        # The predicate covers exactly the third date band: the
        # partitioned build prunes to one partition whose clustered
        # local index also delivers the GROUP BY/ORDER BY date order.
        "select o_orderdate, count(*) as n, sum(o_totalprice) as revenue "
        "from orders "
        "where o_orderdate >= date('1995-01-01') "
        "and o_orderdate < date('1996-07-01') "
        "group by o_orderdate order by o_orderdate",
    ),
    (
        "merge_order",
        "order by o_orderdate",
        # The pinned acceptance query: a merge exchange over four local
        # clustered index scans replaces the 150k-row full sort.
        "select o_orderkey, o_orderdate from orders order by o_orderdate",
    ),
    (
        "colocated_group",
        "group by l_orderkey",
        # Grouping on the hash-partitioning column: complete
        # per-partition aggregation below the gather, no combine stage.
        "select l_orderkey, count(*) as n, sum(l_quantity) as quantity "
        "from lineitem group by l_orderkey",
    ),
)

_PARALLEL_KINDS = (
    OpKind.PARTITION_SCAN,
    OpKind.GATHER_EXCHANGE,
    OpKind.MERGE_EXCHANGE,
    OpKind.PARTITION_SPLIT,
)


def _partitions_touched(plan) -> List[int]:
    touched = set()
    for node in plan.find_all(OpKind.PARTITION_SCAN):
        touched.update(node.args["partitions"])
    for node in plan.find_all(OpKind.INDEX_SCAN):
        if "partition" in node.args:
            touched.add(node.args["partition"])
    return sorted(touched)


def _group_operator_count(plan) -> int:
    return len(plan.find_all(OpKind.GROUP_HASH)) + len(
        plan.find_all(OpKind.GROUP_SORTED)
    )


@experiment(
    "parallel_ops",
    "Extension: partition-parallel plans vs single-stream on TPC-D",
)
def parallel_ops(
    scale_factor: float = _PARALLEL_SCALE_FLOOR,
    runs: int = DEFAULT_RUNS,
    **_ignored,
) -> ExperimentReport:
    """Partitioned vs single-stream plans on the same partitioned store.

    Three TPC-D queries run under the default build
    (``enable_partitioning`` on) and under ``enable_partitioning=False``
    on the *same* partitioned database, byte-comparing rows each time:

    * ``pruned_scan`` — a date-band aggregate whose predicate selects
      exactly one range partition; pruning must cut simulated I/O.
    * ``merge_order`` — ORDER BY on the range-partitioning column; the
      merge exchange over clustered local index scans must report
      ``sort_count() == 0`` while the single-stream plan pays a full
      sort (asserted, both ways).
    * ``colocated_group`` — GROUP BY on the hash-partitioning column;
      aggregation pushes below the gather, one operator per partition.

    The recorded speedups are simulated I/O and estimated plan cost
    (the cost model divides per-stream CPU across workers). Wall clock
    is reported too but is *not* the claim: partition workers are
    Python threads sharing the GIL, so CPU-bound stages do not speed
    up in wall time here.
    """
    scale_factor = max(float(scale_factor), _PARALLEL_SCALE_FLOOR)
    timing_runs = max(1, min(runs, 3))
    database = partitioned_tpcd_database(scale_factor)
    partitioned_config = OptimizerConfig()
    single_config = OptimizerConfig(enable_partitioning=False)

    report = ExperimentReport(
        "parallel_ops",
        f"TPC-D sf {scale_factor}: partitioned plans vs single-stream "
        f"on the same partitioned store, mean of {timing_runs}",
        headers=(
            "case",
            "part wall (ms)",
            "single wall (ms)",
            "sim I/O ms (part/single)",
            "sorts (part/single)",
            "est. cost speedup",
        ),
    )
    payload: Dict[str, object] = {
        "experiment": "parallel_ops",
        "scale_factor": scale_factor,
        "runs": timing_runs,
        "orders_rows": database.store("orders").heap.row_count,
        "lineitem_rows": database.store("lineitem").heap.row_count,
        "orders_partitions": len(_ORDERS_DATE_BOUNDARIES) + 1,
        "lineitem_partitions": 4,
        "cases": [],
    }

    for case_id, label, sql in _PARALLEL_CASES:
        on_wall, on_sim, on = _timed_runs(
            database, sql, partitioned_config, timing_runs
        )
        off_wall, off_sim, off = _timed_runs(
            database, sql, single_config, timing_runs
        )
        if " order by" in sql:
            rows_match = on.rows == off.rows
        else:
            rows_match = sorted(on.rows) == sorted(off.rows)
        if not rows_match:
            raise AssertionError(f"{case_id}: partitioned plan changed rows")
        for kind in _PARALLEL_KINDS:
            if off.plan.find_all(kind):
                raise AssertionError(
                    f"{case_id}: {kind} leaked into the single-stream plan"
                )
        on_cost = on.plan.cost.total_ms
        off_cost = off.plan.cost.total_ms
        if on_cost > off_cost:
            # The single-stream space is a subset of the partitioned
            # search space, so the chosen plan can never cost more.
            raise AssertionError(
                f"{case_id}: partitioned plan estimated dearer "
                f"({on_cost:.2f} vs {off_cost:.2f})"
            )
        case: Dict[str, object] = {
            "id": case_id,
            "sql": sql,
            "rows": len(on.rows),
            "partitioned": {
                "wall_seconds": on_wall,
                "simulated_ms": on_sim,
                "estimated_cost_ms": on_cost,
                "full_sorts": on.plan.sort_count(),
                "partial_sorts": on.plan.partial_sort_count(),
                "merge_exchanges": len(
                    on.plan.find_all(OpKind.MERGE_EXCHANGE)
                ),
                "gather_exchanges": len(
                    on.plan.find_all(OpKind.GATHER_EXCHANGE)
                ),
                "partitions_touched": _partitions_touched(on.plan),
                "group_operators": _group_operator_count(on.plan),
            },
            "single_stream": {
                "wall_seconds": off_wall,
                "simulated_ms": off_sim,
                "estimated_cost_ms": off_cost,
                "full_sorts": off.plan.sort_count(),
                "partial_sorts": off.plan.partial_sort_count(),
                "group_operators": _group_operator_count(off.plan),
            },
            "wall_speedup": (off_wall / on_wall) if on_wall else None,
            "simulated_io_speedup": (off_sim / on_sim) if on_sim else None,
            "estimated_cost_speedup": (off_cost / on_cost)
            if on_cost
            else None,
        }
        payload["cases"].append(case)
        report.add_row(
            label,
            f"{on_wall * 1000:.1f}",
            f"{off_wall * 1000:.1f}",
            f"{on_sim:.1f}/{off_sim:.1f}",
            f"{on.plan.sort_count()}/{off.plan.sort_count()}",
            f"{(off_cost / on_cost):.2f}x" if on_cost else "-",
        )

        if case_id == "pruned_scan":
            touched = case["partitioned"]["partitions_touched"]
            if len(touched) >= 4:
                raise AssertionError(
                    f"pruned_scan touched every partition: {touched}"
                )
            if not on_sim < off_sim:
                raise AssertionError(
                    "pruning did not cut simulated I/O: "
                    f"{on_sim:.1f} vs {off_sim:.1f}"
                )
        elif case_id == "merge_order":
            # The acceptance pin, asserted in both directions.
            if not on.plan.find_all(OpKind.MERGE_EXCHANGE):
                raise AssertionError(
                    "merge_order lost its merge exchange:\n"
                    + on.plan.explain()
                )
            if on.plan.sort_count() != 0:
                raise AssertionError(
                    "merge exchange failed to eliminate the sort"
                )
            if off.plan.sort_count() < 1:
                raise AssertionError(
                    "single-stream plan avoided the sort it must pay"
                )
        elif case_id == "colocated_group":
            pushed = case["partitioned"]["group_operators"]
            if pushed != 4:
                raise AssertionError(
                    f"expected 4 per-partition group operators, saw {pushed}"
                )

    report.add_note(
        "byte-compared: partitioned vs single-stream rows per case "
        "(ordered queries compared in order)"
    )
    report.add_note(
        "speedups are simulated I/O and estimated cost; wall clock is "
        "reported honestly but partition workers share the GIL, so "
        "CPU-bound stages show no wall-time win in this engine"
    )
    report.data["json"] = payload
    return report


@experiment(
    "workload_feedback",
    "Workload loop: fleet replay, cardinality feedback, regression gate "
    "on a skewed 120-statement fleet",
)
def workload_feedback(
    runs: int = DEFAULT_RUNS, **_ignored
) -> ExperimentReport:
    """One feedback round over the skewed proving-ground fleet.

    Replays the fleet through a :class:`~repro.service.QueryService`,
    joins every plan node's estimated cardinality against the rows its
    operator actually produced, distills the misestimates into stats
    corrections (selectivity overrides keyed by predicate fingerprint,
    observed NDVs for group/distinct keys), applies them through
    ``Catalog.apply_feedback``, and replays again against the corrected
    statistics. The regression gate re-pins the incumbent plan for any
    statement whose plan changed and replayed worse.

    Asserted acceptance criteria: the overall q-error geometric mean
    strictly improves, no operator kind gets worse, rows are
    byte-identical across all three replays, and the regression log
    admits nothing (empty, or every entry ``incumbent-retained``).

    The machine-readable payload lands in ``BENCH_workload_ops.json``.
    """
    from repro.workload import (
        FleetRunner,
        build_skewed_database,
        build_skewed_fleet,
    )

    # 15 rounds x 8 statement classes = 120 statements; `runs` scales
    # the fleet up for longer soaks but never below the 100-statement
    # floor the workload loop is specified against.
    rounds = max(15, 3 * runs)
    database = build_skewed_database()
    fleet = build_skewed_fleet(rounds=rounds)

    with FleetRunner(database, fleet) as runner:
        outcome = runner.run_feedback_round()
        regression_log = list(runner.service.plan_regressions())
        stats = runner.service.stats()

    before = outcome.baseline.qerror()
    after = outcome.final.qerror()

    mismatches = outcome.mismatches()
    if mismatches:
        raise AssertionError(
            f"feedback changed result rows for {mismatches} — the loop "
            "may only touch estimates"
        )
    if not after.geomean < before.geomean:
        raise AssertionError(
            "feedback did not improve the q-error geomean "
            f"({before.geomean:.3f} -> {after.geomean:.3f})"
        )
    for kind, value in after.by_kind.items():
        baseline_value = before.by_kind.get(kind, 1.0)
        if value > baseline_value + 1e-9:
            raise AssertionError(
                f"operator kind {kind} got worse after feedback: "
                f"{baseline_value:.3f} -> {value:.3f}"
            )
    admitted = [
        record for record in regression_log
        if record.action != "incumbent-retained"
    ]
    if admitted:
        raise AssertionError(
            f"regression gate admitted {len(admitted)} regressed plans"
        )

    report = ExperimentReport(
        "workload_feedback",
        f"skewed fleet, {len(fleet)} statements over {rounds} rounds "
        "(one feedback round)",
        headers=(
            "operator", "q-error before", "q-error after", "change"
        ),
    )
    kinds = sorted(
        set(before.by_kind) | set(after.by_kind),
        key=lambda kind: -before.by_kind.get(kind, 1.0),
    )
    for kind in kinds:
        b = before.by_kind.get(kind, 1.0)
        a = after.by_kind.get(kind, 1.0)
        delta = "improved" if a < b - 1e-9 else "unchanged"
        report.add_row(kind, f"{b:.3f}", f"{a:.3f}", delta)
    report.add_row(
        "(overall geomean)",
        f"{before.geomean:.3f}",
        f"{after.geomean:.3f}",
        f"{before.geomean / after.geomean:.2f}x better",
    )
    report.add_note(
        f"{outcome.applied} stats corrections applied "
        f"({len(outcome.corrections.selectivity)} selectivity overrides, "
        f"{len(outcome.corrections.ndv)} column NDVs, "
        f"{len(outcome.corrections.joint_ndv)} joint NDVs); "
        f"{len(outcome.plan_changes)} plans changed on re-optimization"
    )
    report.add_note(
        f"regression gate: {len(outcome.regressions)} challengers "
        f"rejected, 0 admitted; service logged "
        f"{stats.plan_regressions} incumbent-retained entries"
    )
    report.add_note(
        "rows byte-identical across baseline, re-optimized, and gated "
        "final replays (asserted per statement)"
    )
    report.data["json_name"] = "workload_ops"
    report.data["json"] = {
        "experiment": "workload_feedback",
        "statements": len(fleet),
        "rounds": rounds,
        "observations": {"before": before.count, "after": after.count},
        "q_error": {
            "before": {
                "geomean": before.geomean,
                "mean": before.mean,
                "p95": before.p95,
                "worst": before.worst,
                "by_kind": before.by_kind,
            },
            "after": {
                "geomean": after.geomean,
                "mean": after.mean,
                "p95": after.p95,
                "worst": after.worst,
                "by_kind": after.by_kind,
            },
        },
        "corrections": {
            "applied": outcome.applied,
            "selectivity_overrides": len(outcome.corrections.selectivity),
            "column_ndvs": len(outcome.corrections.ndv),
            "joint_ndvs": len(outcome.corrections.joint_ndv),
        },
        "plan_changes": len(outcome.plan_changes),
        "regressions": {
            "rejected": len(outcome.regressions),
            "admitted": len(admitted),
            "log": [record._asdict() for record in regression_log],
        },
        "row_mismatches": mismatches,
    }
    return report
