"""CLI entry point: ``python -m repro.bench <experiment> [...]``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.harness import available_experiments, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--sf",
        type=float,
        default=0.02,
        help="TPC-D scale factor for experiments that use it (default 0.02)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=5,
        help="repetitions for timed experiments (default 5)",
    )
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=Path("."),
        help="directory for machine-readable BENCH_<id>.json payloads "
        "(experiments that produce one; default: current directory)",
    )
    arguments = parser.parse_args(argv)

    if arguments.experiments == ["list"]:
        for experiment_id, title in available_experiments():
            print(f"{experiment_id:20s} {title}")
        return 0

    wanted = arguments.experiments
    if wanted == ["all"]:
        wanted = [experiment_id for experiment_id, _ in available_experiments()]

    for experiment_id in wanted:
        report = run_experiment(
            experiment_id,
            scale_factor=arguments.sf,
            runs=arguments.runs,
        )
        print(report.render())
        payload = report.data.get("json")
        if payload is not None:
            arguments.json_dir.mkdir(parents=True, exist_ok=True)
            json_name = report.data.get("json_name", experiment_id)
            target = arguments.json_dir / f"BENCH_{json_name}.json"
            target.write_text(json.dumps(payload, indent=2, sort_keys=True))
            print(f"wrote {target}")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
