"""Benchmark harness: regenerate every table and figure of the paper.

Run from the command line::

    python -m repro.bench list           # available experiments
    python -m repro.bench table1         # Table 1 (Q3 elapsed times)
    python -m repro.bench fig7 fig8      # plan figures
    python -m repro.bench all --sf 0.02  # everything

or programmatically::

    from repro.bench import run_experiment
    report = run_experiment("table1", scale_factor=0.02)
    print(report.render())
"""

from repro.bench.harness import (
    ExperimentReport,
    available_experiments,
    run_experiment,
)

__all__ = ["ExperimentReport", "available_experiments", "run_experiment"]
