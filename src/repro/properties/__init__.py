"""Plan/stream properties and their propagation (paper Section 5.2.1).

Every stream between plan operators carries a
:class:`~repro.properties.stream.StreamProperties`: its columns, order
property, key property (with the one-record condition), FD property, the
predicates applied so far, and a cardinality estimate. The functions in
:mod:`~repro.properties.propagate` compute an operator's output
properties from its inputs — the paper's "each operator determines the
properties of its output stream".
"""

from repro.properties.partitioning import (
    SINGLETON,
    PartitioningProperty,
    hash_partitioning,
    range_partitioning,
    round_robin,
)
from repro.properties.stream import KeyProperty, StreamProperties
from repro.properties.propagate import (
    propagate_filter,
    propagate_group_by,
    propagate_join,
    propagate_project,
    propagate_sort,
)

__all__ = [
    "KeyProperty",
    "PartitioningProperty",
    "SINGLETON",
    "hash_partitioning",
    "range_partitioning",
    "round_robin",
    "StreamProperties",
    "propagate_filter",
    "propagate_group_by",
    "propagate_join",
    "propagate_project",
    "propagate_sort",
]
