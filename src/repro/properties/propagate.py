"""Property propagation through plan operators (Section 5.2.1).

Each function maps input :class:`StreamProperties` to output properties
for one operator kind. Cardinality numbers are supplied by the caller
(the cost model owns selectivity estimation); everything else is derived
here.
"""

from __future__ import annotations

from dataclasses import replace
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.catalog import TableSchema
from repro.core.equivalence import EquivalenceClasses
from repro.core.fd import FDSet, fd
from repro.core.instrument import COUNTERS
from repro.core.ordering import OrderKey, OrderSpec
from repro.expr.analysis import analyze_predicates, columns_of
from repro.expr.nodes import ColumnRef, Expression
from repro.expr.schema import RowSchema
from repro.properties.partitioning import (
    SINGLETON,
    PartitioningProperty,
    round_robin,
)
from repro.properties.stream import KeyProperty, StreamProperties


def base_table_properties(
    alias: str, table: TableSchema, cardinality: Optional[float] = None
) -> StreamProperties:
    """Properties of a raw (unordered) scan of ``table`` as ``alias``."""
    schema = RowSchema(
        ColumnRef(alias, column.name) for column in table.columns
    )
    keys = [
        [ColumnRef(alias, name) for name in key] for key in table.keys()
    ]
    return StreamProperties(
        schema=schema,
        key_property=KeyProperty(keys),
        cardinality=(
            float(table.stats.row_count) if cardinality is None else cardinality
        ),
    )


def propagate_filter(
    properties: StreamProperties,
    predicate: Expression,
    cardinality: float,
) -> StreamProperties:
    """Apply a predicate: harvest constants/equivalences/FDs, keep order."""
    facts = analyze_predicates([predicate])
    equivalences = properties.equivalences.copy()
    for left, right in facts.equalities:
        equivalences.add_equality(left, right)
    constants = frozenset(properties.constants | set(facts.constant_bindings))
    updated = replace(
        properties,
        equivalences=equivalences,
        constants=constants,
        predicates=properties.predicates | frozenset(facts.conjuncts),
        cardinality=max(0.0, cardinality),
    )
    key_property = updated.key_property.simplified(updated.context())
    return replace(updated, key_property=key_property)


def propagate_sort(
    properties: StreamProperties, order: OrderSpec
) -> StreamProperties:
    """A sort replaces the order property and passes everything else on."""
    return properties.with_order(order)


def propagate_project(
    properties: StreamProperties, columns: Sequence[ColumnRef]
) -> StreamProperties:
    """Restrict the stream to ``columns``.

    The order property survives up to the first projected-away column;
    keys lose any member column; FDs are restricted to surviving columns.
    """
    column_set = set(columns)
    surviving_keys: List[OrderKey] = []
    for key in properties.order:
        if key.column not in column_set:
            break
        surviving_keys.append(key)
    restricted_fds = FDSet()
    for dependency in properties.fds:
        if dependency.determines_all():
            # Key FDs never live in the explicit set; defensive skip.
            continue
        if not dependency.head <= column_set:
            continue
        tail = frozenset(dependency.tail) & column_set
        if tail:
            restricted_fds = restricted_fds.add(fd(dependency.head, tail))
    equivalences = _restrict_equivalences(properties.equivalences, column_set)
    return replace(
        properties,
        schema=properties.schema.project(columns),
        order=OrderSpec(surviving_keys),
        key_property=properties.key_property.projected(column_set),
        fds=restricted_fds,
        equivalences=equivalences,
        constants=frozenset(properties.constants & column_set),
        predicates=frozenset(
            predicate
            for predicate in properties.predicates
            if columns_of(predicate) <= column_set
        ),
        ods=properties.ods.restrict(column_set),
        partitioning=properties.partitioning.restricted(column_set),
    )


def _restrict_equivalences(
    equivalences: EquivalenceClasses, columns: Set[ColumnRef]
) -> EquivalenceClasses:
    restricted = EquivalenceClasses()
    for group in equivalences.classes():
        members = sorted(
            (column for column in group if column in columns),
            key=lambda column: (column.qualifier, column.name),
        )
        for column in members[1:]:
            restricted.add_equality(members[0], column)
    return restricted


def _key_bound_by_join(
    key: FrozenSet[ColumnRef],
    other_side_columns: Set[ColumnRef],
    equivalences: EquivalenceClasses,
    constants: Set[ColumnRef],
) -> bool:
    """Whether every column of ``key`` is equated to the other side or a
    constant — the paper's "fully qualified" test for n:1 joins."""
    for column in key:
        if column in constants:
            continue
        members = equivalences.members(column)
        if members & other_side_columns:
            continue
        return False
    return True


# propagate_join memo: (outer content, inner content, conjunct set,
# cardinality, order flag) -> output properties. Propagation is a pure
# function of stream *content* and StreamProperties is frozen, so the
# cached output is safe to share between plans. Join enumeration calls
# propagate_join once per (plan pair x join method); the pairs repeat
# constantly — plans over a subset differ mostly in cost, not content.
_JOIN_MEMO: dict = {}
_JOIN_MEMO_CAP = 8192


def clear_propagation_memo() -> None:
    """Drop the join-propagation memo (test/bench hygiene, like
    ``repro.core.memo.clear_memos``)."""
    _JOIN_MEMO.clear()


def propagate_join(
    outer: StreamProperties,
    inner: StreamProperties,
    join_predicates: Iterable[Expression],
    cardinality: float,
    preserves_outer_order: bool,
) -> StreamProperties:
    """Properties of a join output.

    ``preserves_outer_order`` is True for nested-loop-style joins and
    merge joins (both emit outer records in order); hash joins that
    build on the inner also preserve probe order, so most methods pass
    True — the join operator itself decides.
    """
    join_predicates = list(join_predicates)
    COUNTERS["propagate.join_calls"] = (
        COUNTERS.get("propagate.join_calls", 0) + 1
    )
    memo_key = (
        outer.content_key(),
        inner.content_key(),
        frozenset(join_predicates),
        cardinality,
        preserves_outer_order,
    )
    cached = _JOIN_MEMO.get(memo_key)
    if cached is not None:
        COUNTERS["propagate.join_memo_hits"] = (
            COUNTERS.get("propagate.join_memo_hits", 0) + 1
        )
        return cached
    result = _propagate_join_impl(
        outer, inner, join_predicates, cardinality, preserves_outer_order
    )
    if len(_JOIN_MEMO) >= _JOIN_MEMO_CAP:
        _JOIN_MEMO.clear()
    _JOIN_MEMO[memo_key] = result
    return result


def _propagate_join_impl(
    outer: StreamProperties,
    inner: StreamProperties,
    join_predicates: List[Expression],
    cardinality: float,
    preserves_outer_order: bool,
) -> StreamProperties:
    facts = analyze_predicates(join_predicates)
    equivalences = outer.equivalences.merged_with(inner.equivalences)
    for left, right in facts.equalities:
        equivalences.add_equality(left, right)
    constants = set(outer.constants) | set(inner.constants) | set(
        facts.constant_bindings
    )
    outer_columns = set(outer.schema.columns)
    inner_columns = set(inner.schema.columns)

    inner_at_most_one = inner.key_property.one_record or any(
        _key_bound_by_join(key, outer_columns, equivalences, constants)
        for key in inner.key_property.keys
    )
    outer_at_most_one = outer.key_property.one_record or any(
        _key_bound_by_join(key, inner_columns, equivalences, constants)
        for key in outer.key_property.keys
    )

    fds = outer.fds.union(inner.fds)
    if inner_at_most_one and outer_at_most_one:
        key_property = outer.key_property.union(inner.key_property)
    elif inner_at_most_one:
        # n:1 — outer keys stay keys; inner keys become plain FDs over
        # the inner side's columns.
        key_property = outer.key_property
        fds = _demote_keys(fds, inner)
    elif outer_at_most_one:
        key_property = inner.key_property
        fds = _demote_keys(fds, outer)
    else:
        key_property = outer.key_property.concatenated_with(
            inner.key_property
        )
        fds = _demote_keys(fds, outer)
        fds = _demote_keys(fds, inner)

    order = outer.order if preserves_outer_order else OrderSpec()
    joined = StreamProperties(
        partitioning=_join_partitioning(outer, inner),
        schema=outer.schema.concat(inner.schema),
        order=order,
        key_property=key_property,
        fds=fds,
        equivalences=equivalences,
        constants=frozenset(constants),
        predicates=(
            outer.predicates | inner.predicates | frozenset(facts.conjuncts)
        ),
        cardinality=max(0.0, cardinality),
        ods=outer.ods.union(inner.ods),
    )
    return replace(
        joined, key_property=joined.key_property.simplified(joined.context())
    )


def _join_partitioning(
    outer: StreamProperties, inner: StreamProperties
) -> PartitioningProperty:
    """Partitioning of a join of two per-partition streams.

    A join executes within one partition pair, so a singleton side
    (broadcast to every partition, e.g. the shared build of a
    partition split) leaves the other side's partitioning intact. Two
    genuinely partitioned sides only meet inside a partition-wise join,
    where rows stay in their partition — the output keeps the outer
    side's partitioning (the aligned inner adds nothing new); claiming
    hash columns from *both* sides would require re-proving alignment
    downstream, so we keep the conservative single-side claim.
    """
    if outer.partitioning.is_singleton:
        return inner.partitioning
    if inner.partitioning.is_singleton:
        return outer.partitioning
    return outer.partitioning


def rename_properties(
    properties: StreamProperties, mapping: Dict[ColumnRef, ColumnRef]
) -> StreamProperties:
    """Re-express a stream's properties under new column names.

    Used when a derived table's plan is exposed to the outer block: its
    output columns become ``alias.name`` references. Facts that cannot
    be fully translated (an FD mentioning a projected-away column, the
    order suffix past an unmapped column) are dropped, never guessed.
    """
    new_schema = RowSchema([mapping[c] for c in properties.schema.columns])
    order_keys: List[OrderKey] = []
    for key in properties.order:
        target = mapping.get(key.column)
        if target is None:
            break
        order_keys.append(key.with_column(target))
    keys = []
    for key in properties.key_property.keys:
        if all(column in mapping for column in key):
            keys.append(frozenset(mapping[column] for column in key))
    fds = FDSet()
    for dependency in properties.fds:
        if dependency.determines_all():
            continue
        if not all(c in mapping for c in dependency.head):
            continue
        tail = frozenset(
            mapping[c] for c in dependency.tail if c in mapping
        )
        if tail:
            fds = fds.add(
                fd((mapping[c] for c in dependency.head), tail)
            )
    equivalences = EquivalenceClasses()
    for group in properties.equivalences.classes():
        mapped = sorted(
            (mapping[c] for c in group if c in mapping),
            key=lambda c: (c.qualifier, c.name),
        )
        for column in mapped[1:]:
            equivalences.add_equality(mapped[0], column)
    return StreamProperties(
        schema=new_schema,
        order=OrderSpec(order_keys),
        key_property=KeyProperty(
            keys, one_record=properties.key_property.one_record
        ),
        fds=fds,
        equivalences=equivalences,
        constants=frozenset(
            mapping[c] for c in properties.constants if c in mapping
        ),
        predicates=frozenset(),
        cardinality=properties.cardinality,
        ods=properties.ods.translate(mapping),
        partitioning=properties.partitioning.renamed(mapping),
    )


def propagate_left_outer_join(
    preserved: StreamProperties,
    null_supplying: StreamProperties,
    on_predicates: Iterable[Expression],
    cardinality: float,
) -> StreamProperties:
    """Properties of ``preserved LEFT OUTER JOIN null_supplying ON ...``.

    Padded rows break most facts about the null-supplying side, so this
    is deliberately conservative:

    * ON equalities do NOT merge equivalence classes (x = y fails on
      padded rows) — but per §4.1, ``x = y`` with x from the preserved
      side yields the one-directional FD ``{x} -> {y}``: rows agreeing
      on x either all matched (y = x) or all padded (y NULL);
    * constants and equivalences of the null side are dropped;
    * the null side's explicit FDs and keys are dropped (NULL padding
      can alias head values);
    * the preserved side's order, keys (when the join is n:1),
      equivalences, constants, and predicates all survive.
    """
    on_predicates = list(on_predicates)
    facts = analyze_predicates(on_predicates)
    preserved_columns = set(preserved.schema.columns)
    null_columns = set(null_supplying.schema.columns)

    fds = preserved.fds
    for left, right in facts.equalities:
        if left in preserved_columns and right in null_columns:
            fds = fds.add(fd([left], [right]))
        elif right in preserved_columns and left in null_columns:
            fds = fds.add(fd([right], [left]))

    # n:1 test against the ON equalities (padding keeps it at-most-one).
    equivalence_probe = EquivalenceClasses(facts.equalities)
    inner_at_most_one = null_supplying.key_property.one_record or any(
        _key_bound_by_join(
            key,
            preserved_columns,
            equivalence_probe,
            set(facts.constant_bindings),
        )
        for key in null_supplying.key_property.keys
    )
    if inner_at_most_one:
        key_property = preserved.key_property
    else:
        key_property = preserved.key_property.concatenated_with(
            null_supplying.key_property
        )

    joined = StreamProperties(
        schema=preserved.schema.concat(null_supplying.schema),
        order=preserved.order,
        key_property=key_property,
        fds=fds,
        equivalences=preserved.equivalences.copy(),
        constants=frozenset(preserved.constants),
        predicates=preserved.predicates,
        cardinality=max(preserved.cardinality, cardinality),
        # NULL padding breaks null-side order facts; only the preserved
        # side's ODs survive.
        ods=preserved.ods,
        partitioning=_join_partitioning(preserved, null_supplying),
    )
    return replace(
        joined, key_property=joined.key_property.simplified(joined.context())
    )


def _demote_keys(fds: FDSet, side: StreamProperties) -> FDSet:
    """Turn a side's keys into explicit FDs over that side's columns.

    Used when a key stops being a key of the join output but still
    determines its own side's columns.
    """
    side_columns = frozenset(side.schema.columns)
    for key in side.key_property.keys:
        tail = side_columns - key
        if tail:
            fds = fds.add(fd(key, tail))
    if side.key_property.one_record and side_columns:
        fds = fds.add(fd((), side_columns))
    return fds


def propagate_group_by(
    properties: StreamProperties,
    group_columns: Sequence[ColumnRef],
    output_schema: RowSchema,
    aggregate_columns: Sequence[ColumnRef],
    cardinality: float,
) -> StreamProperties:
    """Properties of a GROUP BY output.

    The grouping columns key the output and functionally determine the
    aggregate columns. A sort-based group-by's output keeps the input
    order truncated to output columns; hash-based callers should clear
    the order afterwards.
    """
    output_columns = set(output_schema.columns)
    surviving_keys: List[OrderKey] = []
    for key in properties.order:
        if key.column not in output_columns:
            break
        surviving_keys.append(key)
    fds = FDSet()
    for dependency in properties.fds:
        if not dependency.head <= output_columns:
            continue
        tail = frozenset(dependency.tail) & output_columns
        if tail:
            fds = fds.add(fd(dependency.head, tail))
    group_set = frozenset(group_columns)
    if group_set and aggregate_columns:
        fds = fds.add(fd(group_set, aggregate_columns))
    key_property = (
        KeyProperty([group_set])
        if group_set
        else KeyProperty.one_record_condition()
    )
    grouped = StreamProperties(
        schema=output_schema,
        order=OrderSpec(surviving_keys),
        key_property=key_property,
        fds=fds,
        equivalences=_restrict_equivalences(
            properties.equivalences, output_columns
        ),
        constants=frozenset(properties.constants & output_columns),
        predicates=frozenset(
            predicate
            for predicate in properties.predicates
            if columns_of(predicate) <= output_columns
        ),
        cardinality=max(0.0, cardinality),
        ods=properties.ods.restrict(output_columns),
        partitioning=properties.partitioning.restricted(output_columns),
    )
    return replace(
        grouped, key_property=grouped.key_property.simplified(grouped.context())
    )


def propagate_distinct(
    properties: StreamProperties, cardinality: float
) -> StreamProperties:
    """After DISTINCT the full column list is a key."""
    key_property = properties.key_property.union(
        KeyProperty([frozenset(properties.schema.columns)])
    )
    updated = replace(
        properties,
        key_property=key_property,
        cardinality=max(0.0, cardinality),
    )
    return replace(
        updated, key_property=updated.key_property.simplified(updated.context())
    )
