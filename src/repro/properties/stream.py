"""Stream property containers.

Section 5.2.1 lists the properties order optimization cares about: the
order property, predicate property, key property, and FD property. This
module defines their containers; propagation rules live next door.

Design note: a key contributes ``K -> all columns``, but "all columns"
changes as joins widen the stream, so key FDs are *not* stored inside the
explicit FD set. Instead keys live in :class:`KeyProperty` and are folded
in when a :class:`~repro.core.context.OrderContext` is assembled, and
converted to explicit-tail FDs when they stop being keys (e.g. the m:n
join case).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, List, Set, Tuple

from repro.core.context import OrderContext
from repro.core.equivalence import EquivalenceClasses
from repro.core.fd import FDSet, key_fd
from repro.core.instrument import COUNTERS
from repro.core.od import EMPTY_ODS, ODSet
from repro.core.ordering import OrderSpec
from repro.expr.nodes import ColumnRef, Expression
from repro.expr.schema import RowSchema
from repro.properties.partitioning import SINGLETON, PartitioningProperty

ColumnSet = FrozenSet[ColumnRef]


class KeyProperty:
    """The key property: a set of candidate keys, or the one-record flag.

    Per the paper, when some key becomes fully bound by equality
    predicates the whole property collapses to the *one-record
    condition*: at most one record flows, every order is trivially
    satisfied, and every column set is a key.
    """

    def __init__(self, keys: Iterable[Iterable[ColumnRef]] = (), one_record: bool = False):
        self.one_record = one_record
        normalized: List[ColumnSet] = []
        if not one_record:
            for key in keys:
                key_set = frozenset(key)
                if key_set and key_set not in normalized:
                    normalized.append(key_set)
        self.keys: Tuple[ColumnSet, ...] = tuple(normalized)

    @classmethod
    def one_record_condition(cls) -> "KeyProperty":
        return cls(one_record=True)

    def is_empty(self) -> bool:
        return not self.one_record and not self.keys

    def simplified(self, context: OrderContext) -> "KeyProperty":
        """Canonicalize keys: head substitution, constant removal,
        superset pruning, and one-record detection (Section 5.2.1)."""
        if self.one_record:
            return self
        rewritten: List[ColumnSet] = []
        for key in self.keys:
            heads = {
                context.equivalences.head(column)
                for column in key
            }
            remaining = frozenset(
                column for column in heads if not context.is_constant(column)
            )
            if not remaining:
                # Fully qualified by equality predicates: one record.
                return KeyProperty.one_record_condition()
            rewritten.append(remaining)
        # Remove keys that are supersets of other keys ("<=" on keys).
        minimal: List[ColumnSet] = []
        for key in sorted(rewritten, key=len):
            if not any(kept <= key for kept in minimal):
                minimal.append(key)
        return KeyProperty(minimal)

    def union(self, other: "KeyProperty") -> "KeyProperty":
        if self.one_record or other.one_record:
            return KeyProperty.one_record_condition()
        return KeyProperty(self.keys + other.keys)

    def concatenated_with(self, other: "KeyProperty") -> "KeyProperty":
        """All pairwise concatenations K1 ∪ K2 — the m:n join case."""
        if self.one_record:
            return other
        if other.one_record:
            return self
        pairs = [
            mine | theirs for mine in self.keys for theirs in other.keys
        ]
        return KeyProperty(pairs)

    def projected(self, columns: Set[ColumnRef]) -> "KeyProperty":
        """Keys surviving a projection: any key losing a column is gone."""
        if self.one_record:
            return self
        return KeyProperty(
            key for key in self.keys if key <= columns
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KeyProperty)
            and self.one_record == other.one_record
            and set(self.keys) == set(other.keys)
        )

    def __hash__(self) -> int:
        return hash((self.one_record, frozenset(self.keys)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.one_record:
            return "KeyProperty(one-record)"
        rendered = [
            "{" + ", ".join(sorted(str(column) for column in key)) + "}"
            for key in self.keys
        ]
        return "KeyProperty(" + ", ".join(rendered) + ")"


@dataclass(frozen=True)
class StreamProperties:
    """Everything the optimizer knows about a stream.

    Attributes:
        schema: column layout of records in the stream.
        order: the stream's order property (may be empty).
        key_property: candidate keys / one-record condition.
        fds: explicit-tail FDs (keys are kept separately, see module doc).
        equivalences: column equivalence classes from applied predicates.
        constants: columns bound to constants by applied predicates.
        predicates: applied predicate conjuncts (the predicate property).
        cardinality: estimated number of records.
        ods: order dependencies among the stream's columns (empty
            unless ``use_order_dependencies`` harvesting is on).
        partitioning: how this stream divides across parallel workers
            (``SINGLETON`` for every classic sequential stream). On a
            parallel subtree the other properties describe *each*
            partition's stream; ``cardinality`` stays the total.
    """

    schema: RowSchema
    order: OrderSpec = OrderSpec()
    key_property: KeyProperty = KeyProperty()
    fds: FDSet = FDSet()
    equivalences: EquivalenceClasses = None  # type: ignore[assignment]
    constants: ColumnSet = frozenset()
    predicates: FrozenSet[Expression] = frozenset()
    cardinality: float = 0.0
    ods: ODSet = EMPTY_ODS
    partitioning: PartitioningProperty = SINGLETON

    def __post_init__(self):
        if self.equivalences is None:
            object.__setattr__(self, "equivalences", EquivalenceClasses())

    def context(self) -> OrderContext:
        """Assemble the OrderContext reduction needs for this stream.

        Cached per instance: the optimizer asks for the same stream's
        context at every pruning comparison, and properties are frozen
        so the answer cannot change. The cache lives in ``__dict__``
        outside the dataclass fields, so ``dataclasses.replace`` (used
        by ``with_order`` etc.) never carries a stale context over.
        Contexts treat their equivalences as immutable (derivations
        copy-on-write), so no defensive copy is needed here.
        """
        COUNTERS["stream.context_calls"] = (
            COUNTERS.get("stream.context_calls", 0) + 1
        )
        cached = self.__dict__.get("_cached_context")
        if cached is not None:
            COUNTERS["stream.context_memo_hits"] = (
                COUNTERS.get("stream.context_memo_hits", 0) + 1
            )
            return cached
        fds = self.fds
        if self.key_property.one_record:
            fds = fds.add(key_fd(()))
        else:
            for key in self.key_property.keys:
                fds = fds.add(key_fd(key))
        context = OrderContext(
            equivalences=self.equivalences,
            fds=fds,
            constants=self.constants,
            ods=self.ods,
        )
        object.__setattr__(self, "_cached_context", context)
        return context

    def content_key(self) -> Tuple:
        """A hashable digest of everything propagation can observe.

        Two property sets with equal content keys produce content-equal
        outputs under every propagation rule; ``propagate_join`` uses
        this to memoize. Cached per instance the same way as
        :meth:`context`.
        """
        cached = self.__dict__.get("_content_key")
        if cached is None:
            cached = (
                self.schema.columns,
                self.order,
                self.key_property,
                self.fds.as_frozenset(),
                self.equivalences.class_sets(),
                self.constants,
                self.predicates,
                self.cardinality,
                self.ods.as_frozenset(),
                self.partitioning,
            )
            object.__setattr__(self, "_content_key", cached)
        return cached

    def with_order(self, order: OrderSpec) -> "StreamProperties":
        return replace(self, order=order)

    def with_partitioning(
        self, partitioning: PartitioningProperty
    ) -> "StreamProperties":
        return replace(self, partitioning=partitioning)

    def with_cardinality(self, cardinality: float) -> "StreamProperties":
        return replace(self, cardinality=max(0.0, cardinality))

    def columns(self) -> Tuple[ColumnRef, ...]:
        return self.schema.columns
