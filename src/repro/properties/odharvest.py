"""Order-dependency harvesting from derived expressions.

An order dependency ``X |-> Y`` (Szlichta et al., beyond the SIGMOD '96
paper) states that sorting a stream on X also sorts it on Y. The
cheapest sound source of such facts is a *monotonic derived expression*
in the select list: ``val + 1 AS v`` makes ``val`` and ``v`` order
equivalent, ``year(d) AS y`` makes ``d |-> y`` one-directional.

:func:`harvest_expression_ods` turns ``(expression, output column)``
pairs — select items, projection lists — into an :class:`ODSet`. It is
the single harvest point shared by the planner's optimistic context and
the final-projection property derivation, so the monotonicity rules in
:func:`repro.expr.analysis.monotonic_dependency` stay the one authority
on what counts as order preserving.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from repro.core.od import EMPTY_ODS, ODSet, OrderDependency
from repro.expr.analysis import monotonic_dependency
from repro.expr.nodes import ColumnRef, Expression


def harvest_expression_ods(
    items: Iterable[Tuple[Expression, ColumnRef]],
    nullable: Optional[Callable[[ColumnRef], bool]] = None,
) -> ODSet:
    """ODs implied by computed output columns.

    Strictly monotone expressions yield an order *equivalence* (both
    directions, one flip); non-strict ones (date-part extraction) yield
    only the source-to-output edge — the coarse output cannot stand in
    for the fine source. Bare column pass-throughs contribute nothing:
    identity facts live in the equivalence classes, not the OD set.

    ``nullable`` reports whether a source column can carry NULLs; when
    absent every column is assumed nullable. A direction-*flipping*
    dependency (``10 - col``) is only harvested from provably
    non-nullable sources: NULLs sort after all values ascending but
    before them descending, so a NULL source row sits at the wrong end
    of the flipped order. Same-direction edges are NULL-safe — source
    and image are NULL on exactly the same rows.
    """
    ods = EMPTY_ODS
    for expression, output in items:
        if isinstance(expression, ColumnRef):
            continue
        dependency = monotonic_dependency(expression)
        if dependency is None or dependency.column == output:
            continue
        if dependency.flip and (
            nullable is None or nullable(dependency.column)
        ):
            continue
        if dependency.strict:
            ods = ods.add_equivalence(
                dependency.column, output, flip=dependency.flip
            )
        else:
            ods = ods.add(
                OrderDependency(dependency.column, output, dependency.flip)
            )
    return ods
