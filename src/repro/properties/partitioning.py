"""The partitioning property: how a stream divides across workers.

The paper's machinery tracks *order* through a plan; partitioning is
the sibling physical property for scale-out plans. A stream is either
``singleton`` (one sequential stream — every classic operator sees
this), or split into ``count`` parallel streams by ``hash`` or
``range`` over partition columns, or ``roundrobin`` (split with no
column guarantee — what survives when a projection drops a partition
column or a join mixes streams conservatively).

The lattice, coarsest to finest guarantee:

    roundrobin  <  hash(cols)  <  range(cols)      (singleton apart)

``range`` makes the stronger promise that partition index order agrees
with partition-column order, which is what lets a merge exchange over
per-partition ordered streams deliver a global order without sorting.
``hash`` only promises equal keys land together — enough for
partition-wise joins and group-bys, never for order.

:meth:`PartitioningProperty.colocates` is the partition-key analogue of
the paper's Test Order: a grouping/join key set is satisfied by the
existing partitioning — no repartition exchange needed — when every
partition column is a constant or is equated (via the stream's
equivalence classes) to one of the required columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

from repro.core.context import OrderContext
from repro.core.equivalence import EquivalenceClasses
from repro.expr.nodes import ColumnRef

SINGLETON_KIND = "singleton"
HASH_KIND = "hash"
RANGE_KIND = "range"
ROUND_ROBIN_KIND = "roundrobin"

_KINDS = (SINGLETON_KIND, HASH_KIND, RANGE_KIND, ROUND_ROBIN_KIND)


@dataclass(frozen=True)
class PartitioningProperty:
    """Partitioning of a stream: kind + partition columns + stream count.

    ``columns`` is meaningful only for hash/range; ``count`` is 1 for
    singleton and >= 2 otherwise.
    """

    kind: str = SINGLETON_KIND
    columns: Tuple[ColumnRef, ...] = ()
    count: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        if self.kind not in _KINDS:
            raise ValueError(f"unknown partitioning kind {self.kind!r}")
        if self.kind == SINGLETON_KIND:
            if self.columns or self.count != 1:
                raise ValueError("singleton partitioning has no columns")
        else:
            if self.count < 2:
                raise ValueError(f"{self.kind} partitioning needs count >= 2")
            if self.kind in (HASH_KIND, RANGE_KIND) and not self.columns:
                raise ValueError(f"{self.kind} partitioning needs columns")
            if self.kind == ROUND_ROBIN_KIND and self.columns:
                raise ValueError("roundrobin partitioning has no columns")

    @property
    def is_singleton(self) -> bool:
        return self.kind == SINGLETON_KIND

    @property
    def is_parallel(self) -> bool:
        return self.kind != SINGLETON_KIND

    def restricted(self, columns: Set[ColumnRef]) -> "PartitioningProperty":
        """After a projection to ``columns``: losing any partition column
        degrades hash/range to round-robin (rows still split the same
        way, but downstream can no longer *prove* anything about it)."""
        if self.is_singleton or self.kind == ROUND_ROBIN_KIND:
            return self
        if all(column in columns for column in self.columns):
            return self
        return round_robin(self.count)

    def renamed(
        self, mapping: Dict[ColumnRef, ColumnRef]
    ) -> "PartitioningProperty":
        if self.is_singleton or self.kind == ROUND_ROBIN_KIND:
            return self
        if all(column in mapping for column in self.columns):
            return PartitioningProperty(
                self.kind,
                tuple(mapping[column] for column in self.columns),
                self.count,
            )
        return round_robin(self.count)

    def colocates(
        self, required: Iterable[ColumnRef], context: OrderContext
    ) -> bool:
        """Test Partitioning: do equal values of ``required`` always land
        in the same partition already?

        True for singleton trivially (one partition). For hash/range,
        every partition column must be a constant (all rows share one
        partition-column value, so routing ignores it) or equivalent to
        a required column. Round-robin guarantees nothing.
        """
        if self.is_singleton:
            return True
        if self.kind == ROUND_ROBIN_KIND:
            return False
        required_set = set(required)
        for column in self.columns:
            if context.is_constant(column):
                continue
            if column in required_set:
                continue
            if context.equivalences.members(column) & required_set:
                continue
            return False
        return True

    def aligned(
        self,
        other: "PartitioningProperty",
        equivalences: EquivalenceClasses,
    ) -> bool:
        """Whether two sides are co-partitioned for a partition-wise
        join: same kind and count, and partition columns pairwise equated
        by the join's equality closure. Range boundaries are per-table,
        so range alignment additionally requires equal column *values* to
        route identically — which pairwise equality gives for hash (same
        stable hash) but not for range (different boundary lists); range
        sides therefore only align with themselves via equivalence of
        the identical spec, handled by the caller comparing specs."""
        if self.kind != HASH_KIND or other.kind != HASH_KIND:
            return False
        if self.count != other.count:
            return False
        if len(self.columns) != len(other.columns):
            return False
        for mine, theirs in zip(self.columns, other.columns):
            if mine == theirs:
                continue
            if theirs in equivalences.members(mine):
                continue
            return False
        return True

    def describe(self) -> str:
        if self.is_singleton:
            return "singleton"
        if self.kind == ROUND_ROBIN_KIND:
            return f"roundrobin x{self.count}"
        inner = ", ".join(str(column) for column in self.columns)
        return f"{self.kind}({inner}) x{self.count}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartitioningProperty({self.describe()})"


SINGLETON = PartitioningProperty()


def hash_partitioning(
    columns: Iterable[ColumnRef], count: int
) -> PartitioningProperty:
    return PartitioningProperty(HASH_KIND, tuple(columns), count)


def range_partitioning(
    columns: Iterable[ColumnRef], count: int
) -> PartitioningProperty:
    return PartitioningProperty(RANGE_KIND, tuple(columns), count)


def round_robin(count: int) -> PartitioningProperty:
    return PartitioningProperty(ROUND_ROBIN_KIND, (), count)
