"""Aggregation and duplicate elimination operators.

Batched like the rest of the executor: group markers (total-order
``sort_key`` tuples) come from batch kernels in compiled mode and
per-row closures in interpreted mode, and each aggregate's argument
expression is prepared once per execution — a compiled closure or a
counted interpreter thunk — instead of being re-walked per row.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.executor.context import ExecutionContext
from repro.executor.operators import (
    Batch,
    PhysicalOperator,
    Row,
    chunked,
    count_interpreted,
)
from repro.expr.compile import compile_expression, ordered_key_kernel
from repro.expr.evaluate import evaluate
from repro.expr.nodes import Aggregate, AggregateKind, ColumnRef
from repro.expr.schema import RowSchema
from repro.sqltypes import is_null, sort_key


class _Accumulator:
    """State for one aggregate within one group."""

    __slots__ = ("kind", "distinct", "total", "count", "extreme", "seen")

    def __init__(self, kind: AggregateKind, distinct: bool):
        self.kind = kind
        self.distinct = distinct
        self.total: Any = None
        self.count = 0
        self.extreme: Any = None
        self.seen: Optional[Set[Any]] = set() if distinct else None

    def add(self, value: Any) -> None:
        if self.kind is AggregateKind.COUNT and value is _COUNT_STAR:
            self.count += 1
            return
        if is_null(value):
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.kind in (AggregateKind.SUM, AggregateKind.AVG):
            self.total = value if self.total is None else self.total + value
        elif self.kind is AggregateKind.MIN:
            if self.extreme is None or sort_key(value) < sort_key(self.extreme):
                self.extreme = value
        elif self.kind is AggregateKind.MAX:
            if self.extreme is None or sort_key(value) > sort_key(self.extreme):
                self.extreme = value

    def result(self) -> Any:
        if self.kind is AggregateKind.COUNT:
            return self.count
        if self.kind is AggregateKind.SUM:
            return self.total
        if self.kind is AggregateKind.AVG:
            if self.count == 0:
                return None
            return self.total / self.count
        return self.extreme


_COUNT_STAR = object()


def _marker_kernel(
    context: ExecutionContext, positions: Sequence[int]
) -> Callable[[Batch], List[Tuple[Any, ...]]]:
    """Total-order group markers (sort_key tuples) per batch."""
    if context.compiled:
        return ordered_key_kernel([(position, False) for position in positions])
    positions = tuple(positions)
    return lambda batch: [
        tuple(sort_key(row[position]) for position in positions)
        for row in batch
    ]


class _GroupByBase(PhysicalOperator):
    """Shared plumbing for sort- and hash-based GROUP BY.

    Output schema: group columns (in declared order) followed by one
    column per aggregate, named ``ColumnRef("", alias)``.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_columns: Sequence[ColumnRef],
        aggregates: Sequence[Tuple[str, Aggregate]],
    ):
        outputs = list(group_columns) + [
            ColumnRef("", name) for name, _aggregate in aggregates
        ]
        super().__init__(RowSchema(outputs))
        self.child = child
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)
        self._group_positions = [
            child.schema.position(column) for column in group_columns
        ]

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _new_accumulators(self) -> List[_Accumulator]:
        return [
            _Accumulator(aggregate.kind, aggregate.distinct)
            for _name, aggregate in self.aggregates
        ]

    def _argument_evaluators(
        self, context: ExecutionContext
    ) -> List[Callable[[Row], Any]]:
        """One value-producing callable per aggregate (COUNT(*) yields
        the sentinel), built once per execution."""
        child_schema = self.child.schema
        evaluators: List[Callable[[Row], Any]] = []
        for _name, aggregate in self.aggregates:
            argument = aggregate.argument
            if argument is None:
                evaluators.append(lambda row: _COUNT_STAR)
            elif context.compiled:
                evaluators.append(compile_expression(argument, child_schema))
            else:

                def interpreted(
                    row: Row, argument=argument, schema=child_schema
                ) -> Any:
                    count_interpreted()
                    return evaluate(argument, schema, row)

                evaluators.append(interpreted)
        return evaluators

    def _output_row(
        self, group_values: Tuple[Any, ...], accumulators: List[_Accumulator]
    ) -> Row:
        return group_values + tuple(
            accumulator.result() for accumulator in accumulators
        )


class SortedGroupByOp(_GroupByBase):
    """Order-based GROUP BY: input must arrive grouped (sorted on any
    permutation of the grouping columns — Section 7's degrees of
    freedom)."""

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        yield from chunked(self._grouped(context), context.batch_size)

    def _grouped(self, context: ExecutionContext) -> Iterator[Row]:
        evaluators = self._argument_evaluators(context)
        markers_of = _marker_kernel(context, self._group_positions)
        positions = tuple(self._group_positions)
        current_group: Optional[Tuple[Any, ...]] = None
        current_raw: Optional[Tuple[Any, ...]] = None
        accumulators: List[_Accumulator] = []
        for batch in self.child.batches(context):
            markers = markers_of(batch)
            for marker, row in zip(markers, batch):
                if current_group is None or marker != current_group:
                    if current_group is not None:
                        yield self._output_row(current_raw, accumulators)
                    current_group = marker
                    current_raw = tuple(
                        row[position] for position in positions
                    )
                    accumulators = self._new_accumulators()
                for accumulator, evaluator in zip(accumulators, evaluators):
                    accumulator.add(evaluator(row))
        if current_group is not None:
            yield self._output_row(current_raw, accumulators)

    def label(self) -> str:
        inner = ", ".join(str(column) for column in self.group_columns)
        return f"group by (sorted) [{inner}]"


class HashGroupByOp(_GroupByBase):
    """Hash-based GROUP BY: no input order required, none produced."""

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        yield from chunked(self._grouped(context), context.batch_size)

    def _grouped(self, context: ExecutionContext) -> Iterator[Row]:
        evaluators = self._argument_evaluators(context)
        markers_of = _marker_kernel(context, self._group_positions)
        positions = tuple(self._group_positions)
        groups: Dict[
            Tuple[Any, ...], Tuple[Tuple[Any, ...], List[_Accumulator]]
        ] = {}
        get = groups.get
        count = 0
        token = context.cancel_token
        for batch in self.child.batches(context):
            # Pipeline breaker: the whole input accumulates before the
            # first output batch, so checkpoint per input batch.
            if token is not None:
                token.check()
            markers = markers_of(batch)
            count += len(batch)
            for marker, row in zip(markers, batch):
                entry = get(marker)
                if entry is None:
                    raw = tuple(row[position] for position in positions)
                    entry = (raw, self._new_accumulators())
                    groups[marker] = entry
                for accumulator, evaluator in zip(entry[1], evaluators):
                    accumulator.add(evaluator(row))
        context.rows_hashed += count
        if len(groups) > context.sort_memory_rows:
            context.charge_spill(len(groups))
        if not groups and not self.group_columns:
            # Scalar aggregate over empty input still yields one row.
            yield self._output_row((), self._new_accumulators())
            return
        for raw, accumulators in groups.values():
            yield self._output_row(raw, accumulators)

    def label(self) -> str:
        inner = ", ".join(str(column) for column in self.group_columns)
        return f"group by (hash) [{inner}]"


class SortedDistinctOp(PhysicalOperator):
    """Order-based DISTINCT over a grouped input."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema)
        self.child = child

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        markers_of = _marker_kernel(
            context, range(len(self.child.schema))
        )
        previous: Optional[Tuple[Any, ...]] = None
        for batch in self.child.batches(context):
            markers = markers_of(batch)
            kept: Batch = []
            for marker, row in zip(markers, batch):
                if previous is None or marker != previous:
                    previous = marker
                    kept.append(row)
            if kept:
                yield kept

    def label(self) -> str:
        return "distinct (sorted)"


class HashDistinctOp(PhysicalOperator):
    """Hash-based DISTINCT."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema)
        self.child = child

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        markers_of = _marker_kernel(
            context, range(len(self.child.schema))
        )
        seen: Set[Tuple[Any, ...]] = set()
        add = seen.add
        for batch in self.child.batches(context):
            markers = markers_of(batch)
            kept: Batch = []
            for marker, row in zip(markers, batch):
                if marker in seen:
                    continue
                add(marker)
                kept.append(row)
            if kept:
                yield kept
        context.rows_hashed += len(seen)

    def label(self) -> str:
        return "distinct (hash)"
