"""Aggregation and duplicate elimination operators.

Batched like the rest of the executor: group markers (total-order
``sort_key`` tuples) come from batch kernels in compiled mode and
per-row closures in interpreted mode, and each aggregate's argument
expression is prepared once per execution — a compiled closure or a
counted interpreter thunk — instead of being re-walked per row.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.executor.context import ExecutionContext
from repro.executor.operators import (
    Batch,
    PhysicalOperator,
    Row,
    chunked,
    count_interpreted,
)
from repro.expr.compile import compile_expression, ordered_key_kernel
from repro.expr.evaluate import evaluate
from repro.expr.nodes import Aggregate, AggregateKind, ColumnRef
from repro.expr.schema import RowSchema
from repro.expr.vector import vector_value_kernel
from repro.sqltypes import NULL, is_null, sort_key


class _Accumulator:
    """State for one aggregate within one group."""

    __slots__ = ("kind", "distinct", "total", "count", "extreme", "seen")

    def __init__(self, kind: AggregateKind, distinct: bool):
        self.kind = kind
        self.distinct = distinct
        self.total: Any = None
        self.count = 0
        self.extreme: Any = None
        self.seen: Optional[Set[Any]] = set() if distinct else None

    def add(self, value: Any) -> None:
        if self.kind is AggregateKind.COUNT and value is _COUNT_STAR:
            self.count += 1
            return
        if is_null(value):
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.kind in (AggregateKind.SUM, AggregateKind.AVG):
            self.total = value if self.total is None else self.total + value
        elif self.kind is AggregateKind.MIN:
            if self.extreme is None or sort_key(value) < sort_key(self.extreme):
                self.extreme = value
        elif self.kind is AggregateKind.MAX:
            if self.extreme is None or sort_key(value) > sort_key(self.extreme):
                self.extreme = value

    def add_count(self, n: int) -> None:
        """Fold ``n`` COUNT(*) contributions at once."""
        self.count += n

    def add_run(self, values: Sequence[Any]) -> None:
        """Fold a run of argument values in one call.

        Semantically identical to calling :meth:`add` per value (same
        left-to-right fold, same NULL and tie handling); the vector
        sorted group-by feeds whole group runs through here so the
        per-value work happens in comprehensions instead of per-call
        accumulator dispatch.
        """
        if self.distinct:
            for value in values:
                self.add(value)
            return
        live = [
            value
            for value in values
            if value is not None and value is not NULL
        ]
        if not live:
            return
        self.count += len(live)
        kind = self.kind
        if kind in (AggregateKind.SUM, AggregateKind.AVG):
            # Keep the exact per-value fold order (float addition is
            # not associative; engines must stay byte-identical).
            total = self.total
            start = 0
            if total is None:
                total = live[0]
                start = 1
            for value in live[start:]:
                total = total + value
            self.total = total
        elif kind is AggregateKind.MIN:
            candidate = min(live, key=sort_key)
            if self.extreme is None or sort_key(candidate) < sort_key(
                self.extreme
            ):
                self.extreme = candidate
        elif kind is AggregateKind.MAX:
            candidate = max(live, key=sort_key)
            if self.extreme is None or sort_key(candidate) > sort_key(
                self.extreme
            ):
                self.extreme = candidate

    def result(self) -> Any:
        if self.kind is AggregateKind.COUNT:
            return self.count
        if self.kind is AggregateKind.SUM:
            return self.total
        if self.kind is AggregateKind.AVG:
            if self.count == 0:
                return None
            return self.total / self.count
        return self.extreme


_COUNT_STAR = object()


def _marker_kernel(
    context: ExecutionContext, positions: Sequence[int]
) -> Callable[[Batch], List[Tuple[Any, ...]]]:
    """Total-order group markers (sort_key tuples) per batch."""
    if context.compiled:
        return ordered_key_kernel([(position, False) for position in positions])
    positions = tuple(positions)
    return lambda batch: [
        tuple(sort_key(row[position]) for position in positions)
        for row in batch
    ]


class _GroupByBase(PhysicalOperator):
    """Shared plumbing for sort- and hash-based GROUP BY.

    Output schema: group columns (in declared order) followed by one
    column per aggregate, named ``ColumnRef("", alias)``.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_columns: Sequence[ColumnRef],
        aggregates: Sequence[Tuple[str, Aggregate]],
    ):
        outputs = list(group_columns) + [
            ColumnRef("", name) for name, _aggregate in aggregates
        ]
        super().__init__(RowSchema(outputs))
        self.child = child
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)
        self._group_positions = [
            child.schema.position(column) for column in group_columns
        ]

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _new_accumulators(self) -> List[_Accumulator]:
        return [
            _Accumulator(aggregate.kind, aggregate.distinct)
            for _name, aggregate in self.aggregates
        ]

    def _argument_evaluators(
        self, context: ExecutionContext
    ) -> List[Callable[[Row], Any]]:
        """One value-producing callable per aggregate (COUNT(*) yields
        the sentinel), built once per execution."""
        child_schema = self.child.schema
        evaluators: List[Callable[[Row], Any]] = []
        for _name, aggregate in self.aggregates:
            argument = aggregate.argument
            if argument is None:
                evaluators.append(lambda row: _COUNT_STAR)
            elif context.compiled:
                evaluators.append(compile_expression(argument, child_schema))
            else:

                def interpreted(
                    row: Row, argument=argument, schema=child_schema
                ) -> Any:
                    count_interpreted()
                    return evaluate(argument, schema, row)

                evaluators.append(interpreted)
        return evaluators

    def _output_row(
        self, group_values: Tuple[Any, ...], accumulators: List[_Accumulator]
    ) -> Row:
        return group_values + tuple(
            accumulator.result() for accumulator in accumulators
        )

    def _vector_inputs(
        self, context: ExecutionContext
    ) -> Iterator[Tuple[List[Tuple[Any, ...]], List[List[Any]], List[Optional[List[Any]]]]]:
        """Columnar group-by input: per child block, yields selection-
        aligned ``(markers, raw_group_columns, argument_value_lists)``.

        Group markers and aggregate arguments come straight off the
        block's columns — a join feeding a group-by never builds its
        wide concatenated tuples at all (COUNT(*) has a ``None`` value
        list; the accumulator loop substitutes the sentinel).
        """
        child_schema = self.child.schema
        kernels = [
            None
            if aggregate.argument is None
            else vector_value_kernel(aggregate.argument, child_schema)
            for _name, aggregate in self.aggregates
        ]
        positions = self._group_positions
        for block in self.child.vector_batches(context):
            sel = block.live()
            if type(sel) is range:
                sel = list(sel)
            if not sel:
                continue
            raw_cols: List[List[Any]] = [
                block.gather(position, sel) for position in positions
            ]
            if raw_cols:
                markers = list(
                    zip(*[[sort_key(v) for v in col] for col in raw_cols])
                )
            else:
                markers = [()] * len(sel)
            value_lists = [
                None if kernel is None else kernel(block, sel)
                for kernel in kernels
            ]
            yield markers, raw_cols, value_lists


class SortedGroupByOp(_GroupByBase):
    """Order-based GROUP BY: input must arrive grouped (sorted on any
    permutation of the grouping columns — Section 7's degrees of
    freedom)."""

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        yield from chunked(self._grouped(context), context.batch_size)

    def _grouped(self, context: ExecutionContext) -> Iterator[Row]:
        if context.vectorized:
            yield from self._grouped_vector(context)
            return
        evaluators = self._argument_evaluators(context)
        markers_of = _marker_kernel(context, self._group_positions)
        positions = tuple(self._group_positions)
        current_group: Optional[Tuple[Any, ...]] = None
        current_raw: Optional[Tuple[Any, ...]] = None
        accumulators: List[_Accumulator] = []
        for batch in self.child.batches(context):
            markers = markers_of(batch)
            for marker, row in zip(markers, batch):
                if current_group is None or marker != current_group:
                    if current_group is not None:
                        yield self._output_row(current_raw, accumulators)
                    current_group = marker
                    current_raw = tuple(
                        row[position] for position in positions
                    )
                    accumulators = self._new_accumulators()
                for accumulator, evaluator in zip(accumulators, evaluators):
                    accumulator.add(evaluator(row))
        if current_group is not None:
            yield self._output_row(current_raw, accumulators)

    def _grouped_vector(self, context: ExecutionContext) -> Iterator[Row]:
        # Group changes are found by scanning the marker list for run
        # boundaries, then each aggregate folds the whole run at once —
        # the columnar win for sorted aggregation is run-at-a-time
        # accumulation, not per-row accumulator dispatch.
        current_group: Optional[Tuple[Any, ...]] = None
        current_raw: Optional[Tuple[Any, ...]] = None
        accumulators: List[_Accumulator] = []
        for markers, raw_cols, value_lists in self._vector_inputs(context):
            n = len(markers)
            start = 0
            while start < n:
                marker = markers[start]
                end = start + 1
                while end < n and markers[end] == marker:
                    end += 1
                if current_group is None or marker != current_group:
                    if current_group is not None:
                        yield self._output_row(current_raw, accumulators)
                    current_group = marker
                    current_raw = tuple(col[start] for col in raw_cols)
                    accumulators = self._new_accumulators()
                for accumulator, values in zip(accumulators, value_lists):
                    if values is None:
                        accumulator.add_count(end - start)
                    else:
                        accumulator.add_run(values[start:end])
                start = end
        if current_group is not None:
            yield self._output_row(current_raw, accumulators)

    def label(self) -> str:
        inner = ", ".join(str(column) for column in self.group_columns)
        return f"group by (sorted) [{inner}]"


class HashGroupByOp(_GroupByBase):
    """Hash-based GROUP BY: no input order required, none produced."""

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        yield from chunked(self._grouped(context), context.batch_size)

    def _grouped(self, context: ExecutionContext) -> Iterator[Row]:
        if context.vectorized:
            yield from self._grouped_vector(context)
            return
        evaluators = self._argument_evaluators(context)
        markers_of = _marker_kernel(context, self._group_positions)
        positions = tuple(self._group_positions)
        groups: Dict[
            Tuple[Any, ...], Tuple[Tuple[Any, ...], List[_Accumulator]]
        ] = {}
        get = groups.get
        count = 0
        token = context.cancel_token
        for batch in self.child.batches(context):
            # Pipeline breaker: the whole input accumulates before the
            # first output batch, so checkpoint per input batch.
            if token is not None:
                token.check()
            markers = markers_of(batch)
            count += len(batch)
            for marker, row in zip(markers, batch):
                entry = get(marker)
                if entry is None:
                    raw = tuple(row[position] for position in positions)
                    entry = (raw, self._new_accumulators())
                    groups[marker] = entry
                for accumulator, evaluator in zip(entry[1], evaluators):
                    accumulator.add(evaluator(row))
        context.rows_hashed += count
        if len(groups) > context.sort_memory_rows:
            context.charge_spill(len(groups))
        if not groups and not self.group_columns:
            # Scalar aggregate over empty input still yields one row.
            yield self._output_row((), self._new_accumulators())
            return
        for raw, accumulators in groups.values():
            yield self._output_row(raw, accumulators)

    def _grouped_vector(self, context: ExecutionContext) -> Iterator[Row]:
        # Insertion order of ``groups`` is first occurrence of each
        # marker — identical to the row path, so output order matches.
        # Rows are bucketed by marker within each block so aggregates
        # fold whole buckets (one dict probe and one append per row
        # instead of per-aggregate accumulator dispatch).
        groups: Dict[
            Tuple[Any, ...], Tuple[Tuple[Any, ...], List[_Accumulator]]
        ] = {}
        get = groups.get
        count = 0
        for markers, raw_cols, value_lists in self._vector_inputs(context):
            n = len(markers)
            count += n
            buckets: Dict[Tuple[Any, ...], List[int]] = {}
            bucket_get = buckets.get
            for j, marker in enumerate(markers):
                positions = bucket_get(marker)
                if positions is None:
                    buckets[marker] = [j]
                else:
                    positions.append(j)
            if 2 * len(buckets) > n:
                # Mostly singleton groups: run folding would just add
                # slicing overhead, so dispatch per row as before.
                for j, marker in enumerate(markers):
                    entry = get(marker)
                    if entry is None:
                        raw = tuple(col[j] for col in raw_cols)
                        entry = (raw, self._new_accumulators())
                        groups[marker] = entry
                    for accumulator, values in zip(entry[1], value_lists):
                        accumulator.add(
                            _COUNT_STAR if values is None else values[j]
                        )
                continue
            for marker, positions in buckets.items():
                entry = get(marker)
                if entry is None:
                    first = positions[0]
                    raw = tuple(col[first] for col in raw_cols)
                    entry = (raw, self._new_accumulators())
                    groups[marker] = entry
                whole = len(positions) == n
                for accumulator, values in zip(entry[1], value_lists):
                    if values is None:
                        accumulator.add_count(len(positions))
                    elif whole:
                        accumulator.add_run(values)
                    else:
                        accumulator.add_run([values[j] for j in positions])
        context.rows_hashed += count
        if len(groups) > context.sort_memory_rows:
            context.charge_spill(len(groups))
        if not groups and not self.group_columns:
            yield self._output_row((), self._new_accumulators())
            return
        for raw, accumulators in groups.values():
            yield self._output_row(raw, accumulators)

    def label(self) -> str:
        inner = ", ".join(str(column) for column in self.group_columns)
        return f"group by (hash) [{inner}]"


class SortedDistinctOp(PhysicalOperator):
    """Order-based DISTINCT over a grouped input."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema)
        self.child = child

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        markers_of = _marker_kernel(
            context, range(len(self.child.schema))
        )
        previous: Optional[Tuple[Any, ...]] = None
        for batch in self.child.batches(context):
            markers = markers_of(batch)
            kept: Batch = []
            for marker, row in zip(markers, batch):
                if previous is None or marker != previous:
                    previous = marker
                    kept.append(row)
            if kept:
                yield kept

    def label(self) -> str:
        return "distinct (sorted)"


class HashDistinctOp(PhysicalOperator):
    """Hash-based DISTINCT."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema)
        self.child = child

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        markers_of = _marker_kernel(
            context, range(len(self.child.schema))
        )
        seen: Set[Tuple[Any, ...]] = set()
        add = seen.add
        for batch in self.child.batches(context):
            markers = markers_of(batch)
            kept: Batch = []
            for marker, row in zip(markers, batch):
                if marker in seen:
                    continue
                add(marker)
                kept.append(row)
            if kept:
                yield kept
        context.rows_hashed += len(seen)

    def label(self) -> str:
        return "distinct (hash)"
