"""Aggregation and duplicate elimination operators."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.executor.context import ExecutionContext
from repro.executor.operators import PhysicalOperator, Row
from repro.expr.evaluate import evaluate
from repro.expr.nodes import Aggregate, AggregateKind, ColumnRef
from repro.expr.schema import RowSchema
from repro.sqltypes import is_null, sort_key


class _Accumulator:
    """State for one aggregate within one group."""

    __slots__ = ("kind", "distinct", "total", "count", "extreme", "seen")

    def __init__(self, kind: AggregateKind, distinct: bool):
        self.kind = kind
        self.distinct = distinct
        self.total: Any = None
        self.count = 0
        self.extreme: Any = None
        self.seen: Optional[Set[Any]] = set() if distinct else None

    def add(self, value: Any) -> None:
        if self.kind is AggregateKind.COUNT and value is _COUNT_STAR:
            self.count += 1
            return
        if is_null(value):
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.kind in (AggregateKind.SUM, AggregateKind.AVG):
            self.total = value if self.total is None else self.total + value
        elif self.kind is AggregateKind.MIN:
            if self.extreme is None or sort_key(value) < sort_key(self.extreme):
                self.extreme = value
        elif self.kind is AggregateKind.MAX:
            if self.extreme is None or sort_key(value) > sort_key(self.extreme):
                self.extreme = value

    def result(self) -> Any:
        if self.kind is AggregateKind.COUNT:
            return self.count
        if self.kind is AggregateKind.SUM:
            return self.total
        if self.kind is AggregateKind.AVG:
            if self.count == 0:
                return None
            return self.total / self.count
        return self.extreme


_COUNT_STAR = object()


class _GroupByBase(PhysicalOperator):
    """Shared plumbing for sort- and hash-based GROUP BY.

    Output schema: group columns (in declared order) followed by one
    column per aggregate, named ``ColumnRef("", alias)``.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_columns: Sequence[ColumnRef],
        aggregates: Sequence[Tuple[str, Aggregate]],
    ):
        outputs = list(group_columns) + [
            ColumnRef("", name) for name, _aggregate in aggregates
        ]
        super().__init__(RowSchema(outputs))
        self.child = child
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)
        self._group_positions = [
            child.schema.position(column) for column in group_columns
        ]

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _new_accumulators(self) -> List[_Accumulator]:
        return [
            _Accumulator(aggregate.kind, aggregate.distinct)
            for _name, aggregate in self.aggregates
        ]

    def _feed(self, accumulators: List[_Accumulator], row: Row) -> None:
        child_schema = self.child.schema
        for accumulator, (_name, aggregate) in zip(
            accumulators, self.aggregates
        ):
            if aggregate.argument is None:
                accumulator.add(_COUNT_STAR)
            else:
                accumulator.add(
                    evaluate(aggregate.argument, child_schema, row)
                )

    def _output_row(
        self, group_values: Tuple[Any, ...], accumulators: List[_Accumulator]
    ) -> Row:
        return group_values + tuple(
            accumulator.result() for accumulator in accumulators
        )


class SortedGroupByOp(_GroupByBase):
    """Order-based GROUP BY: input must arrive grouped (sorted on any
    permutation of the grouping columns — Section 7's degrees of
    freedom)."""

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        current_group: Optional[Tuple[Any, ...]] = None
        current_raw: Optional[Tuple[Any, ...]] = None
        accumulators: List[_Accumulator] = []
        positions = self._group_positions
        for row in self.child.rows(context):
            raw = tuple(row[position] for position in positions)
            marker = tuple(sort_key(value) for value in raw)
            if current_group is None or marker != current_group:
                if current_group is not None:
                    yield self._output_row(current_raw, accumulators)
                current_group = marker
                current_raw = raw
                accumulators = self._new_accumulators()
            self._feed(accumulators, row)
        if current_group is not None:
            yield self._output_row(current_raw, accumulators)

    def label(self) -> str:
        inner = ", ".join(str(column) for column in self.group_columns)
        return f"group by (sorted) [{inner}]"


class HashGroupByOp(_GroupByBase):
    """Hash-based GROUP BY: no input order required, none produced."""

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        groups: Dict[Tuple[Any, ...], Tuple[Tuple[Any, ...], List[_Accumulator]]] = {}
        positions = self._group_positions
        count = 0
        for row in self.child.rows(context):
            raw = tuple(row[position] for position in positions)
            marker = tuple(sort_key(value) for value in raw)
            entry = groups.get(marker)
            if entry is None:
                entry = (raw, self._new_accumulators())
                groups[marker] = entry
            self._feed(entry[1], row)
            count += 1
        context.rows_hashed += count
        if len(groups) > context.sort_memory_rows:
            context.charge_spill(len(groups))
        if not groups and not self.group_columns:
            # Scalar aggregate over empty input still yields one row.
            yield self._output_row((), self._new_accumulators())
            return
        for raw, accumulators in groups.values():
            yield self._output_row(raw, accumulators)

    def label(self) -> str:
        inner = ", ".join(str(column) for column in self.group_columns)
        return f"group by (hash) [{inner}]"


class SortedDistinctOp(PhysicalOperator):
    """Order-based DISTINCT over a grouped input."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema)
        self.child = child

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        previous: Optional[Tuple[Any, ...]] = None
        for row in self.child.rows(context):
            marker = tuple(sort_key(value) for value in row)
            if previous is None or marker != previous:
                previous = marker
                yield row

    def label(self) -> str:
        return "distinct (sorted)"


class HashDistinctOp(PhysicalOperator):
    """Hash-based DISTINCT."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema)
        self.child = child

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        seen: Set[Tuple[Any, ...]] = set()
        for row in self.child.rows(context):
            marker = tuple(sort_key(value) for value in row)
            if marker in seen:
                continue
            seen.add(marker)
            yield row
        context.rows_hashed += len(seen)

    def label(self) -> str:
        return "distinct (hash)"
