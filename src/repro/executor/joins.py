"""Join operators: nested-loop (naive and index), merge, and hash joins.

The star of the paper's Section 8 is the *ordered* nested-loop index
join: when the outer stream arrives sorted on the join column, the index
probes walk the inner B+-tree monotonically, so page accesses register
as buffer hits / sequential misses rather than random misses — the
executor does not special-case this, it simply falls out of the access
pattern meeting the buffer pool.

All joins run batch-at-a-time (see :mod:`repro.executor.operators`).
Join keys are extracted by compiled kernels in ``compiled`` mode and by
per-row closures in ``interpreted`` mode; residual predicates follow the
context's engine the same way. The index nested-loop join hoists its
``encode_index_key`` encoder out of the outer-row loop and caches the
last encoded key, so an ordered outer stream with duplicate join values
encodes each distinct key once (``exec.index_probe.*`` counters track
this).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.instrument import COUNTERS
from repro.errors import ExecutionError
from repro.executor.context import ExecutionContext
from repro.executor.operators import (
    Batch,
    PhysicalOperator,
    Row,
    chunked,
    count_interpreted,
)
from repro.expr.compile import (
    compile_predicate,
    join_key_kernel,
    nullable_raw_key_kernel,
)
from repro.expr.evaluate import evaluate_predicate
from repro.expr.nodes import ColumnRef, Expression
from repro.expr.schema import RowSchema
from repro.expr.vector import JoinBlock, RowBlock, VectorBatch, compile_vector_filter
from repro.sqltypes import is_null, sort_key
from repro.storage.database import encode_index_key

KeyList = List[Optional[Tuple[Any, ...]]]


def residual_matcher(
    residual: Optional[Expression],
    schema: RowSchema,
    context: ExecutionContext,
) -> Optional[Callable[[Row], bool]]:
    """Engine-switched residual predicate over joined rows (or None)."""
    if residual is None:
        return None
    if context.compiled:
        return compile_predicate(residual, schema)

    def interpreted(row: Row) -> bool:
        count_interpreted()
        return evaluate_predicate(residual, schema, row)

    return interpreted


def make_probe_encoder(
    directions: Sequence[Any],
) -> Callable[[Tuple[Any, ...]], Any]:
    """Index-probe key encoder, built once per probe loop.

    Caches the most recent (values, key) pair: an ordered outer stream
    re-probing the same join value — the paper's ordered nested-loop
    join — skips re-encoding entirely. ``exec.index_probe.probes`` and
    ``exec.index_probe.encodes`` count calls vs actual encodings.
    """
    directions = list(directions)
    last_values: Optional[Tuple[Any, ...]] = None
    last_key: Any = None

    def encode(values: Tuple[Any, ...]) -> Any:
        nonlocal last_values, last_key
        COUNTERS["exec.index_probe.probes"] = (
            COUNTERS.get("exec.index_probe.probes", 0) + 1
        )
        if values == last_values:
            return last_key
        COUNTERS["exec.index_probe.encodes"] = (
            COUNTERS.get("exec.index_probe.encodes", 0) + 1
        )
        last_values = values
        last_key = encode_index_key(values, directions)
        return last_key

    return encode


def _null_free_keys(
    context: ExecutionContext, positions: Sequence[int]
) -> Callable[[Batch], KeyList]:
    """Raw-tuple keys per batch, None where a key column is NULL."""
    if context.compiled:
        return nullable_raw_key_kernel(positions)
    positions = tuple(positions)

    def per_row(batch: Batch) -> KeyList:
        keys: KeyList = []
        for row in batch:
            values = tuple(row[position] for position in positions)
            keys.append(
                None if any(is_null(value) for value in values) else values
            )
        return keys

    return per_row


def _ordered_keys(
    context: ExecutionContext, positions: Sequence[int]
) -> Callable[[Batch], KeyList]:
    """Sort-key tuples per batch, None where a key column is NULL."""
    if context.compiled:
        return join_key_kernel(positions)
    positions = tuple(positions)

    def per_row(batch: Batch) -> KeyList:
        keys: KeyList = []
        for row in batch:
            values = [row[position] for position in positions]
            keys.append(
                None
                if any(is_null(value) for value in values)
                else tuple(sort_key(value) for value in values)
            )
        return keys

    return per_row


class _BinaryJoin(PhysicalOperator):
    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        residual: Optional[Expression],
    ):
        super().__init__(outer.schema.concat(inner.schema))
        self.outer = outer
        self.inner = inner
        self.residual = residual

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer, self.inner)


class NestedLoopJoinOp(_BinaryJoin):
    """Tuple nested loops with a materialized inner.

    With ``left_outer`` the predicate acts as the ON condition: outer
    rows without a qualifying inner row are emitted once, padded with
    NULLs on the inner side.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        residual: Optional[Expression],
        left_outer: bool = False,
    ):
        super().__init__(outer, inner, residual)
        self.left_outer = left_outer

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        yield from chunked(self._joined(context), context.batch_size)

    def _joined(self, context: ExecutionContext) -> Iterator[Row]:
        matcher = residual_matcher(self.residual, self.schema, context)
        inner_rows = self.inner.execute(context)
        padding = (None,) * len(self.inner.schema)
        left_outer = self.left_outer
        token = context.cancel_token
        for batch in self.outer.batches(context):
            for outer_row in batch:
                # Each outer row walks the whole materialized inner: a
                # selective residual can burn seconds between output
                # batches, so this loop checkpoints per outer row.
                if token is not None:
                    token.check()
                matched = False
                for inner_row in inner_rows:
                    joined = outer_row + inner_row
                    if matcher is None or matcher(joined):
                        matched = True
                        yield joined
                if left_outer and not matched:
                    yield outer_row + padding

    def label(self) -> str:
        condition = f" [{self.residual}]" if self.residual is not None else ""
        kind = "nested-loop left outer join" if self.left_outer else "nested-loop join"
        return f"{kind}{condition}"


class NestedLoopIndexJoinOp(PhysicalOperator):
    """Nested loops probing an inner index per outer row.

    ``probe_columns`` are outer columns whose values key the inner index
    (a prefix of its key). ``ordered`` is informational — set by the
    planner when the outer stream is sorted on the probe columns (the
    paper's ordered nested-loop join); the physical benefit emerges from
    the buffer pool either way.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        table_name: str,
        index_name: str,
        alias: str,
        inner_schema: RowSchema,
        probe_columns: Sequence[ColumnRef],
        residual: Optional[Expression] = None,
        ordered: bool = False,
        left_outer: bool = False,
    ):
        super().__init__(outer.schema.concat(inner_schema))
        self.outer = outer
        self.table_name = table_name
        self.index_name = index_name
        self.alias = alias
        self.inner_schema = inner_schema
        self.probe_columns = list(probe_columns)
        self.residual = residual
        self.ordered = ordered
        self.left_outer = left_outer

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer,)

    vector_capable = True

    def _probe_setup(self, context: ExecutionContext):
        store = context.database.store(self.table_name)
        index, tree = store.indexes[self.index_name]
        directions = [
            column.direction
            for column in index.key[: len(self.probe_columns)]
        ]
        positions = [
            self.outer.schema.position(column)
            for column in self.probe_columns
        ]
        return tree.probe, store.heap.fetch, directions, positions

    def _vector_batches(
        self, context: ExecutionContext
    ) -> Iterator[VectorBatch]:
        if self.left_outer and self.residual is not None:
            # Match bookkeeping interacts with the residual row by row;
            # keep the row join and lift its batches.
            for batch in chunked(self._joined(context), context.batch_size):
                yield RowBlock(batch)
            return
        probe, fetch, directions, positions = self._probe_setup(context)
        encode = make_probe_encoder(directions)
        residual_filter = (
            compile_vector_filter(self.residual, self.schema)
            if self.residual is not None
            else None
        )
        padding = (None,) * len(self.inner_schema)
        left_outer = self.left_outer
        outer_width = len(self.outer.schema)
        metrics = context.metrics_for(self)
        single = positions[0] if len(positions) == 1 else None
        for block in self.outer.vector_batches(context):
            metrics.rows_in += block.count
            out_index: List[int] = []
            inner_rows: List[Row] = []
            index_append = out_index.append
            inner_append = inner_rows.append
            live = block.live()
            if type(live) is range:
                live = list(live)
            if single is not None:
                for i, value in zip(live, block.gather(single, live)):
                    matched = False
                    if not is_null(value):
                        for rid in probe(encode((value,))):
                            index_append(i)
                            inner_append(fetch(rid))
                            matched = True
                    if left_outer and not matched:
                        index_append(i)
                        inner_append(padding)
            else:
                columns = [block.gather(p, live) for p in positions]
                for i, values in zip(live, zip(*columns)):
                    matched = False
                    if not any(is_null(value) for value in values):
                        for rid in probe(encode(values)):
                            index_append(i)
                            inner_append(fetch(rid))
                            matched = True
                    if left_outer and not matched:
                        index_append(i)
                        inner_append(padding)
            if not out_index:
                continue
            joined = JoinBlock(block, outer_width, out_index, inner_rows)
            if residual_filter is not None:
                selection = residual_filter(joined)
                if not selection:
                    continue
                joined = joined.with_selection(selection)
            yield joined

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        if context.vectorized:
            yield from self._materialized_batches(context)
            return
        yield from chunked(self._joined(context), context.batch_size)

    def _joined(self, context: ExecutionContext) -> Iterator[Row]:
        store = context.database.store(self.table_name)
        index, tree = store.indexes[self.index_name]
        directions = [
            column.direction
            for column in index.key[: len(self.probe_columns)]
        ]
        positions = [
            self.outer.schema.position(column)
            for column in self.probe_columns
        ]
        keys_of = _null_free_keys(context, positions)
        encode = make_probe_encoder(directions)
        matcher = residual_matcher(self.residual, self.schema, context)
        probe = tree.probe
        fetch = store.heap.fetch
        padding = (None,) * len(self.inner_schema)
        left_outer = self.left_outer
        for batch in self.outer.batches(context):
            keys = keys_of(batch)
            for outer_row, values in zip(batch, keys):
                matched = False
                if values is not None:
                    for rid in probe(encode(values)):
                        joined = outer_row + fetch(rid)
                        if matcher is None or matcher(joined):
                            matched = True
                            yield joined
                if left_outer and not matched:
                    yield outer_row + padding

    def label(self) -> str:
        kind = "ordered nested-loop join" if self.ordered else "nested-loop join"
        if self.left_outer:
            kind += " (left outer)"
        probes = ", ".join(str(column) for column in self.probe_columns)
        return (
            f"{kind} (index {self.index_name} on {self.table_name} "
            f"as {self.alias}, probe [{probes}])"
        )


def _keyed_rows(
    operator: PhysicalOperator,
    keys_of: Callable[[Batch], KeyList],
    context: ExecutionContext,
) -> Iterator[Tuple[Optional[Tuple[Any, ...]], Row]]:
    """Flatten an operator's batches into (key, row) pairs, computing
    keys one batch at a time."""
    for batch in operator.batches(context):
        yield from zip(keys_of(batch), batch)


class MergeJoinOp(_BinaryJoin):
    """Sort-merge equi-join; inputs must arrive ordered on the join keys.

    Handles duplicate keys on both sides by buffering the inner group.
    Sort keys are computed once per row per side (batch kernels), never
    re-derived during group comparisons.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        outer_keys: Sequence[ColumnRef],
        inner_keys: Sequence[ColumnRef],
        residual: Optional[Expression] = None,
    ):
        super().__init__(outer, inner, residual)
        if len(outer_keys) != len(inner_keys) or not outer_keys:
            raise ExecutionError("merge join needs matching key lists")
        self.outer_keys = list(outer_keys)
        self.inner_keys = list(inner_keys)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        yield from chunked(self._joined(context), context.batch_size)

    def _joined(self, context: ExecutionContext) -> Iterator[Row]:
        outer_positions = [
            self.outer.schema.position(column) for column in self.outer_keys
        ]
        inner_positions = [
            self.inner.schema.position(column) for column in self.inner_keys
        ]
        matcher = residual_matcher(self.residual, self.schema, context)
        outer_iter = _keyed_rows(
            self.outer, _ordered_keys(context, outer_positions), context
        )
        inner_iter = _keyed_rows(
            self.inner, _ordered_keys(context, inner_positions), context
        )
        outer_entry = next(outer_iter, None)
        inner_entry = next(inner_iter, None)
        group_key: Optional[Tuple[Any, ...]] = None
        group_rows: List[Row] = []
        while outer_entry is not None:
            key, outer_row = outer_entry
            if key is None:
                outer_entry = next(outer_iter, None)
                continue
            if group_key is not None and key == group_key:
                for buffered in group_rows:
                    joined = outer_row + buffered
                    if matcher is None or matcher(joined):
                        yield joined
                outer_entry = next(outer_iter, None)
                continue
            # Advance the inner side to this key.
            while inner_entry is not None:
                ikey = inner_entry[0]
                if ikey is None or ikey < key:
                    inner_entry = next(inner_iter, None)
                    continue
                break
            group_key, group_rows = key, []
            while inner_entry is not None:
                if inner_entry[0] == key:
                    group_rows.append(inner_entry[1])
                    inner_entry = next(inner_iter, None)
                    continue
                break
            for buffered in group_rows:
                joined = outer_row + buffered
                if matcher is None or matcher(joined):
                    yield joined
            outer_entry = next(outer_iter, None)

    def label(self) -> str:
        pairs = ", ".join(
            f"{outer} = {inner}"
            for outer, inner in zip(self.outer_keys, self.inner_keys)
        )
        return f"merge-join [{pairs}]"


class HashJoinOp(_BinaryJoin):
    """Classic hash equi-join: build on the inner, probe with the outer.

    In vector mode the probe side streams :class:`VectorBatch` blocks:
    probe keys gather straight from the outer key columns and matches
    come out as :class:`JoinBlock` pairs — the wide concatenated tuple
    is never built unless a parent materializes. A residual predicate
    runs as a vector filter over the join block (column leaves get the
    fast paths); the left-outer + residual combination falls back to
    row-at-a-time joining, where match bookkeeping lives.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        outer_keys: Sequence[ColumnRef],
        inner_keys: Sequence[ColumnRef],
        residual: Optional[Expression] = None,
        left_outer: bool = False,
    ):
        super().__init__(outer, inner, residual)
        if len(outer_keys) != len(inner_keys) or not outer_keys:
            raise ExecutionError("hash join needs matching key lists")
        self.outer_keys = list(outer_keys)
        self.inner_keys = list(inner_keys)
        self.left_outer = left_outer

    vector_capable = True

    def _build_table(self, context: ExecutionContext) -> dict:
        """Materialize the inner side into the hash table (both modes)."""
        inner_positions = [
            self.inner.schema.position(column) for column in self.inner_keys
        ]
        build_keys = _null_free_keys(context, inner_positions)
        table: dict = {}
        setdefault = table.setdefault
        build_count = 0
        token = context.cancel_token
        for batch in self.inner.batches(context):
            # Build side is a pipeline breaker: checkpoint per build
            # batch so a huge inner stops before the probe phase.
            if token is not None:
                token.check()
            for values, inner_row in zip(build_keys(batch), batch):
                if values is None:
                    continue
                setdefault(values, []).append(inner_row)
                build_count += 1
        context.rows_hashed += build_count
        if build_count > context.sort_memory_rows:
            context.charge_spill(build_count)
        return table

    def _vector_batches(
        self, context: ExecutionContext
    ) -> Iterator[VectorBatch]:
        if self.left_outer and self.residual is not None:
            for batch in chunked(self._joined(context), context.batch_size):
                yield RowBlock(batch)
            return
        table = self._build_table(context)
        outer_positions = [
            self.outer.schema.position(column) for column in self.outer_keys
        ]
        outer_width = len(self.outer.schema)
        padding = (None,) * len(self.inner.schema)
        empty: Tuple[Row, ...] = ()
        left_outer = self.left_outer
        get = table.get
        metrics = context.metrics_for(self)
        residual_filter = (
            compile_vector_filter(self.residual, self.schema)
            if self.residual is not None
            else None
        )
        single = outer_positions[0] if len(outer_positions) == 1 else None
        for block in self.outer.vector_batches(context):
            metrics.rows_in += block.count
            out_index: List[int] = []
            inner_rows: List[Row] = []
            index_append = out_index.append
            inner_append = inner_rows.append
            live = block.live()
            if type(live) is range:
                live = list(live)
            if single is not None:
                for i, value in zip(live, block.gather(single, live)):
                    matches = (
                        empty if is_null(value) else get((value,), empty)
                    )
                    for inner_row in matches:
                        index_append(i)
                        inner_append(inner_row)
                    if left_outer and not matches:
                        index_append(i)
                        inner_append(padding)
            else:
                columns = [block.gather(p, live) for p in outer_positions]
                for i, values in zip(live, zip(*columns)):
                    matches = (
                        empty
                        if any(is_null(value) for value in values)
                        else get(values, empty)
                    )
                    for inner_row in matches:
                        index_append(i)
                        inner_append(inner_row)
                    if left_outer and not matches:
                        index_append(i)
                        inner_append(padding)
            if not out_index:
                continue
            joined = JoinBlock(block, outer_width, out_index, inner_rows)
            if residual_filter is not None:
                selection = residual_filter(joined)
                if not selection:
                    continue
                joined = joined.with_selection(selection)
            yield joined

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        if context.vectorized:
            yield from self._materialized_batches(context)
            return
        yield from chunked(self._joined(context), context.batch_size)

    def _joined(self, context: ExecutionContext) -> Iterator[Row]:
        outer_positions = [
            self.outer.schema.position(column) for column in self.outer_keys
        ]
        matcher = residual_matcher(self.residual, self.schema, context)
        probe_keys = _null_free_keys(context, outer_positions)
        table = self._build_table(context)
        padding = (None,) * len(self.inner.schema)
        empty: Tuple[Row, ...] = ()
        left_outer = self.left_outer
        get = table.get
        metrics = context.metrics_for(self)
        for batch in self.outer.batches(context):
            metrics.rows_in += len(batch)
            for values, outer_row in zip(probe_keys(batch), batch):
                matched = False
                if values is not None:
                    for inner_row in get(values, empty):
                        joined = outer_row + inner_row
                        if matcher is None or matcher(joined):
                            matched = True
                            yield joined
                if left_outer and not matched:
                    yield outer_row + padding

    def label(self) -> str:
        pairs = ", ".join(
            f"{outer} = {inner}"
            for outer, inner in zip(self.outer_keys, self.inner_keys)
        )
        kind = "hash left outer join" if self.left_outer else "hash join"
        return f"{kind} [{pairs}]"
