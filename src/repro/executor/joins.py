"""Join operators: nested-loop (naive and index), merge, and hash joins.

The star of the paper's Section 8 is the *ordered* nested-loop index
join: when the outer stream arrives sorted on the join column, the index
probes walk the inner B+-tree monotonically, so page accesses register
as buffer hits / sequential misses rather than random misses — the
executor does not special-case this, it simply falls out of the access
pattern meeting the buffer pool.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.executor.context import ExecutionContext
from repro.executor.operators import PhysicalOperator, Row
from repro.expr.evaluate import evaluate_predicate
from repro.expr.nodes import ColumnRef, Expression
from repro.expr.schema import RowSchema
from repro.sqltypes import is_null, sort_key
from repro.storage.database import encode_index_key


class _BinaryJoin(PhysicalOperator):
    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        residual: Optional[Expression],
    ):
        super().__init__(outer.schema.concat(inner.schema))
        self.outer = outer
        self.inner = inner
        self.residual = residual

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer, self.inner)

    def _emit(
        self, context: ExecutionContext, outer_row: Row, inner_row: Row
    ) -> Optional[Row]:
        joined = outer_row + inner_row
        if self.residual is not None and not evaluate_predicate(
            self.residual, self.schema, joined
        ):
            return None
        return joined


class NestedLoopJoinOp(_BinaryJoin):
    """Tuple nested loops with a materialized inner.

    With ``left_outer`` the predicate acts as the ON condition: outer
    rows without a qualifying inner row are emitted once, padded with
    NULLs on the inner side.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        residual: Optional[Expression],
        left_outer: bool = False,
    ):
        super().__init__(outer, inner, residual)
        self.left_outer = left_outer

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        inner_rows = list(self.inner.rows(context))
        padding = (None,) * len(self.inner.schema)
        for outer_row in self.outer.rows(context):
            matched = False
            for inner_row in inner_rows:
                joined = self._emit(context, outer_row, inner_row)
                if joined is not None:
                    matched = True
                    yield joined
            if self.left_outer and not matched:
                yield outer_row + padding

    def label(self) -> str:
        condition = f" [{self.residual}]" if self.residual is not None else ""
        kind = "nested-loop left outer join" if self.left_outer else "nested-loop join"
        return f"{kind}{condition}"


class NestedLoopIndexJoinOp(PhysicalOperator):
    """Nested loops probing an inner index per outer row.

    ``probe_columns`` are outer columns whose values key the inner index
    (a prefix of its key). ``ordered`` is informational — set by the
    planner when the outer stream is sorted on the probe columns (the
    paper's ordered nested-loop join); the physical benefit emerges from
    the buffer pool either way.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        table_name: str,
        index_name: str,
        alias: str,
        inner_schema: RowSchema,
        probe_columns: Sequence[ColumnRef],
        residual: Optional[Expression] = None,
        ordered: bool = False,
        left_outer: bool = False,
    ):
        super().__init__(outer.schema.concat(inner_schema))
        self.outer = outer
        self.table_name = table_name
        self.index_name = index_name
        self.alias = alias
        self.inner_schema = inner_schema
        self.probe_columns = list(probe_columns)
        self.residual = residual
        self.ordered = ordered
        self.left_outer = left_outer

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        store = context.database.store(self.table_name)
        index, tree = store.indexes[self.index_name]
        directions = [
            column.direction
            for column in index.key[: len(self.probe_columns)]
        ]
        positions = [
            self.outer.schema.position(column)
            for column in self.probe_columns
        ]
        schema = self.schema
        residual = self.residual
        padding = (None,) * len(self.inner_schema)
        for outer_row in self.outer.rows(context):
            values = [outer_row[position] for position in positions]
            matched = False
            if not any(is_null(value) for value in values):
                probe_key = encode_index_key(values, directions)
                for _key, rid in tree.scan_range(
                    low=probe_key, high=probe_key
                ):
                    inner_row = store.heap.fetch(rid)
                    joined = outer_row + inner_row
                    if residual is not None and not evaluate_predicate(
                        residual, schema, joined
                    ):
                        continue
                    matched = True
                    yield joined
            if self.left_outer and not matched:
                yield outer_row + padding

    def label(self) -> str:
        kind = "ordered nested-loop join" if self.ordered else "nested-loop join"
        if self.left_outer:
            kind += " (left outer)"
        probes = ", ".join(str(column) for column in self.probe_columns)
        return (
            f"{kind} (index {self.index_name} on {self.table_name} "
            f"as {self.alias}, probe [{probes}])"
        )


class MergeJoinOp(_BinaryJoin):
    """Sort-merge equi-join; inputs must arrive ordered on the join keys.

    Handles duplicate keys on both sides by buffering the inner group.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        outer_keys: Sequence[ColumnRef],
        inner_keys: Sequence[ColumnRef],
        residual: Optional[Expression] = None,
    ):
        super().__init__(outer, inner, residual)
        if len(outer_keys) != len(inner_keys) or not outer_keys:
            raise ExecutionError("merge join needs matching key lists")
        self.outer_keys = list(outer_keys)
        self.inner_keys = list(inner_keys)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        outer_positions = [
            self.outer.schema.position(column) for column in self.outer_keys
        ]
        inner_positions = [
            self.inner.schema.position(column) for column in self.inner_keys
        ]

        def outer_key(row: Row) -> Optional[Tuple[Any, ...]]:
            values = [row[position] for position in outer_positions]
            if any(is_null(value) for value in values):
                return None
            return tuple(sort_key(value) for value in values)

        def inner_key(row: Row) -> Optional[Tuple[Any, ...]]:
            values = [row[position] for position in inner_positions]
            if any(is_null(value) for value in values):
                return None
            return tuple(sort_key(value) for value in values)

        outer_iter = self.outer.rows(context)
        inner_iter = self.inner.rows(context)
        outer_row = next(outer_iter, None)
        inner_row = next(inner_iter, None)
        group_key: Optional[Tuple[Any, ...]] = None
        group_rows: List[Row] = []
        while outer_row is not None:
            key = outer_key(outer_row)
            if key is None:
                outer_row = next(outer_iter, None)
                continue
            if group_key is not None and key == group_key:
                for buffered in group_rows:
                    joined = self._emit(context, outer_row, buffered)
                    if joined is not None:
                        yield joined
                outer_row = next(outer_iter, None)
                continue
            # Advance the inner side to this key.
            while inner_row is not None:
                ikey = inner_key(inner_row)
                if ikey is None or ikey < key:
                    inner_row = next(inner_iter, None)
                    continue
                break
            group_key, group_rows = key, []
            while inner_row is not None:
                ikey = inner_key(inner_row)
                if ikey == key:
                    group_rows.append(inner_row)
                    inner_row = next(inner_iter, None)
                    continue
                break
            for buffered in group_rows:
                joined = self._emit(context, outer_row, buffered)
                if joined is not None:
                    yield joined
            outer_row = next(outer_iter, None)

    def label(self) -> str:
        pairs = ", ".join(
            f"{outer} = {inner}"
            for outer, inner in zip(self.outer_keys, self.inner_keys)
        )
        return f"merge-join [{pairs}]"


class HashJoinOp(_BinaryJoin):
    """Classic hash equi-join: build on the inner, probe with the outer."""

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        outer_keys: Sequence[ColumnRef],
        inner_keys: Sequence[ColumnRef],
        residual: Optional[Expression] = None,
        left_outer: bool = False,
    ):
        super().__init__(outer, inner, residual)
        if len(outer_keys) != len(inner_keys) or not outer_keys:
            raise ExecutionError("hash join needs matching key lists")
        self.outer_keys = list(outer_keys)
        self.inner_keys = list(inner_keys)
        self.left_outer = left_outer

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        inner_positions = [
            self.inner.schema.position(column) for column in self.inner_keys
        ]
        outer_positions = [
            self.outer.schema.position(column) for column in self.outer_keys
        ]
        table: dict = {}
        build_count = 0
        for inner_row in self.inner.rows(context):
            values = tuple(inner_row[position] for position in inner_positions)
            if any(is_null(value) for value in values):
                continue
            table.setdefault(values, []).append(inner_row)
            build_count += 1
        context.rows_hashed += build_count
        if build_count > context.sort_memory_rows:
            context.charge_spill(build_count)
        padding = (None,) * len(self.inner.schema)
        for outer_row in self.outer.rows(context):
            values = tuple(outer_row[position] for position in outer_positions)
            matched = False
            if not any(is_null(value) for value in values):
                for inner_row in table.get(values, ()):
                    joined = self._emit(context, outer_row, inner_row)
                    if joined is not None:
                        matched = True
                        yield joined
            if self.left_outer and not matched:
                yield outer_row + padding

    def label(self) -> str:
        pairs = ", ".join(
            f"{outer} = {inner}"
            for outer, inner in zip(self.outer_keys, self.inner_keys)
        )
        kind = "hash left outer join" if self.left_outer else "hash join"
        return f"{kind} [{pairs}]"
