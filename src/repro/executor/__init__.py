"""Physical execution engine (batched iterator model).

Operators pull batches of tuples from their children (``rows()`` is a
thin adapter); scans charge page accesses to the database's buffer pool,
so a query's simulated I/O pattern falls out of actually running it.
Sorting, merging, hashing, and aggregation are all real — benchmark
elapsed times measure genuine work.

Three expression engines share the operator tree: ``compiled`` (closure
kernels from :mod:`repro.expr.compile`, the default), ``vector``
(columnar :class:`~repro.expr.vector.VectorBatch` blocks with selection
vectors, late materialization, and cost-ordered predicates), and
``interpreted`` (the tree-walking reference; ``REPRO_EXEC`` or
``ExecutionContext(mode=...)`` selects any of them). Results are
byte-identical in all modes; per-operator rows/batches/time/selectivity
land in ``ExecutionContext.metrics`` and render via
``explain(analyze=...)``.
"""

from repro.executor.context import (
    DEFAULT_BATCH_SIZE,
    MODE_COMPILED,
    MODE_INTERPRETED,
    MODE_VECTOR,
    ExecutionContext,
    OperatorMetrics,
    default_exec_mode,
    resolve_batch_size,
)
from repro.executor.operators import (
    FilterOp,
    IndexScanOp,
    LimitOp,
    MaterializeOp,
    PartialSortOp,
    PhysicalOperator,
    ProjectOp,
    SortOp,
    TableScanOp,
    TopNSortOp,
)
from repro.executor.joins import (
    HashJoinOp,
    MergeJoinOp,
    NestedLoopIndexJoinOp,
    NestedLoopJoinOp,
)
from repro.executor.aggregate import (
    HashDistinctOp,
    HashGroupByOp,
    SortedDistinctOp,
    SortedGroupByOp,
)

__all__ = [
    "ExecutionContext",
    "OperatorMetrics",
    "MODE_COMPILED",
    "MODE_INTERPRETED",
    "MODE_VECTOR",
    "DEFAULT_BATCH_SIZE",
    "default_exec_mode",
    "resolve_batch_size",
    "PhysicalOperator",
    "TableScanOp",
    "IndexScanOp",
    "FilterOp",
    "ProjectOp",
    "SortOp",
    "PartialSortOp",
    "LimitOp",
    "TopNSortOp",
    "MaterializeOp",
    "NestedLoopJoinOp",
    "NestedLoopIndexJoinOp",
    "MergeJoinOp",
    "HashJoinOp",
    "SortedGroupByOp",
    "HashGroupByOp",
    "SortedDistinctOp",
    "HashDistinctOp",
]
