"""Physical execution engine (iterator model).

Operators pull tuples from their children; scans charge page accesses to
the database's buffer pool, so a query's simulated I/O pattern falls out
of actually running it. Sorting, merging, hashing, and aggregation are
all real — benchmark elapsed times measure genuine work.
"""

from repro.executor.context import ExecutionContext
from repro.executor.operators import (
    FilterOp,
    IndexScanOp,
    PhysicalOperator,
    ProjectOp,
    SortOp,
    TableScanOp,
)
from repro.executor.joins import (
    HashJoinOp,
    MergeJoinOp,
    NestedLoopIndexJoinOp,
    NestedLoopJoinOp,
)
from repro.executor.aggregate import (
    HashDistinctOp,
    HashGroupByOp,
    SortedDistinctOp,
    SortedGroupByOp,
)

__all__ = [
    "ExecutionContext",
    "PhysicalOperator",
    "TableScanOp",
    "IndexScanOp",
    "FilterOp",
    "ProjectOp",
    "SortOp",
    "NestedLoopJoinOp",
    "NestedLoopIndexJoinOp",
    "MergeJoinOp",
    "HashJoinOp",
    "SortedGroupByOp",
    "HashGroupByOp",
    "SortedDistinctOp",
    "HashDistinctOp",
]
