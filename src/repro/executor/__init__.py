"""Physical execution engine (batched iterator model).

Operators pull batches of tuples from their children (``rows()`` is a
thin adapter); scans charge page accesses to the database's buffer pool,
so a query's simulated I/O pattern falls out of actually running it.
Sorting, merging, hashing, and aggregation are all real — benchmark
elapsed times measure genuine work.

Two expression engines share the operator tree: ``compiled`` (closure
kernels from :mod:`repro.expr.compile`, the default) and
``interpreted`` (the tree-walking reference; ``REPRO_EXEC=interpreted``
or ``ExecutionContext(mode=...)`` selects it). Results are identical in
both modes; per-operator rows/batches/time land in
``ExecutionContext.metrics`` and render via ``explain(analyze=...)``.
"""

from repro.executor.context import (
    DEFAULT_BATCH_SIZE,
    MODE_COMPILED,
    MODE_INTERPRETED,
    ExecutionContext,
    OperatorMetrics,
    default_exec_mode,
)
from repro.executor.operators import (
    FilterOp,
    IndexScanOp,
    LimitOp,
    MaterializeOp,
    PhysicalOperator,
    ProjectOp,
    SortOp,
    TableScanOp,
    TopNSortOp,
)
from repro.executor.joins import (
    HashJoinOp,
    MergeJoinOp,
    NestedLoopIndexJoinOp,
    NestedLoopJoinOp,
)
from repro.executor.aggregate import (
    HashDistinctOp,
    HashGroupByOp,
    SortedDistinctOp,
    SortedGroupByOp,
)

__all__ = [
    "ExecutionContext",
    "OperatorMetrics",
    "MODE_COMPILED",
    "MODE_INTERPRETED",
    "DEFAULT_BATCH_SIZE",
    "default_exec_mode",
    "PhysicalOperator",
    "TableScanOp",
    "IndexScanOp",
    "FilterOp",
    "ProjectOp",
    "SortOp",
    "LimitOp",
    "TopNSortOp",
    "MaterializeOp",
    "NestedLoopJoinOp",
    "NestedLoopIndexJoinOp",
    "MergeJoinOp",
    "HashJoinOp",
    "SortedGroupByOp",
    "HashGroupByOp",
    "SortedDistinctOp",
    "HashDistinctOp",
]
