"""Exchange operators: partition-parallel execution with bounded workers.

Three operators move rows between the partitioned and sequential worlds:

* :class:`PartitionScanOp` — sequential scan over a *subset* of a
  partitioned table's partitions (partition pruning, or a single
  partition as the leaf of a parallel subtree);
* :class:`GatherExchangeOp` — runs its per-partition children on worker
  threads and concatenates their outputs in partition order (the
  deterministic union-all; order across partitions is not claimed);
* :class:`MergeExchangeOp` — same worker machinery, but k-way-merges
  per-partition streams that each deliver the target order, producing
  the global order without a sort. The merge is stable: entries are
  decorated ``(key, partition, sequence, row)`` so equal keys preserve
  partition-then-arrival order and rows are never compared.

The hash repartition exchange is realized as ``count`` instances of
:class:`PartitionSplitOp` sharing one child: the child executes once,
its rows are split into hash buckets with the *same* stable hash the
storage layer routes with, and each split instance serves one bucket to
its consumer.

Concurrency model: each partition gets a worker thread (named
``repro-exch-*`` — the thread-leak fixtures key on the prefix) with its
own :meth:`ExecutionContext.worker_clone`, pushing batches into a
bounded queue. A shared semaphore caps how many workers *pull* at once,
bounding CPU without starving any queue (the blocking ``put`` happens
outside the semaphore). Every worker has its own
:class:`~repro.executor.context.CancelToken` (same deadline as the
parent), so deadlines propagate, individual workers can be
fault-injected, and consumer-side teardown cancels whatever is still
running, drains the queues, and joins every thread — no stranded
workers on success, error, cancellation, or an abandoned generator.
Worker counter slices (metrics, spill/sort/hash counters) merge into
the parent context exactly once, at the gather point.
"""

from __future__ import annotations

import heapq
import queue
import threading
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.catalog.partition import _stable_hash
from repro.core.ordering import OrderSpec
from repro.errors import ExecutionError
from repro.executor.context import ExecutionContext
from repro.executor.operators import (
    Batch,
    PhysicalOperator,
    Row,
    _batch_keys,
)
from repro.expr.schema import RowSchema

# Batches buffered per partition before its producer blocks.
_QUEUE_DEPTH = 8
# Workers allowed to pull from their children simultaneously.
_POOL_SLOTS = 4
# Queue poll interval while waiting on a producer (keeps the consumer
# responsive to its own cancel token even when producers stall).
_POLL_SECONDS = 0.05

_END = object()


class PartitionScanOp(PhysicalOperator):
    """Sequential scan of selected partitions of a partitioned table.

    Charges exactly the pages of the partitions it touches — pruned
    partitions cost nothing, which is the point.
    """

    def __init__(
        self,
        table_name: str,
        alias: str,
        schema: RowSchema,
        partitions: Sequence[int],
    ):
        super().__init__(schema)
        self.table_name = table_name
        self.alias = alias
        self.partitions = tuple(partitions)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        heap = context.database.store(self.table_name).heap
        size = context.batch_size
        batch: Batch = []
        for partition in self.partitions:
            for page in heap.scan_pages_partition(partition):
                batch.extend(page)
                while len(batch) >= size:
                    yield batch[:size]
                    batch = batch[size:]
        if batch:
            yield batch

    def label(self) -> str:
        parts = ",".join(str(p) for p in self.partitions)
        return (
            f"partition scan {self.table_name} as {self.alias} "
            f"[parts {parts}]"
        )


class _PartitionWorker:
    """One partition's producer thread + queue + cloned context."""

    def __init__(
        self,
        child: PhysicalOperator,
        parent: ExecutionContext,
        name: str,
        slots: threading.Semaphore,
    ):
        self.child = child
        self.context = parent.worker_clone()
        self.queue: "queue.Queue" = queue.Queue(maxsize=_QUEUE_DEPTH)
        self.error: Optional[BaseException] = None
        self.slots = slots
        self.thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )

    def start(self) -> None:
        self.thread.start()

    def _run(self) -> None:
        try:
            produce = self.child.batches(self.context)
            while True:
                # Hold a pool slot only while *computing* a batch; the
                # potentially blocking hand-off happens outside it, so a
                # full queue never parks a slot other partitions need.
                self.slots.acquire()
                try:
                    batch = next(produce, _END)
                finally:
                    self.slots.release()
                if batch is _END:
                    break
                self.queue.put(batch)
        except BaseException as exc:  # noqa: BLE001 - re-raised at gather
            self.error = exc
        finally:
            self.queue.put(_END)


class _ExchangeBase(PhysicalOperator):
    """Shared worker-pool scaffolding for gather and merge exchanges."""

    def __init__(
        self, children: Sequence[PhysicalOperator], schema: RowSchema
    ):
        super().__init__(schema)
        if len(children) < 2:
            raise ExecutionError("an exchange needs >= 2 input streams")
        self._children = tuple(children)
        for child in self._children:
            if tuple(child.schema.columns) != tuple(schema.columns):
                raise ExecutionError("exchange inputs must share a schema")

    def children(self) -> Sequence[PhysicalOperator]:
        return self._children

    def _start_workers(
        self, context: ExecutionContext
    ) -> List[_PartitionWorker]:
        slots = threading.BoundedSemaphore(_POOL_SLOTS)
        workers = [
            _PartitionWorker(
                child,
                context,
                f"repro-exch-{id(self):x}-{index}",
                slots,
            )
            for index, child in enumerate(self._children)
        ]
        for worker in workers:
            worker.start()
        return workers

    @staticmethod
    def _drain(
        worker: _PartitionWorker, context: ExecutionContext
    ) -> Iterator[Batch]:
        """Yield one worker's batches, staying responsive to the
        consumer's own token while the producer is quiet."""
        token = context.cancel_token
        while True:
            try:
                item = worker.queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if token is not None:
                    token.check()
                continue
            if item is _END:
                return
            yield item

    @staticmethod
    def _finish(
        worker: _PartitionWorker, context: ExecutionContext
    ) -> None:
        """Join a drained worker, fold its counters in, re-raise its
        typed error (QueryCancelled/QueryTimeout/ExecutionError/...)."""
        worker.thread.join()
        context.absorb(worker.context)
        worker.context = None  # absorbed exactly once
        if worker.error is not None:
            raise worker.error

    @staticmethod
    def _shutdown(
        workers: List[_PartitionWorker], context: ExecutionContext
    ) -> None:
        """Teardown on every exit path: cancel, drain, join, absorb."""
        for worker in workers:
            if worker.context is not None:
                token = worker.context.cancel_token
                if token is not None:
                    token.cancel("exchange shutdown")
        for worker in workers:
            while worker.thread.is_alive():
                try:
                    worker.queue.get_nowait()
                except queue.Empty:
                    worker.thread.join(timeout=0.01)
            worker.thread.join()
            if worker.context is not None:
                context.absorb(worker.context)
                worker.context = None


class GatherExchangeOp(_ExchangeBase):
    """Parallel union of partition streams, output in partition order.

    All partitions produce concurrently (into their bounded queues);
    the consumer drains queue 0 to exhaustion, then queue 1, and so on,
    so the output is the deterministic concatenation — identical to the
    sequential engines' row order — while the work overlaps.
    """

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        workers = self._start_workers(context)
        try:
            for worker in workers:
                yield from self._drain(worker, context)
                self._finish(worker, context)
        finally:
            self._shutdown(workers, context)

    def label(self) -> str:
        return f"gather exchange ({len(self._children)} streams)"


class MergeExchangeOp(_ExchangeBase):
    """Order-preserving k-way merge of partition streams.

    Every input must deliver ``order`` already; the merge only
    interleaves. Stability: heap entries are
    ``(key, partition, sequence, row)`` — unique ``(partition,
    sequence)`` pairs mean equal keys resolve to partition-then-arrival
    order and row payloads are never compared (they may not be
    comparable).
    """

    def __init__(
        self,
        children: Sequence[PhysicalOperator],
        schema: RowSchema,
        order: OrderSpec,
    ):
        super().__init__(children, schema)
        if order.is_empty():
            raise ExecutionError("merge exchange needs a non-empty order")
        self.order = order

    def _entries(
        self,
        worker: _PartitionWorker,
        partition: int,
        keys_of,
        context: ExecutionContext,
    ) -> Iterator[Tuple]:
        sequence = 0
        for batch in self._drain(worker, context):
            keys = keys_of(batch)
            for key, row in zip(keys, batch):
                yield (key, partition, sequence, row)
                sequence += 1
        self._finish(worker, context)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        workers = self._start_workers(context)
        try:
            keys_of = _batch_keys(context, self.schema, self.order)
            streams = [
                self._entries(worker, partition, keys_of, context)
                for partition, worker in enumerate(workers)
            ]
            size = context.batch_size
            batch: Batch = []
            append = batch.append
            for entry in heapq.merge(*streams):
                append(entry[3])
                if len(batch) >= size:
                    yield batch
                    batch = []
                    append = batch.append
            if batch:
                yield batch
        finally:
            self._shutdown(workers, context)

    def label(self) -> str:
        return (
            f"merge exchange {self.order} "
            f"({len(self._children)} streams)"
        )


class _SplitSource:
    """The shared half of a hash repartition exchange.

    Executes the child once (first bucket pulled wins, under a lock)
    and splits its rows into ``count`` hash buckets using the storage
    layer's stable hash — a repartitioned stream therefore co-locates
    with a hash-partitioned table over equal column values.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        positions: Sequence[int],
        count: int,
    ):
        self.child = child
        self.positions = tuple(positions)
        self.count = count
        self._buckets: Optional[List[List[Row]]] = None
        self._lock = threading.Lock()

    def bucket(self, context: ExecutionContext, index: int) -> List[Row]:
        with self._lock:
            if self._buckets is None:
                buckets: List[List[Row]] = [[] for _ in range(self.count)]
                positions = self.positions
                count = self.count
                for batch in self.child.batches(context):
                    for row in batch:
                        values = tuple(
                            row[position] for position in positions
                        )
                        buckets[_stable_hash(values) % count].append(row)
                self._buckets = buckets
            return self._buckets[index]


class PartitionSplitOp(PhysicalOperator):
    """One output bucket of a hash repartition exchange.

    ``count`` sibling instances share one :class:`_SplitSource`; the
    builder (``repro.executor.build``) guarantees the sharing by caching
    on the plan node's shared child.
    """

    def __init__(
        self, source: _SplitSource, index: int, schema: RowSchema
    ):
        super().__init__(schema)
        self.source = source
        self.index = index

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.source.child,)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        rows = self.source.bucket(context, self.index)
        size = context.batch_size
        for start in range(0, len(rows), size):
            yield rows[start : start + size]

    def label(self) -> str:
        return f"partition split #{self.index}/{self.source.count}"
