"""Execution context: shared state for one query execution."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ExecutionError, QueryCancelled, QueryTimeout
from repro.storage import Database

# Executor engine modes. ``compiled`` (the default) evaluates
# expressions through closures from :mod:`repro.expr.compile`;
# ``vector`` is the compiled engine's columnar path — operators
# exchange :class:`repro.expr.vector.VectorBatch` blocks (per-column
# lists + selection vectors) and materialize row tuples late, at
# pipeline breakers; ``interpreted`` routes every expression through
# the tree-walking interpreter (:mod:`repro.expr.evaluate`) and is
# kept as the semantic reference — all modes must produce
# byte-identical results.
MODE_COMPILED = "compiled"
MODE_INTERPRETED = "interpreted"
MODE_VECTOR = "vector"
_MODES = (MODE_COMPILED, MODE_INTERPRETED, MODE_VECTOR)

DEFAULT_BATCH_SIZE = 1024

# Sentinel: resolve per mode via resolve_batch_size (compiled/vector
# get DEFAULT_BATCH_SIZE; interpreted gets 1 — the pre-batching
# Volcano row-at-a-time configuration it exists to preserve).
BATCH_SIZE_AUTO = 0


def resolve_batch_size(mode: str, batch_size: int) -> int:
    """Resolve ``batch_size`` for ``mode``, validating exactly once.

    Only the ``BATCH_SIZE_AUTO`` sentinel selects a per-mode default;
    any explicit positive value — including 1 with the compiled engine
    — is honoured as-is, and re-resolving an already-resolved value is
    the identity (nested contexts can copy a parent's ``batch_size``
    without re-triggering the sentinel logic). Booleans are rejected
    explicitly: ``False == BATCH_SIZE_AUTO`` would silently alias the
    sentinel.
    """
    if isinstance(batch_size, bool) or not isinstance(batch_size, int):
        raise ExecutionError(
            f"batch_size must be an int, got {batch_size!r}"
        )
    if batch_size == BATCH_SIZE_AUTO:
        return 1 if mode == MODE_INTERPRETED else DEFAULT_BATCH_SIZE
    if batch_size < 1:
        raise ExecutionError("batch_size must be positive")
    return batch_size


# Fault-injection slot (see repro.verify.faults). None — the default —
# compiles the hooks out: every CancelToken.check() pays one pointer
# test and nothing else. The verify layer installs a callable here to
# force timeouts/cancellations mid-plan deterministically.
_FAULT_HOOK: Optional[Callable[["CancelToken"], None]] = None


def set_fault_hook(
    hook: Optional[Callable[["CancelToken"], None]],
) -> Optional[Callable[["CancelToken"], None]]:
    """Install (or clear, with None) the checkpoint fault hook.

    Returns the previous hook so callers can restore it.
    """
    global _FAULT_HOOK
    previous = _FAULT_HOOK
    _FAULT_HOOK = hook
    return previous


class CancelToken:
    """Cooperative cancellation + deadline for one query execution.

    The token travels on the :class:`ExecutionContext`; operators poll
    :meth:`check` at batch boundaries (the shared chokepoint is
    ``PhysicalOperator.batches``), so a tripped token stops a runaway
    scan/sort/join from *inside* its pull loop. Tripping is one-way:
    there is no reset, a token serves exactly one query.

    ``timeout_seconds=None`` means no deadline; the token can still be
    cancelled explicitly. Monotonic time keeps deadlines immune to
    wall-clock adjustments.
    """

    __slots__ = ("deadline", "_cancelled", "_reason", "__weakref__")

    def __init__(self, timeout_seconds: Optional[float] = None):
        self.deadline = (
            time.monotonic() + timeout_seconds
            if timeout_seconds is not None
            else None
        )
        self._cancelled = False
        self._reason = ""

    def cancel(self, reason: str = "query cancelled") -> None:
        """Trip the token; the next checkpoint raises QueryCancelled."""
        self._reason = reason
        self._cancelled = True

    def expire(self) -> None:
        """Force the deadline into the past (fault injection / tests)."""
        self.deadline = time.monotonic() - 1.0

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None when unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def check(self) -> None:
        """Raise if the query should stop; otherwise return cheaply."""
        if _FAULT_HOOK is not None:
            _FAULT_HOOK(self)
        if self._cancelled:
            raise QueryCancelled(self._reason)
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise QueryTimeout("query exceeded its deadline")


def default_exec_mode() -> str:
    """Engine mode from the REPRO_EXEC env var (default: compiled)."""
    mode = os.environ.get("REPRO_EXEC", MODE_COMPILED).strip().lower()
    if mode not in _MODES:
        raise ExecutionError(
            f"REPRO_EXEC={mode!r} is not a known executor mode; "
            f"choose one of {_MODES}"
        )
    return mode


@dataclass
class OperatorMetrics:
    """Runtime counters for one operator within one execution.

    ``seconds`` is cumulative wall-clock time spent producing this
    operator's batches *including* its children (the time is measured
    around the operator's own batch generator, which pulls from the
    children inside it).
    """

    label: str = ""
    rows: int = 0
    batches: int = 0
    seconds: float = 0.0
    # Rows pulled from the input before selection (filters, join
    # probes); rows/rows_in is the operator's observed selectivity.
    rows_in: int = 0
    # Vector engine: how many blocks this operator collapsed back into
    # row tuples (the late-materialization points).
    materializations: int = 0
    # Sort operators: rows this operator sorted, prefix-groups it
    # flushed (partial sort only), and simulated spill pages it charged.
    sorted_rows: int = 0
    groups: int = 0
    spill_pages: int = 0

    def render(self) -> str:
        text = (
            f"rows={self.rows} batches={self.batches} "
            f"time={self.seconds * 1000.0:.1f}ms"
        )
        if self.rows_in > 0:
            text += f" sel={self.rows / self.rows_in:.4f}"
        if self.materializations > 0:
            text += f" mat={self.materializations}"
        if self.sorted_rows > 0:
            text += f" sorted={self.sorted_rows}"
        if self.groups > 0:
            text += f" groups={self.groups}"
        if self.spill_pages > 0:
            text += f" spill={self.spill_pages}p"
        return text


@dataclass
class ExecutionContext:
    """Carried through an operator tree during execution.

    Attributes:
        database: storage handle (buffer pool, heaps, index trees).
        sort_memory_rows: in-memory sort threshold; larger inputs charge
            simulated spill I/O.
        spill_pages: simulated pages written+read by spilling operators.
        rows_sorted / rows_hashed: work counters for introspection.
        batch_size: rows per batch in the ``batches()`` protocol.
            Defaults per mode: DEFAULT_BATCH_SIZE when compiled/vector,
            1 (row-at-a-time, the pre-batching engine's behaviour) when
            interpreted; pass an explicit value to override either
            (see :func:`resolve_batch_size`).
        mode: ``compiled`` (closure kernels), ``vector`` (columnar
            selection-vector pipeline), or ``interpreted``
            (tree-walking reference); defaults to the REPRO_EXEC env
            var, falling back to compiled.
        cancel_token: cooperative deadline/cancellation token polled at
            operator batch boundaries; None disables checkpointing.
        metrics: per-operator runtime counters keyed by operator object,
            rendered by ``PhysicalOperator.explain(analyze=context)``.
    """

    database: Database
    sort_memory_rows: int = 100_000
    spill_pages: int = 0
    rows_sorted: int = 0
    rows_partial_sorted: int = 0
    rows_hashed: int = 0
    batch_size: int = BATCH_SIZE_AUTO
    mode: str = field(default_factory=default_exec_mode)
    cancel_token: Optional[CancelToken] = None
    metrics: Dict[object, OperatorMetrics] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ExecutionError(
                f"unknown executor mode {self.mode!r}; choose one of {_MODES}"
            )
        self.batch_size = resolve_batch_size(self.mode, self.batch_size)

    @property
    def compiled(self) -> bool:
        """True for both compiled engines (row kernels and vector):
        expression work runs through :mod:`repro.expr.compile`."""
        return self.mode != MODE_INTERPRETED

    @property
    def vectorized(self) -> bool:
        return self.mode == MODE_VECTOR

    def metrics_for(self, operator: object) -> OperatorMetrics:
        entry = self.metrics.get(operator)
        if entry is None:
            entry = OperatorMetrics(label=operator.label())
            self.metrics[operator] = entry
        return entry

    def worker_clone(self) -> "ExecutionContext":
        """Context for one partition worker thread.

        Shares the database and engine settings but owns its counters,
        metrics, and :class:`CancelToken` (same deadline as the parent),
        so a worker can be cancelled or fault-injected individually and
        its counter slice merged back race-free via :meth:`absorb`.
        """
        token = None
        if self.cancel_token is not None:
            token = CancelToken()
            token.deadline = self.cancel_token.deadline
        return ExecutionContext(
            database=self.database,
            sort_memory_rows=self.sort_memory_rows,
            batch_size=self.batch_size,
            mode=self.mode,
            cancel_token=token,
        )

    def absorb(self, worker: "ExecutionContext") -> None:
        """Merge a worker clone's counters and metrics into this context.

        Called at the exchange's gather point after the worker finished;
        the clone is never touched by its thread again, so plain
        addition is safe.
        """
        self.spill_pages += worker.spill_pages
        self.rows_sorted += worker.rows_sorted
        self.rows_partial_sorted += worker.rows_partial_sorted
        self.rows_hashed += worker.rows_hashed
        self.metrics.update(worker.metrics)

    def charge_spill(self, rows: int, rows_per_page: int = 64) -> int:
        """Record spill I/O for an operator overflowing memory.

        Returns the pages charged (write + read passes) so operators can
        also attribute the spill to their own metrics.
        """
        pages = max(1, rows // max(1, rows_per_page))
        # One write pass + one read pass.
        charged = 2 * pages
        self.spill_pages += charged
        return charged

    def simulated_io_ms(self) -> float:
        """Total modelled I/O time: buffer pool misses + spills."""
        from repro.storage.buffer import IoStats

        return (
            self.database.buffer_pool.stats.simulated_io_ms()
            + self.spill_pages * IoStats.SEQUENTIAL_MS
        )
