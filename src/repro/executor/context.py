"""Execution context: shared state for one query execution."""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage import Database


@dataclass
class ExecutionContext:
    """Carried through an operator tree during execution.

    Attributes:
        database: storage handle (buffer pool, heaps, index trees).
        sort_memory_rows: in-memory sort threshold; larger inputs charge
            simulated spill I/O.
        spill_pages: simulated pages written+read by spilling operators.
        rows_sorted / rows_hashed: work counters for introspection.
    """

    database: Database
    sort_memory_rows: int = 100_000
    spill_pages: int = 0
    rows_sorted: int = 0
    rows_hashed: int = 0

    def charge_spill(self, rows: int, rows_per_page: int = 64) -> None:
        """Record spill I/O for an operator overflowing memory."""
        pages = max(1, rows // max(1, rows_per_page))
        # One write pass + one read pass.
        self.spill_pages += 2 * pages

    def simulated_io_ms(self) -> float:
        """Total modelled I/O time: buffer pool misses + spills."""
        from repro.storage.buffer import IoStats

        return (
            self.database.buffer_pool.stats.simulated_io_ms()
            + self.spill_pages * IoStats.SEQUENTIAL_MS
        )
