"""Translate optimizer plans into executable operator trees.

Host variables (``:name`` parameters) are bound here: planning treated
them as opaque constants (§4.1); execution substitutes the provided
values into every expression before operators are instantiated.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ExecutionError
from repro.executor.aggregate import (
    HashDistinctOp,
    HashGroupByOp,
    SortedDistinctOp,
    SortedGroupByOp,
)
from repro.executor.context import ExecutionContext
from repro.executor.joins import (
    HashJoinOp,
    MergeJoinOp,
    NestedLoopIndexJoinOp,
    NestedLoopJoinOp,
)
from repro.executor.operators import (
    FilterOp,
    IndexScanOp,
    PhysicalOperator,
    ProjectOp,
    SortOp,
    TableScanOp,
)
from repro.expr.nodes import ColumnRef
from repro.expr.schema import RowSchema
from repro.optimizer.plan import OpKind, Plan, PlanNode
from repro.storage import Database


def build_operator(
    node: PlanNode,
    database: Database,
    parameters: Optional[Dict[str, object]] = None,
) -> PhysicalOperator:
    """Recursively build the physical operator for one plan node."""
    from repro.expr.nodes import Expression
    from repro.expr.transform import bind_parameters

    children = [
        build_operator(child, database, parameters) for child in node.children
    ]

    def bind(expression):
        if expression is None or parameters is None:
            return expression
        if isinstance(expression, Expression):
            return bind_parameters(expression, parameters)
        return expression

    args = dict(node.args)
    for key in ("predicate", "residual"):
        if key in args:
            args[key] = bind(args[key])
    if "expressions" in args:
        args["expressions"] = [bind(e) for e in args["expressions"]]
    if "aggregates" in args and parameters is not None:
        from repro.expr.nodes import Aggregate

        rebound = []
        for name, aggregate in args["aggregates"]:
            if aggregate.argument is not None:
                aggregate = Aggregate(
                    aggregate.kind,
                    bind(aggregate.argument),
                    aggregate.distinct,
                    aggregate.alias,
                )
            rebound.append((name, aggregate))
        args["aggregates"] = rebound

    kind = node.kind
    if kind is OpKind.TABLE_SCAN:
        return TableScanOp(args["table"], args["alias"], node.properties.schema)
    if kind is OpKind.INDEX_SCAN:
        return IndexScanOp(
            table_name=args["table"],
            index_name=args["index"],
            alias=args["alias"],
            schema=node.properties.schema,
            low=args.get("low"),
            high=args.get("high"),
            low_inclusive=args.get("low_inclusive", True),
            high_inclusive=args.get("high_inclusive", True),
            descending=args.get("descending", False),
        )
    if kind is OpKind.FILTER:
        return FilterOp(children[0], args["predicate"])
    if kind is OpKind.PROJECT:
        return ProjectOp(
            children[0], args["expressions"], node.properties.schema
        )
    if kind is OpKind.SORT:
        return SortOp(children[0], args["order"])
    if kind is OpKind.NLJ:
        return NestedLoopJoinOp(
            children[0],
            children[1],
            args.get("predicate"),
            left_outer=args.get("left_outer", False),
        )
    if kind is OpKind.NLJ_INDEX:
        alias = args["alias"]
        table = database.catalog.table(args["table"])
        inner_schema = RowSchema(
            ColumnRef(alias, column.name) for column in table.columns
        )
        return NestedLoopIndexJoinOp(
            outer=children[0],
            table_name=args["table"],
            index_name=args["index"],
            alias=alias,
            inner_schema=inner_schema,
            probe_columns=args["probe_columns"],
            residual=args.get("residual"),
            ordered=args.get("ordered", False),
            left_outer=args.get("left_outer", False),
        )
    if kind is OpKind.MERGE_JOIN:
        return MergeJoinOp(
            children[0],
            children[1],
            args["outer_keys"],
            args["inner_keys"],
            args.get("residual"),
        )
    if kind is OpKind.HASH_JOIN:
        return HashJoinOp(
            children[0],
            children[1],
            args["outer_keys"],
            args["inner_keys"],
            args.get("residual"),
            left_outer=args.get("left_outer", False),
        )
    if kind is OpKind.CONCAT:
        from repro.executor.operators import ConcatOp

        return ConcatOp(children, node.properties.schema)
    if kind is OpKind.LIMIT:
        from repro.executor.operators import LimitOp

        return LimitOp(children[0], args["count"])
    if kind is OpKind.TOPN:
        from repro.executor.operators import TopNSortOp

        return TopNSortOp(children[0], args["order"], args["count"])
    if kind is OpKind.GROUP_SORTED:
        return SortedGroupByOp(
            children[0], args["group_columns"], args["aggregates"]
        )
    if kind is OpKind.GROUP_HASH:
        return HashGroupByOp(
            children[0], args["group_columns"], args["aggregates"]
        )
    if kind is OpKind.DISTINCT_SORTED:
        return SortedDistinctOp(children[0])
    if kind is OpKind.DISTINCT_HASH:
        return HashDistinctOp(children[0])
    raise ExecutionError(f"cannot build operator for {kind}")


def build_executor(
    plan: Plan,
    database: Database,
    parameters: Optional[Dict[str, object]] = None,
) -> PhysicalOperator:
    """Operator tree for a whole plan, with host variables bound."""
    return build_operator(plan.root, database, parameters)


def execute_plan(
    plan: Plan,
    database: Database,
    context: ExecutionContext = None,
    parameters: Optional[Dict[str, object]] = None,
) -> List[tuple]:
    """Run a plan to completion and return its rows."""
    if context is None:
        context = ExecutionContext(database)
    return build_executor(plan, database, parameters).execute(context)
