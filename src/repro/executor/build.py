"""Translate optimizer plans into executable operator trees.

Host variables (``:name`` parameters) stay as ``Parameter`` nodes in
the operator tree: planning treated them as opaque constants (§4.1),
and execution resolves them through the thread-local binding scope
(:mod:`repro.expr.bindings`) at evaluation time. Keeping the nodes in
place means the compiled kernels — memoized per (expression, schema) —
are reused verbatim across executions with different bindings, which is
what makes the plan cache's re-binding free.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cost.estimate import (
    SelectivityEstimator,
    StatsView,
    term_selectivity_hints,
)
from repro.errors import ExecutionError
from repro.executor.aggregate import (
    HashDistinctOp,
    HashGroupByOp,
    SortedDistinctOp,
    SortedGroupByOp,
)
from repro.executor.context import ExecutionContext
from repro.executor.joins import (
    HashJoinOp,
    MergeJoinOp,
    NestedLoopIndexJoinOp,
    NestedLoopJoinOp,
)
from repro.executor.operators import (
    FilterOp,
    IndexScanOp,
    PartialSortOp,
    PhysicalOperator,
    ProjectOp,
    SortOp,
    TableScanOp,
)
from repro.expr.nodes import ColumnRef
from repro.expr.schema import RowSchema
from repro.optimizer.plan import OpKind, Plan, PlanNode
from repro.storage import Database


def _plan_tables(
    node: PlanNode, database: Database, tables: Dict[str, object]
) -> None:
    """Collect alias -> TableSchema for every base-table access in the
    plan, feeding filter-term selectivity estimation."""
    if node.kind in (
        OpKind.TABLE_SCAN,
        OpKind.INDEX_SCAN,
        OpKind.NLJ_INDEX,
        OpKind.PARTITION_SCAN,
    ):
        alias = node.args.get("alias")
        name = node.args.get("table")
        if alias is not None and name is not None:
            tables[alias] = database.catalog.table(name)
    for child in node.children:
        _plan_tables(child, database, tables)


def build_operator(
    node: PlanNode,
    database: Database,
    estimator: Optional[SelectivityEstimator] = None,
    _split_cache: Optional[Dict[int, object]] = None,
    node_map: Optional[Dict[int, PhysicalOperator]] = None,
) -> PhysicalOperator:
    """Recursively build the physical operator for one plan node.

    ``estimator`` (optional) supplies catalog-stats selectivities that
    seed the vector engine's cost-ordered predicate evaluation; without
    it filters run unhinted (adaptive feedback still applies).
    ``_split_cache`` keeps PARTITION_SPLIT buckets that share one plan
    child sharing one built operator — the child must execute once, not
    once per bucket. ``node_map`` (optional) records
    ``id(plan_node) -> operator`` for every node built, letting the
    workload loop join plan estimates against executed metrics.
    """
    if _split_cache is None:
        _split_cache = {}
    operator = _build_node(node, database, estimator, _split_cache, node_map)
    if node_map is not None:
        node_map[id(node)] = operator
    return operator


def _build_node(
    node: PlanNode,
    database: Database,
    estimator: Optional[SelectivityEstimator],
    _split_cache: Dict[int, object],
    node_map: Optional[Dict[int, PhysicalOperator]],
) -> PhysicalOperator:
    args = dict(node.args)
    kind = node.kind
    if kind is OpKind.PARTITION_SPLIT:
        from repro.executor.exchange import PartitionSplitOp, _SplitSource

        shared = node.children[0]
        source = _split_cache.get(id(shared))
        if source is None:
            child_op = build_operator(
                shared, database, estimator, _split_cache, node_map
            )
            positions = [
                shared.properties.schema.position(column)
                for column in args["columns"]
            ]
            source = _SplitSource(child_op, positions, args["count"])
            _split_cache[id(shared)] = source
        return PartitionSplitOp(source, args["index"], node.properties.schema)
    children = [
        build_operator(child, database, estimator, _split_cache, node_map)
        for child in node.children
    ]
    if kind is OpKind.TABLE_SCAN:
        return TableScanOp(args["table"], args["alias"], node.properties.schema)
    if kind is OpKind.INDEX_SCAN:
        return IndexScanOp(
            table_name=args["table"],
            index_name=args["index"],
            alias=args["alias"],
            schema=node.properties.schema,
            low=args.get("low"),
            high=args.get("high"),
            low_inclusive=args.get("low_inclusive", True),
            high_inclusive=args.get("high_inclusive", True),
            descending=args.get("descending", False),
            partition=args.get("partition"),
        )
    if kind is OpKind.FILTER:
        hints = (
            term_selectivity_hints(args["predicate"], estimator)
            if estimator is not None
            else None
        )
        return FilterOp(children[0], args["predicate"], selectivity_hints=hints)
    if kind is OpKind.PROJECT:
        return ProjectOp(
            children[0], args["expressions"], node.properties.schema
        )
    if kind is OpKind.SORT:
        return SortOp(children[0], args["order"])
    if kind is OpKind.PARTIAL_SORT:
        return PartialSortOp(
            children[0],
            args["order"],
            args["prefix"],
            limit=args.get("limit"),
        )
    if kind is OpKind.NLJ:
        return NestedLoopJoinOp(
            children[0],
            children[1],
            args.get("predicate"),
            left_outer=args.get("left_outer", False),
        )
    if kind is OpKind.NLJ_INDEX:
        alias = args["alias"]
        table = database.catalog.table(args["table"])
        inner_schema = RowSchema(
            ColumnRef(alias, column.name) for column in table.columns
        )
        return NestedLoopIndexJoinOp(
            outer=children[0],
            table_name=args["table"],
            index_name=args["index"],
            alias=alias,
            inner_schema=inner_schema,
            probe_columns=args["probe_columns"],
            residual=args.get("residual"),
            ordered=args.get("ordered", False),
            left_outer=args.get("left_outer", False),
        )
    if kind is OpKind.MERGE_JOIN:
        return MergeJoinOp(
            children[0],
            children[1],
            args["outer_keys"],
            args["inner_keys"],
            args.get("residual"),
        )
    if kind is OpKind.HASH_JOIN:
        return HashJoinOp(
            children[0],
            children[1],
            args["outer_keys"],
            args["inner_keys"],
            args.get("residual"),
            left_outer=args.get("left_outer", False),
        )
    if kind is OpKind.CONCAT:
        from repro.executor.operators import ConcatOp

        return ConcatOp(children, node.properties.schema)
    if kind is OpKind.LIMIT:
        from repro.executor.operators import LimitOp

        return LimitOp(children[0], args["count"])
    if kind is OpKind.TOPN:
        from repro.executor.operators import TopNSortOp

        return TopNSortOp(children[0], args["order"], args["count"])
    if kind is OpKind.GROUP_SORTED:
        return SortedGroupByOp(
            children[0], args["group_columns"], args["aggregates"]
        )
    if kind is OpKind.GROUP_HASH:
        return HashGroupByOp(
            children[0], args["group_columns"], args["aggregates"]
        )
    if kind is OpKind.DISTINCT_SORTED:
        return SortedDistinctOp(children[0])
    if kind is OpKind.DISTINCT_HASH:
        return HashDistinctOp(children[0])
    if kind is OpKind.PARTITION_SCAN:
        from repro.executor.exchange import PartitionScanOp

        return PartitionScanOp(
            args["table"],
            args["alias"],
            node.properties.schema,
            args["partitions"],
        )
    if kind is OpKind.GATHER_EXCHANGE:
        from repro.executor.exchange import GatherExchangeOp

        return GatherExchangeOp(children, node.properties.schema)
    if kind is OpKind.MERGE_EXCHANGE:
        from repro.executor.exchange import MergeExchangeOp

        return MergeExchangeOp(
            children, node.properties.schema, args["order"]
        )
    raise ExecutionError(f"cannot build operator for {kind}")


def build_executor(
    plan: Plan,
    database: Database,
    node_map: Optional[Dict[int, PhysicalOperator]] = None,
) -> PhysicalOperator:
    """Operator tree for a whole plan.

    Host variables resolve per execution — install bindings with
    :func:`repro.expr.bindings.parameter_scope` around ``execute``.
    """
    tables: Dict[str, object] = {}
    _plan_tables(plan.root, database, tables)
    estimator = (
        SelectivityEstimator(
            StatsView(tables, overrides=database.catalog.stats_overrides)
        )
        if tables
        else None
    )
    return build_operator(plan.root, database, estimator, node_map=node_map)


def execute_plan(
    plan: Plan,
    database: Database,
    context: ExecutionContext = None,
    parameters: Optional[Dict[str, object]] = None,
) -> List[tuple]:
    """Run a plan to completion and return its rows."""
    from repro.expr.bindings import parameter_scope

    if context is None:
        context = ExecutionContext(database)
    with parameter_scope(parameters):
        return build_executor(plan, database).execute(context)
