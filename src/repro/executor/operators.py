"""Leaf and unary physical operators: scans, filter, project, sort."""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.ordering import OrderSpec, SortDirection
from repro.errors import ExecutionError
from repro.executor.context import ExecutionContext
from repro.expr.evaluate import evaluate, evaluate_predicate
from repro.expr.nodes import ColumnRef, Expression
from repro.expr.schema import RowSchema
from repro.sqltypes import sort_key
from repro.storage.database import encode_index_key

Row = Tuple[Any, ...]


class PhysicalOperator:
    """Base class: every operator exposes a schema and a row iterator."""

    def __init__(self, schema: RowSchema):
        self.schema = schema

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        raise NotImplementedError

    def execute(self, context: ExecutionContext) -> List[Row]:
        """Drain the operator into a list."""
        return list(self.rows(context))

    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = [" " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 2))
        return "\n".join(lines)


class TableScanOp(PhysicalOperator):
    """Sequential scan of a base table under an alias."""

    def __init__(self, table_name: str, alias: str, schema: RowSchema):
        super().__init__(schema)
        self.table_name = table_name
        self.alias = alias

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        store = context.database.store(self.table_name)
        for _rid, row in store.heap.scan():
            yield row

    def label(self) -> str:
        return f"table scan {self.table_name} as {self.alias}"


class IndexScanOp(PhysicalOperator):
    """Ordered scan through an index, optionally bounded.

    ``low``/``high`` are tuples of raw values keying a prefix of the
    index columns; ``fetch`` controls whether heap rows are fetched (an
    index-only scan would pass False — we always fetch, since our schema
    is the full row).
    """

    def __init__(
        self,
        table_name: str,
        index_name: str,
        alias: str,
        schema: RowSchema,
        low: Optional[Tuple[Any, ...]] = None,
        high: Optional[Tuple[Any, ...]] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        descending: bool = False,
    ):
        super().__init__(schema)
        self.table_name = table_name
        self.index_name = index_name
        self.alias = alias
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.descending = descending

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        store = context.database.store(self.table_name)
        index, tree = store.indexes[self.index_name]
        directions = [column.direction for column in index.key]
        low_key = (
            encode_index_key(self.low, directions[: len(self.low)])
            if self.low is not None
            else None
        )
        high_key = (
            encode_index_key(self.high, directions[: len(self.high)])
            if self.high is not None
            else None
        )
        for _key, rid in tree.scan_range(
            low=low_key,
            high=high_key,
            low_inclusive=self.low_inclusive,
            high_inclusive=self.high_inclusive,
            descending=self.descending,
        ):
            yield store.heap.fetch(rid)

    def label(self) -> str:
        direction = " (backward)" if self.descending else ""
        bounds = ""
        if self.low is not None or self.high is not None:
            bounds = f" bounds[{self.low}..{self.high}]"
        return (
            f"index scan {self.index_name} on {self.table_name} "
            f"as {self.alias}{direction}{bounds}"
        )


class FilterOp(PhysicalOperator):
    """Applies a predicate to its input."""

    def __init__(self, child: PhysicalOperator, predicate: Expression):
        super().__init__(child.schema)
        self.child = child
        self.predicate = predicate

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        predicate, schema = self.predicate, self.schema
        for row in self.child.rows(context):
            if evaluate_predicate(predicate, schema, row):
                yield row

    def label(self) -> str:
        return f"filter [{self.predicate}]"


class ProjectOp(PhysicalOperator):
    """Computes output expressions (including plain column selection)."""

    def __init__(
        self,
        child: PhysicalOperator,
        expressions: Sequence[Expression],
        schema: RowSchema,
    ):
        if len(expressions) != len(schema):
            raise ExecutionError("projection arity mismatch")
        super().__init__(schema)
        self.child = child
        self.expressions = list(expressions)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        child_schema = self.child.schema
        simple_positions: Optional[List[int]] = []
        for expression in self.expressions:
            if (
                isinstance(expression, ColumnRef)
                and expression in child_schema
            ):
                simple_positions.append(child_schema.position(expression))
            else:
                simple_positions = None
                break
        if simple_positions is not None:
            positions = simple_positions
            for row in self.child.rows(context):
                yield tuple(row[position] for position in positions)
            return
        for row in self.child.rows(context):
            yield tuple(
                evaluate(expression, child_schema, row)
                for expression in self.expressions
            )

    def label(self) -> str:
        inner = ", ".join(str(column) for column in self.schema.columns)
        return f"project [{inner}]"


def make_sort_key_function(
    schema: RowSchema, order: OrderSpec
) -> Callable[[Row], Tuple[Any, ...]]:
    """Build a sort-key callable for records of ``schema``."""
    plan = [
        (schema.position(key.column), key.direction is SortDirection.DESC)
        for key in order
    ]

    def key_of(row: Row) -> Tuple[Any, ...]:
        return tuple(
            sort_key(row[position], descending) for position, descending in plan
        )

    return key_of


class SortOp(PhysicalOperator):
    """External merge sort on an order specification.

    Inputs within the context's sort memory are sorted in place. Larger
    inputs go through the classic two-phase algorithm — sorted run
    generation followed by a k-way heap merge — with spill I/O charged
    per run written and re-read, mirroring the cost model.
    """

    def __init__(self, child: PhysicalOperator, order: OrderSpec):
        super().__init__(child.schema)
        if order.is_empty():
            raise ExecutionError("sort needs a non-empty order")
        self.child = child
        self.order = order

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        import heapq

        key_of = make_sort_key_function(self.schema, self.order)
        memory_rows = max(1, context.sort_memory_rows)
        runs: List[List[Row]] = []
        buffered: List[Row] = []
        total = 0
        for row in self.child.rows(context):
            buffered.append(row)
            total += 1
            if len(buffered) >= memory_rows:
                buffered.sort(key=key_of)
                runs.append(buffered)
                context.charge_spill(len(buffered))
                buffered = []
        context.rows_sorted += total
        if not runs:
            buffered.sort(key=key_of)
            yield from buffered
            return
        if buffered:
            buffered.sort(key=key_of)
            runs.append(buffered)
            context.charge_spill(len(buffered))
        yield from heapq.merge(*runs, key=key_of)

    def label(self) -> str:
        return f"sort {self.order}"


class LimitOp(PhysicalOperator):
    """Emits at most ``count`` rows (FETCH FIRST n ROWS ONLY)."""

    def __init__(self, child: PhysicalOperator, count: int):
        if count < 1:
            raise ExecutionError("limit must be positive")
        super().__init__(child.schema)
        self.child = child
        self.count = count

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        emitted = 0
        for row in self.child.rows(context):
            yield row
            emitted += 1
            if emitted >= self.count:
                return

    def label(self) -> str:
        return f"limit {self.count}"


class TopNSortOp(PhysicalOperator):
    """Partial sort: the ``count`` smallest rows under ``order``.

    A bounded heap replaces the full sort when FETCH FIRST follows an
    unsatisfied ORDER BY — O(n log k) comparisons and no spill, the
    Top-N analogue of the paper's minimal-sort-column economics.
    """

    def __init__(self, child: PhysicalOperator, order: OrderSpec, count: int):
        if order.is_empty():
            raise ExecutionError("top-n sort needs a non-empty order")
        if count < 1:
            raise ExecutionError("top-n count must be positive")
        super().__init__(child.schema)
        self.child = child
        self.order = order
        self.count = count

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        import heapq

        key_of = make_sort_key_function(self.schema, self.order)
        # heapq is a min-heap; keep the k smallest by pushing inverted
        # positions is awkward for arbitrary keys, so track the k best
        # with nlargest/nsmallest semantics via a sorted buffer capped
        # lazily. For realistic k this insort approach is O(n log k).
        import bisect

        buffer: List[Any] = []  # (key, tie, row), ascending
        tie = 0
        for row in self.child.rows(context):
            entry = (key_of(row), tie, row)
            tie += 1
            if len(buffer) < self.count:
                bisect.insort(buffer, entry)
            elif entry[0] < buffer[-1][0]:
                bisect.insort(buffer, entry)
                buffer.pop()
        context.rows_sorted += tie
        for _key, _tie, row in buffer:
            yield row

    def label(self) -> str:
        return f"top-{self.count} sort {self.order}"


class ConcatOp(PhysicalOperator):
    """Appends its children's streams (UNION ALL).

    Children must share arity; the output schema is supplied by the
    planner (synthetic union column names).
    """

    def __init__(self, children: Sequence[PhysicalOperator], schema: RowSchema):
        if len(children) < 2:
            raise ExecutionError("concat needs at least two inputs")
        for child in children:
            if len(child.schema) != len(schema):
                raise ExecutionError("concat arity mismatch")
        super().__init__(schema)
        self._children = list(children)

    def children(self) -> Sequence[PhysicalOperator]:
        return tuple(self._children)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        for child in self._children:
            yield from child.rows(context)

    def label(self) -> str:
        return f"concat ({len(self._children)} branches)"


class MaterializeOp(PhysicalOperator):
    """Buffers its input for repeated iteration (NLJ inner reuse)."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema)
        self.child = child
        self._buffer: Optional[List[Row]] = None

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        if self._buffer is None:
            self._buffer = list(self.child.rows(context))
        return iter(self._buffer)

    def label(self) -> str:
        return "materialize"
