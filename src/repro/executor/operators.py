"""Leaf and unary physical operators: scans, filter, project, sort.

Operators implement a batch-at-a-time protocol: ``_batches(context)``
yields lists of row tuples (at most ``context.batch_size`` rows each);
the public ``batches(context)`` wrapper adds per-operator runtime
metrics (rows, batches, cumulative wall time) and ``rows(context)`` /
``execute(context)`` are thin adapters over it.

Expression work is engine-switched: in ``compiled`` mode predicates,
projections, and sort keys run through closures and batch kernels from
:mod:`repro.expr.compile`; in ``interpreted`` mode every record goes
through the tree-walking interpreter (:mod:`repro.expr.evaluate`),
which is kept as the semantic reference. In ``vector`` mode
vector-capable operators exchange :class:`repro.expr.vector.VectorBatch`
blocks (columns + selection vector) through ``vector_batches`` and only
collapse back to row tuples at pipeline breakers or the root — any
operator that pulls ``batches()`` from a vector-capable child gets
materialized rows automatically. All engines must produce identical
rows in identical order.
"""

from __future__ import annotations

import bisect
import heapq
import operator as operator_module
import time
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.instrument import COUNTERS
from repro.core.ordering import OrderSpec, SortDirection
from repro.errors import ExecutionError
from repro.executor.context import ExecutionContext
from repro.expr.compile import (
    ordered_key_kernel,
    predicate_kernel,
    projection_kernel,
)
from repro.expr.bindings import active_value
from repro.expr.evaluate import evaluate, evaluate_predicate
from repro.expr.nodes import ColumnRef, Expression, Parameter
from repro.expr.schema import RowSchema
from repro.expr.vector import (
    RowBlock,
    VectorBatch,
    compile_vector_filter,
    vector_projection_kernel,
)
from repro.sqltypes import is_null, sort_key
from repro.storage.database import encode_index_key

Row = Tuple[Any, ...]
Batch = List[Row]


def count_interpreted(rows: int = 1) -> None:
    """Tally tree-walking expression evaluations (one per record per
    expression). The execution counter-budget test pins this to zero in
    compiled mode, so a kernel silently falling back to the interpreter
    fails loudly."""
    COUNTERS["exec.interpreted.evals"] = (
        COUNTERS.get("exec.interpreted.evals", 0) + rows
    )


def chunked(rows: Iterable[Row], size: int) -> Iterator[Batch]:
    """Group an iterable of rows into batches of at most ``size``."""
    batch: Batch = []
    append = batch.append
    for row in rows:
        append(row)
        if len(batch) >= size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


def rechunk(rows: Sequence[Row], size: int) -> Iterator[Batch]:
    """Batches over an in-memory row list (cheap slicing).

    A slice of a list is already a fresh list, so each yielded batch is
    independent of the source buffer — no second copy needed.
    """
    for start in range(0, len(rows), size):
        yield rows[start : start + size]


class PhysicalOperator:
    """Base class: every operator exposes a schema and batch/row iterators."""

    def __init__(self, schema: RowSchema):
        self.schema = schema

    def batches(self, context: ExecutionContext) -> Iterator[Batch]:
        """Instrumented batch stream — the primary pull interface.

        This wrapper is also the universal cancellation checkpoint: the
        context's token (when present) is polled before every batch is
        pulled, on every operator in the tree, in both engines. An
        operator only needs its own explicit ``token.check()`` when a
        single pull can do unbounded work without pulling a child batch
        (per-row expansion loops — see the nested-loop join).
        """
        metrics = context.metrics_for(self)
        produce = self._batches(context)
        token = context.cancel_token
        perf_counter = time.perf_counter
        while True:
            if token is not None:
                token.check()
            started = perf_counter()
            try:
                batch = next(produce)
            except StopIteration:
                metrics.seconds += perf_counter() - started
                return
            metrics.seconds += perf_counter() - started
            metrics.batches += 1
            metrics.rows += len(batch)
            yield batch

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        raise NotImplementedError

    # Vector protocol. Operators that can stream VectorBatch blocks
    # natively set vector_capable and implement _vector_batches; in
    # vector mode their row-protocol _batches delegates to
    # _materialized_batches, so any parent that pulls batches() — a
    # sort buffering its input, a hash join building its table, the
    # root drain — becomes a late-materialization point without
    # knowing about blocks at all.
    vector_capable = False

    def vector_batches(
        self, context: ExecutionContext
    ) -> Iterator[VectorBatch]:
        """Instrumented vector-block stream (the ``vector`` engine's
        pull interface).

        Non-capable operators run their ordinary (already instrumented)
        ``batches`` path and are lifted into zero-copy
        :class:`RowBlock` wrappers; capable operators stream native
        blocks with the same metrics and cancellation checkpoints as
        ``batches``. Exactly one instrumentation wrapper runs per
        operator per execution, whichever protocol pulls it.
        """
        if not self.vector_capable:
            for batch in self.batches(context):
                yield RowBlock(batch)
            return
        metrics = context.metrics_for(self)
        produce = self._vector_batches(context)
        token = context.cancel_token
        perf_counter = time.perf_counter
        while True:
            if token is not None:
                token.check()
            started = perf_counter()
            try:
                block = next(produce)
            except StopIteration:
                metrics.seconds += perf_counter() - started
                return
            metrics.seconds += perf_counter() - started
            metrics.batches += 1
            metrics.rows += block.count
            yield block

    def _vector_batches(
        self, context: ExecutionContext
    ) -> Iterator[VectorBatch]:
        raise NotImplementedError

    def _materialized_batches(
        self, context: ExecutionContext
    ) -> Iterator[Batch]:
        """Row batches for a vector-capable operator pulled through the
        row protocol: each block collapses to tuples here, counted as a
        materialization. Pulls the raw ``_vector_batches`` stream — the
        calling ``batches`` wrapper is the one instrumentation layer.
        """
        metrics = context.metrics_for(self)
        for block in self._vector_batches(context):
            metrics.materializations += 1
            rows = block.materialize()
            if rows:
                yield rows

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        """Row-at-a-time adapter over :meth:`batches`."""
        for batch in self.batches(context):
            yield from batch

    def execute(self, context: ExecutionContext) -> List[Row]:
        """Drain the operator into a list."""
        out: List[Row] = []
        for batch in self.batches(context):
            out.extend(batch)
        return out

    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def explain(
        self, indent: int = 0, analyze: Optional[ExecutionContext] = None
    ) -> str:
        """Render the operator tree; with ``analyze`` (an execution
        context the tree ran under) each line carries that run's
        rows/batches/cumulative-time counters."""
        line = " " * indent + self.label()
        if analyze is not None:
            metrics = analyze.metrics.get(self)
            line += (
                f"  [{metrics.render()}]" if metrics is not None
                else "  [not executed]"
            )
        lines = [line]
        for child in self.children():
            lines.append(child.explain(indent + 2, analyze))
        return "\n".join(lines)


class TableScanOp(PhysicalOperator):
    """Sequential scan of a base table under an alias."""

    def __init__(self, table_name: str, alias: str, schema: RowSchema):
        super().__init__(schema)
        self.table_name = table_name
        self.alias = alias

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        store = context.database.store(self.table_name)
        size = context.batch_size
        batch: Batch = []
        for page in store.heap.scan_pages():
            batch.extend(page)
            while len(batch) >= size:
                yield batch[:size]
                batch = batch[size:]
        if batch:
            yield batch

    def label(self) -> str:
        return f"table scan {self.table_name} as {self.alias}"


_NEVER_MATCHES = object()


def _resolve_bound(bound: Optional[Tuple[Any, ...]]) -> Any:
    """Index bound with host variables resolved from the active scope.

    Returns ``None`` for "unbounded", the resolved value tuple, or
    ``_NEVER_MATCHES`` when any bound value is NULL — sargable
    predicates compare the key column against the value, and a
    comparison with NULL is never true.
    """
    if bound is None:
        return None
    resolved = []
    for value in bound:
        if isinstance(value, Parameter):
            value = active_value(value.name)
        if is_null(value):
            return _NEVER_MATCHES
        resolved.append(value)
    return tuple(resolved)


class IndexScanOp(PhysicalOperator):
    """Ordered scan through an index, optionally bounded.

    ``low``/``high`` are tuples of raw values keying a prefix of the
    index columns; ``fetch`` controls whether heap rows are fetched (an
    index-only scan would pass False — we always fetch, since our schema
    is the full row).
    """

    def __init__(
        self,
        table_name: str,
        index_name: str,
        alias: str,
        schema: RowSchema,
        low: Optional[Tuple[Any, ...]] = None,
        high: Optional[Tuple[Any, ...]] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        descending: bool = False,
        partition: Optional[int] = None,
    ):
        super().__init__(schema)
        self.table_name = table_name
        self.index_name = index_name
        self.alias = alias
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.descending = descending
        # Partitioned tables only: scan a single partition's tree (the
        # leaf of a parallel subtree), charging just that partition's
        # pages.
        self.partition = partition

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        low = _resolve_bound(self.low)
        high = _resolve_bound(self.high)
        if low is _NEVER_MATCHES or high is _NEVER_MATCHES:
            # A bound compared against NULL (e.g. a host variable bound
            # to None): the covered predicate is never true, and it was
            # removed from the residual filters, so the scan itself must
            # return nothing.
            return
        store = context.database.store(self.table_name)
        index, tree = store.indexes[self.index_name]
        if self.partition is not None:
            tree = tree.partition(self.partition)
        directions = [column.direction for column in index.key]
        low_key = (
            encode_index_key(low, directions[: len(low)])
            if low is not None
            else None
        )
        high_key = (
            encode_index_key(high, directions[: len(high)])
            if high is not None
            else None
        )
        fetch = store.heap.fetch
        size = context.batch_size
        batch: Batch = []
        append = batch.append
        for _key, rid in tree.scan_range(
            low=low_key,
            high=high_key,
            low_inclusive=self.low_inclusive,
            high_inclusive=self.high_inclusive,
            descending=self.descending,
        ):
            append(fetch(rid))
            if len(batch) >= size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def label(self) -> str:
        direction = " (backward)" if self.descending else ""
        bounds = ""
        if self.low is not None or self.high is not None:
            bounds = f" bounds[{self.low}..{self.high}]"
        part = f" [part {self.partition}]" if self.partition is not None else ""
        return (
            f"index scan {self.index_name} on {self.table_name} "
            f"as {self.alias}{direction}{bounds}{part}"
        )


class FilterOp(PhysicalOperator):
    """Applies a predicate to its input.

    ``selectivity_hints`` (optional) maps predicate subtrees to
    estimated selectivities from the catalog stats; the vector engine
    seeds its term ordering with them and refines per batch.
    """

    vector_capable = True

    def __init__(
        self,
        child: PhysicalOperator,
        predicate: Expression,
        selectivity_hints: Optional[dict] = None,
    ):
        super().__init__(child.schema)
        self.child = child
        self.predicate = predicate
        self.selectivity_hints = selectivity_hints

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _vector_batches(
        self, context: ExecutionContext
    ) -> Iterator[VectorBatch]:
        vector_filter = compile_vector_filter(
            self.predicate, self.schema, self.selectivity_hints
        )
        metrics = context.metrics_for(self)
        for block in self.child.vector_batches(context):
            metrics.rows_in += block.count
            selection = vector_filter(block)
            if not selection:
                continue
            if type(block) is RowBlock and 4 * len(selection) < 3 * block.length:
                # Compact a selective row block instead of carrying the
                # selection: the tuples already exist, so this is one
                # reference gather, and every consumer downstream then
                # works dense instead of indirecting through dead rows.
                rows = block.rows
                yield RowBlock([rows[i] for i in selection])
            else:
                yield block.with_selection(selection)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        if context.vectorized:
            yield from self._materialized_batches(context)
            return
        metrics = context.metrics_for(self)
        if context.compiled:
            kernel = predicate_kernel(self.predicate, self.schema)
            for batch in self.child.batches(context):
                metrics.rows_in += len(batch)
                kept = kernel(batch)
                if kept:
                    yield kept
            return
        predicate, schema = self.predicate, self.schema
        for batch in self.child.batches(context):
            metrics.rows_in += len(batch)
            count_interpreted(len(batch))
            kept = [
                row
                for row in batch
                if evaluate_predicate(predicate, schema, row)
            ]
            if kept:
                yield kept

    def label(self) -> str:
        return f"filter [{self.predicate}]"


class ProjectOp(PhysicalOperator):
    """Computes output expressions (including plain column selection)."""

    vector_capable = True

    def __init__(
        self,
        child: PhysicalOperator,
        expressions: Sequence[Expression],
        schema: RowSchema,
    ):
        if len(expressions) != len(schema):
            raise ExecutionError("projection arity mismatch")
        super().__init__(schema)
        self.child = child
        self.expressions = list(expressions)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _simple_positions(self) -> Optional[List[int]]:
        child_schema = self.child.schema
        positions: List[int] = []
        for expression in self.expressions:
            if (
                isinstance(expression, ColumnRef)
                and expression in child_schema
            ):
                positions.append(child_schema.position(expression))
            else:
                return None
        return positions

    def _vector_batches(
        self, context: ExecutionContext
    ) -> Iterator[VectorBatch]:
        kernel = vector_projection_kernel(
            self.expressions, self.child.schema
        )
        for block in self.child.vector_batches(context):
            if block.count:
                yield kernel(block)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        if context.vectorized:
            yield from self._materialized_batches(context)
            return
        child_schema = self.child.schema
        positions = self._simple_positions()
        if positions is not None:
            if len(positions) == 1:
                only = positions[0]
                getter = lambda row: (row[only],)  # noqa: E731
            else:
                getter = operator_module.itemgetter(*positions)
            for batch in self.child.batches(context):
                yield [getter(row) for row in batch]
            return
        if context.compiled:
            kernel = projection_kernel(self.expressions, child_schema)
            for batch in self.child.batches(context):
                yield kernel(batch)
            return
        expressions = self.expressions
        for batch in self.child.batches(context):
            count_interpreted(len(batch) * len(expressions))
            yield [
                tuple(
                    evaluate(expression, child_schema, row)
                    for expression in expressions
                )
                for row in batch
            ]

    def label(self) -> str:
        inner = ", ".join(str(column) for column in self.schema.columns)
        return f"project [{inner}]"


def make_sort_key_function(
    schema: RowSchema, order: OrderSpec
) -> Callable[[Row], Tuple[Any, ...]]:
    """Build a sort-key callable for records of ``schema``."""
    plan = sort_key_plan(schema, order)

    def key_of(row: Row) -> Tuple[Any, ...]:
        return tuple(
            sort_key(row[position], descending) for position, descending in plan
        )

    return key_of


def sort_key_plan(
    schema: RowSchema, order: OrderSpec
) -> List[Tuple[int, bool]]:
    """(position, descending) pairs for an order over ``schema``."""
    return [
        (schema.position(key.column), key.direction is SortDirection.DESC)
        for key in order
    ]


def _batch_keys(
    context: ExecutionContext,
    schema: RowSchema,
    order: OrderSpec,
) -> Callable[[Batch], List[Tuple[Any, ...]]]:
    """Batch sort-key computation: one compiled kernel call per batch in
    compiled mode, the per-row key function in interpreted mode."""
    plan = sort_key_plan(schema, order)
    if context.compiled:
        return ordered_key_kernel(plan)
    key_of = make_sort_key_function(schema, order)
    return lambda batch: [key_of(row) for row in batch]


class SortOp(PhysicalOperator):
    """External merge sort on an order specification.

    Inputs within the context's sort memory are sorted in place. Larger
    inputs go through the classic two-phase algorithm — sorted run
    generation followed by a k-way heap merge — with spill I/O charged
    per run written and re-read, mirroring the cost model.

    Sort keys are computed exactly once per input row (decorated
    ``(key, sequence, row)`` entries), so neither the in-memory sort nor
    the k-way merge ever re-derives a key; the sequence number keeps the
    sort stable and guarantees rows themselves are never compared.
    """

    def __init__(self, child: PhysicalOperator, order: OrderSpec):
        super().__init__(child.schema)
        if order.is_empty():
            raise ExecutionError("sort needs a non-empty order")
        self.child = child
        self.order = order

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        metrics = context.metrics_for(self)
        keys_of = _batch_keys(context, self.schema, self.order)
        memory_rows = max(1, context.sort_memory_rows)
        size = context.batch_size
        runs: List[List[Tuple[Any, int, Row]]] = []
        buffered: List[Tuple[Any, int, Row]] = []
        sequence = 0
        for batch in self.child.batches(context):
            keys = keys_of(batch)
            start = 0
            total = len(batch)
            while start < total:
                # Fill the in-memory buffer in slices so run boundaries
                # land exactly at memory_rows regardless of batch size.
                take = min(total - start, memory_rows - len(buffered))
                end = start + take
                buffered.extend(
                    zip(
                        keys[start:end],
                        range(sequence, sequence + take),
                        batch[start:end],
                    )
                )
                sequence += take
                start = end
                if len(buffered) >= memory_rows:
                    buffered.sort()
                    runs.append(buffered)
                    metrics.spill_pages += context.charge_spill(
                        len(buffered)
                    )
                    buffered = []
        context.rows_sorted += sequence
        metrics.sorted_rows += sequence
        COUNTERS["exec.sorts"] = COUNTERS.get("exec.sorts", 0) + 1
        COUNTERS["exec.rows_sorted"] = (
            COUNTERS.get("exec.rows_sorted", 0) + sequence
        )
        if not runs:
            buffered.sort()
            # Slice the decorated buffer directly — no full-length
            # intermediate row list before chunking.
            for start in range(0, len(buffered), size):
                yield [
                    entry[2] for entry in buffered[start : start + size]
                ]
            return
        if buffered:
            buffered.sort()
            runs.append(buffered)
            metrics.spill_pages += context.charge_spill(len(buffered))
        merged = heapq.merge(*runs)
        yield from chunked((row for _key, _seq, row in merged), size)

    def label(self) -> str:
        return f"sort {self.order}"


class PartialSortOp(PhysicalOperator):
    """Segmented sort: input already ordered on a prefix of the target.

    The child's delivered order satisfies ``order.prefix(prefix_length)``
    (the optimizer proved it via the order algebra — possibly through
    FDs/ODs/constants, not just a literal column match), so rows with
    equal prefix sort-keys arrive contiguously. Only one prefix-group is
    buffered at a time; each group is sorted on the suffix keys and
    streamed out, which makes the operator incremental and bounds memory
    by the largest group, not the input.

    The ``CancelToken`` is polled at every group boundary: a single pull
    may consume many input groups without yielding (tiny groups smaller
    than a batch), so the universal ``batches()`` checkpoint alone is
    not enough. A group exceeding ``sort_memory_rows`` falls back to
    per-group spill runs merged with ``heapq.merge``.

    Byte-identity invariant: because groups arrive in prefix-sorted
    order and the per-group sort is stable on the suffix (decorated
    ``(suffix_key, sequence, row)`` entries), the output is identical to
    a full stable sort of the whole input on ``order`` — across all
    three engines and against ``SortOp`` itself.

    With ``limit`` set (a FETCH FIRST above), each group only needs its
    ``limit`` smallest rows — later rows of the group can never be in
    the query result because whole earlier groups precede them.
    """

    vector_capable = True

    def __init__(
        self,
        child: PhysicalOperator,
        order: OrderSpec,
        prefix_length: int,
        limit: Optional[int] = None,
    ):
        super().__init__(child.schema)
        if order.is_empty():
            raise ExecutionError("partial sort needs a non-empty order")
        if not 0 < prefix_length < len(order):
            raise ExecutionError(
                "partial sort prefix must be a non-empty proper prefix "
                f"(got {prefix_length} of {len(order)} keys)"
            )
        if limit is not None and limit < 1:
            raise ExecutionError("partial sort limit must be positive")
        self.child = child
        self.order = order
        self.prefix_length = prefix_length
        self.prefix = order.prefix(prefix_length)
        self.suffix = OrderSpec(list(order)[prefix_length:])
        self.limit = limit

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        if context.vectorized:
            yield from self._materialized_batches(context)
            return
        yield from chunked(
            self._sorted_rows(context, self._row_entries(context)),
            context.batch_size,
        )

    def _vector_batches(
        self, context: ExecutionContext
    ) -> Iterator[VectorBatch]:
        for batch in chunked(
            self._sorted_rows(context, self._block_entries(context)),
            context.batch_size,
        ):
            yield RowBlock(batch)

    def _row_entries(
        self, context: ExecutionContext
    ) -> Iterator[Tuple[Tuple[Any, ...], Tuple[Any, ...], Row]]:
        """(prefix key, suffix key, row) per input row (row protocol)."""
        prefix_keys_of = _batch_keys(context, self.schema, self.prefix)
        suffix_keys_of = _batch_keys(context, self.schema, self.suffix)
        for batch in self.child.batches(context):
            yield from zip(
                prefix_keys_of(batch), suffix_keys_of(batch), batch
            )

    def _block_entries(
        self, context: ExecutionContext
    ) -> Iterator[Tuple[Tuple[Any, ...], Tuple[Any, ...], Row]]:
        """Entries from vector blocks: keys gathered column-wise over the
        live selection, rows materialized in the same selection order."""
        prefix_plan = sort_key_plan(self.schema, self.prefix)
        suffix_plan = sort_key_plan(self.schema, self.suffix)
        for block in self.child.vector_batches(context):
            if not block.count:
                continue
            selection = block.live()
            prefix_columns = [
                [
                    sort_key(value, descending)
                    for value in block.gather(position, selection)
                ]
                for position, descending in prefix_plan
            ]
            suffix_columns = [
                [
                    sort_key(value, descending)
                    for value in block.gather(position, selection)
                ]
                for position, descending in suffix_plan
            ]
            rows = block.materialize()
            yield from zip(
                zip(*prefix_columns), zip(*suffix_columns), rows
            )

    def _sorted_rows(
        self,
        context: ExecutionContext,
        entries: Iterator[Tuple[Tuple[Any, ...], Tuple[Any, ...], Row]],
    ) -> Iterator[Row]:
        metrics = context.metrics_for(self)
        token = context.cancel_token
        memory_rows = max(1, context.sort_memory_rows)
        marker: Any = _NO_GROUP
        group: List[Tuple[Tuple[Any, ...], int, Row]] = []
        runs: List[List[Tuple[Tuple[Any, ...], int, Row]]] = []
        sequence = 0
        for prefix_key, suffix_key, row in entries:
            if prefix_key != marker:
                if marker is not _NO_GROUP:
                    yield from self._flush(context, metrics, group, runs)
                    group = []
                    runs = []
                    # Group boundary: one pull can span many groups
                    # without yielding a batch, so poll here too.
                    if token is not None:
                        token.check()
                marker = prefix_key
            group.append((suffix_key, sequence, row))
            sequence += 1
            if len(group) >= memory_rows:
                group.sort()
                runs.append(group)
                metrics.spill_pages += context.charge_spill(len(group))
                group = []
        if marker is not _NO_GROUP:
            yield from self._flush(context, metrics, group, runs)
        context.rows_partial_sorted += sequence
        metrics.sorted_rows += sequence
        COUNTERS["exec.partial_sorts"] = (
            COUNTERS.get("exec.partial_sorts", 0) + 1
        )
        COUNTERS["exec.rows_partial_sorted"] = (
            COUNTERS.get("exec.rows_partial_sorted", 0) + sequence
        )

    def _flush(
        self,
        context: ExecutionContext,
        metrics,
        group: List[Tuple[Tuple[Any, ...], int, Row]],
        runs: List[List[Tuple[Tuple[Any, ...], int, Row]]],
    ) -> Iterator[Row]:
        """Sort and emit one prefix-group (spill-merging if it overflowed)."""
        metrics.groups += 1
        if runs:
            if group:
                group.sort()
                runs.append(group)
                metrics.spill_pages += context.charge_spill(len(group))
            emitted = 0
            for _key, _seq, row in heapq.merge(*runs):
                yield row
                emitted += 1
                if self.limit is not None and emitted >= self.limit:
                    break
            return
        if self.limit is not None and len(group) > self.limit:
            # Bounded heap: (key, sequence) pairs are unique, so
            # nsmallest is deterministic and equals sorted()[:limit].
            for _key, _seq, row in heapq.nsmallest(self.limit, group):
                yield row
            return
        group.sort()
        for _key, _seq, row in group:
            yield row

    def label(self) -> str:
        text = f"partial sort {self.order} (prefix {self.prefix_length})"
        if self.limit is not None:
            text += f" limit {self.limit}"
        return text


# Sentinel marking "no group open yet" in PartialSortOp (None is a
# legal sort-key, so it cannot serve as the marker).
_NO_GROUP = object()


class LimitOp(PhysicalOperator):
    """Emits at most ``count`` rows (FETCH FIRST n ROWS ONLY)."""

    def __init__(self, child: PhysicalOperator, count: int):
        if count < 1:
            raise ExecutionError("limit must be positive")
        super().__init__(child.schema)
        self.child = child
        self.count = count

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    vector_capable = True

    def _vector_batches(
        self, context: ExecutionContext
    ) -> Iterator[VectorBatch]:
        remaining = self.count
        for block in self.child.vector_batches(context):
            if block.count < remaining:
                remaining -= block.count
                yield block
            else:
                yield block.take(remaining)
                return

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        if context.vectorized:
            yield from self._materialized_batches(context)
            return
        remaining = self.count
        for batch in self.child.batches(context):
            if len(batch) < remaining:
                remaining -= len(batch)
                yield batch
            else:
                yield batch[:remaining]
                return

    def label(self) -> str:
        return f"limit {self.count}"


class TopNSortOp(PhysicalOperator):
    """Partial sort: the ``count`` smallest rows under ``order``.

    A bounded buffer replaces the full sort when FETCH FIRST follows an
    unsatisfied ORDER BY — O(n log k) comparisons and no spill, the
    Top-N analogue of the paper's minimal-sort-column economics.
    """

    def __init__(self, child: PhysicalOperator, order: OrderSpec, count: int):
        if order.is_empty():
            raise ExecutionError("top-n sort needs a non-empty order")
        if count < 1:
            raise ExecutionError("top-n count must be positive")
        super().__init__(child.schema)
        self.child = child
        self.order = order
        self.count = count

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        metrics = context.metrics_for(self)
        keys_of = _batch_keys(context, self.schema, self.order)
        count = self.count
        buffer: List[Tuple[Any, int, Row]] = []  # (key, tie, row), ascending
        tie = 0
        for batch in self.child.batches(context):
            keys = keys_of(batch)
            for key, row in zip(keys, batch):
                entry = (key, tie, row)
                tie += 1
                if len(buffer) < count:
                    bisect.insort(buffer, entry)
                elif entry[0] < buffer[-1][0]:
                    bisect.insort(buffer, entry)
                    buffer.pop()
        context.rows_sorted += tie
        metrics.sorted_rows += tie
        COUNTERS["exec.sorts"] = COUNTERS.get("exec.sorts", 0) + 1
        COUNTERS["exec.rows_sorted"] = (
            COUNTERS.get("exec.rows_sorted", 0) + tie
        )
        size = context.batch_size
        for start in range(0, len(buffer), size):
            yield [entry[2] for entry in buffer[start : start + size]]

    def label(self) -> str:
        return f"top-{self.count} sort {self.order}"


class ConcatOp(PhysicalOperator):
    """Appends its children's streams (UNION ALL).

    Children must share arity; the output schema is supplied by the
    planner (synthetic union column names).
    """

    def __init__(self, children: Sequence[PhysicalOperator], schema: RowSchema):
        if len(children) < 2:
            raise ExecutionError("concat needs at least two inputs")
        for child in children:
            if len(child.schema) != len(schema):
                raise ExecutionError("concat arity mismatch")
        super().__init__(schema)
        self._children = list(children)

    def children(self) -> Sequence[PhysicalOperator]:
        return tuple(self._children)

    vector_capable = True

    def _vector_batches(
        self, context: ExecutionContext
    ) -> Iterator[VectorBatch]:
        for child in self._children:
            yield from child.vector_batches(context)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        if context.vectorized:
            yield from self._materialized_batches(context)
            return
        for child in self._children:
            yield from child.batches(context)

    def label(self) -> str:
        return f"concat ({len(self._children)} branches)"


class MaterializeOp(PhysicalOperator):
    """Buffers its input for repeated iteration (NLJ inner reuse)."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema)
        self.child = child
        self._buffer: Optional[List[Row]] = None

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _batches(self, context: ExecutionContext) -> Iterator[Batch]:
        if self._buffer is None:
            self._buffer = self.child.execute(context)
        yield from rechunk(self._buffer, context.batch_size)

    def label(self) -> str:
        return "materialize"
