"""Estimate-vs-actual join over an executed plan.

After a plan runs with a ``node_map`` (see
:func:`repro.executor.build.build_executor`), every plan node can be
joined against the per-operator runtime metrics the executor already
collects: estimated cardinality from ``properties.cardinality`` on one
side, actual rows produced from ``ExecutionContext.metrics`` on the
other. The q-error of that pair is the workload loop's raw signal.

Observations also carry the hooks feedback needs to act: FILTER nodes
expose their conjunction fingerprint (so observed selectivity can key
a :class:`~repro.catalog.overrides.StatsCorrections` entry) and
GROUP BY / DISTINCT nodes expose the base-table column set behind
their keys (so observed group counts can correct NDVs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cost.estimate import conjunction_fingerprint
from repro.executor.context import ExecutionContext
from repro.executor.operators import PhysicalOperator
from repro.expr.nodes import ColumnRef
from repro.optimizer.plan import OpKind, Plan, PlanNode

# Plan kinds whose args name a base table behind an alias.
_SCAN_KINDS = (
    OpKind.TABLE_SCAN,
    OpKind.INDEX_SCAN,
    OpKind.NLJ_INDEX,
    OpKind.PARTITION_SCAN,
)


def q_error(estimated: float, actual: float) -> float:
    """The symmetric ratio error, floored at one row on both sides."""
    estimate = max(1.0, float(estimated))
    observed = max(1.0, float(actual))
    return max(estimate / observed, observed / estimate)


@dataclass(frozen=True)
class NodeObservation:
    """One plan node's estimate joined with its executed reality."""

    kind: str
    label: str
    estimated_rows: float
    actual_rows: int
    input_rows: int
    q_error: float
    # FILTER nodes: the parameterized conjunction fingerprint whose
    # observed selectivity is actual_rows / input_rows.
    predicate_fingerprint: Optional[str] = None
    # GROUP/DISTINCT nodes over a single base table's columns:
    # (table_name, column_names) whose observed distinct count is
    # actual_rows.
    ndv_target: Optional[Tuple[str, Tuple[str, ...]]] = None

    @property
    def observed_selectivity(self) -> Optional[float]:
        if self.input_rows <= 0:
            return None
        return self.actual_rows / self.input_rows


def _alias_tables(root: PlanNode) -> Dict[str, str]:
    """alias -> base table name for every scan in the plan."""
    tables: Dict[str, str] = {}
    seen: set = set()

    def walk(node: PlanNode) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        if node.kind in _SCAN_KINDS:
            alias = node.args.get("alias")
            name = node.args.get("table")
            if alias is not None and name is not None:
                tables[alias] = name
        for child in node.children:
            walk(child)

    walk(root)
    return tables


def _ndv_target(
    node: PlanNode, aliases: Dict[str, str]
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Resolve a GROUP/DISTINCT key set to (table, columns) when every
    key column comes from one base table."""
    if node.kind in (OpKind.GROUP_SORTED, OpKind.GROUP_HASH):
        columns = list(node.args.get("group_columns", ()))
    elif node.kind in (OpKind.DISTINCT_SORTED, OpKind.DISTINCT_HASH):
        columns = list(node.properties.schema.columns)
    else:
        return None
    if not columns or not all(isinstance(c, ColumnRef) for c in columns):
        return None
    qualifiers = {column.qualifier for column in columns}
    if len(qualifiers) != 1:
        return None
    table = aliases.get(next(iter(qualifiers)))
    if table is None:
        return None
    return (table, tuple(column.name for column in columns))


def observe_execution(
    plan: Plan,
    node_map: Dict[int, PhysicalOperator],
    context: ExecutionContext,
) -> List[NodeObservation]:
    """Join plan-node estimates against executed operator metrics.

    Nodes the executor never pulled (no metrics entry) are skipped —
    there is nothing actual to compare. PARTITION_SPLIT's shared child
    executes once and is observed once; revisits only report its rows.
    """
    aliases = _alias_tables(plan.root)
    observations: List[NodeObservation] = []
    seen: set = set()

    def actual_rows(node: PlanNode) -> Optional[int]:
        operator = node_map.get(id(node))
        metrics = (
            context.metrics.get(operator) if operator is not None else None
        )
        return metrics.rows if metrics is not None else None

    def walk(node: PlanNode) -> Optional[int]:
        if id(node) in seen:
            return actual_rows(node)
        seen.add(id(node))
        children_actual = [walk(child) for child in node.children]
        operator = node_map.get(id(node))
        metrics = (
            context.metrics.get(operator) if operator is not None else None
        )
        if metrics is None:
            return None
        if metrics.rows_in > 0:
            input_rows = metrics.rows_in
        else:
            input_rows = sum(
                rows for rows in children_actual if rows is not None
            )
        fingerprint = None
        if node.kind is OpKind.FILTER:
            fingerprint = conjunction_fingerprint(node.args.get("predicate"))
        observations.append(
            NodeObservation(
                kind=node.kind.name,
                label=node.describe(),
                estimated_rows=node.properties.cardinality,
                actual_rows=metrics.rows,
                input_rows=input_rows,
                q_error=q_error(node.properties.cardinality, metrics.rows),
                predicate_fingerprint=fingerprint,
                ndv_target=_ndv_target(node, aliases),
            )
        )
        return metrics.rows

    walk(plan.root)
    return observations
