"""Index definitions.

An index's key order is how "free" interesting orders enter a plan: an
ordered scan of an index on ``(x ASC, y DESC)`` produces a stream whose
order property is exactly that spec (or its reversal, scanning backward).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.ordering import OrderKey, OrderSpec, SortDirection
from repro.errors import CatalogError
from repro.expr.nodes import ColumnRef


@dataclass(frozen=True)
class IndexColumn:
    """One column of an index key with its declared direction."""

    name: str
    direction: SortDirection = SortDirection.ASC


class Index:
    """A B+-tree index over one table."""

    def __init__(
        self,
        name: str,
        table_name: str,
        key: Sequence[IndexColumn],
        unique: bool = False,
        clustered: bool = False,
    ):
        if not key:
            raise CatalogError(f"index {name} needs at least one key column")
        self.name = name
        self.table_name = table_name
        self.key: Tuple[IndexColumn, ...] = tuple(key)
        self.unique = unique
        self.clustered = clustered

    @classmethod
    def on(
        cls,
        name: str,
        table_name: str,
        column_names: Sequence[str],
        unique: bool = False,
        clustered: bool = False,
    ) -> "Index":
        """Convenience constructor with all-ascending key columns."""
        return cls(
            name,
            table_name,
            [IndexColumn(column_name) for column_name in column_names],
            unique=unique,
            clustered=clustered,
        )

    @property
    def key_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.key)

    def order_spec(self, qualifier: str) -> OrderSpec:
        """The order property an ordered forward scan provides."""
        return OrderSpec(
            OrderKey(ColumnRef(qualifier, column.name), column.direction)
            for column in self.key
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "unique " if self.unique else ""
        return (
            f"Index({self.name}: {kind}on {self.table_name}"
            f"({', '.join(self.key_names)}))"
        )
