"""Column definitions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqltypes import DataType


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    datatype: DataType
    nullable: bool = True

    def __str__(self) -> str:
        suffix = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.datatype}{suffix}"
