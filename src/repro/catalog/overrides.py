"""Runtime statistics overrides from workload feedback.

The workload loop (:mod:`repro.workload`) compares each plan node's
estimated cardinality against the rows the executor actually produced
and distills the misestimates into *corrections*: adjusted NDVs,
adjusted joint NDVs, and observed selectivities keyed by predicate
fingerprint. Those corrections land here, on the catalog, because the
catalog is the unit of cache identity: overrides are inherently scoped
to one ``Catalog.identity`` (they live on the instance) and every
applied batch bumps ``stats_version``, so cached plans built against
older estimates become unreachable through the normal invalidation
machinery — never silently replayed against corrected statistics.

Fingerprints are computed over *parameterized* predicate shapes
(:func:`repro.cost.estimate.conjunction_fingerprint`), so an override
summarizes every binding of a statement class. That is deliberate:
plans are cached and re-bound, so a plan-time estimate can never
depend on one host-variable value anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple


@dataclass
class StatsCorrections:
    """One batch of feedback-derived corrections, before application.

    Keys are lower-cased table/column names; joint-NDV column sets are
    sorted so lookup is order-insensitive, matching
    ``TableStats.joint_ndv`` semantics (distinct combinations do not
    depend on column order).
    """

    ndv: Dict[Tuple[str, str], float] = field(default_factory=dict)
    joint_ndv: Dict[Tuple[str, Tuple[str, ...]], float] = field(
        default_factory=dict
    )
    selectivity: Dict[str, float] = field(default_factory=dict)

    def add_ndv(self, table: str, column: str, value: float) -> None:
        self.ndv[(table.lower(), column.lower())] = max(1.0, float(value))

    def add_joint_ndv(
        self, table: str, columns: Sequence[str], value: float
    ) -> None:
        key = (table.lower(), tuple(sorted(c.lower() for c in columns)))
        self.joint_ndv[key] = max(1.0, float(value))

    def add_selectivity(self, fingerprint: str, value: float) -> None:
        self.selectivity[fingerprint] = min(1.0, max(1e-9, float(value)))

    def __len__(self) -> int:
        return len(self.ndv) + len(self.joint_ndv) + len(self.selectivity)

    def is_empty(self) -> bool:
        return len(self) == 0


class StatsOverrides:
    """Accumulated corrections consulted by :class:`~repro.cost.estimate.StatsView`.

    Mutate only through :meth:`Catalog.apply_feedback` — direct merges
    would skip the ``stats_version`` bump and leave stale cached plans
    reachable.
    """

    def __init__(self) -> None:
        self._ndv: Dict[Tuple[str, str], float] = {}
        self._joint: Dict[Tuple[str, Tuple[str, ...]], float] = {}
        self._selectivity: Dict[str, float] = {}
        self.applied_batches = 0

    def ndv(self, table: str, column: str) -> Optional[float]:
        return self._ndv.get((table.lower(), column.lower()))

    def joint_ndv(
        self, table: str, columns: Sequence[str]
    ) -> Optional[float]:
        key = (table.lower(), tuple(sorted(c.lower() for c in columns)))
        return self._joint.get(key)

    def selectivity(self, fingerprint: str) -> Optional[float]:
        return self._selectivity.get(fingerprint)

    def merge(self, corrections: StatsCorrections) -> int:
        """Fold a correction batch in; returns how many entries landed."""
        self._ndv.update(corrections.ndv)
        self._joint.update(corrections.joint_ndv)
        self._selectivity.update(corrections.selectivity)
        count = len(corrections)
        if count:
            self.applied_batches += 1
        return count

    def clear(self) -> int:
        count = len(self._ndv) + len(self._joint) + len(self._selectivity)
        self._ndv.clear()
        self._joint.clear()
        self._selectivity.clear()
        return count

    def __len__(self) -> int:
        return len(self._ndv) + len(self._joint) + len(self._selectivity)
