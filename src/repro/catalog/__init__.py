"""Catalog: schemas, keys, indexes, and statistics.

The catalog is the optimizer's source of the facts that seed order
optimization — primary/unique keys (which become ``K -> *`` FDs) and
indexes (whose key order becomes an order property of index scans).
"""

from repro.catalog.column import Column
from repro.catalog.partition import PartitionSpec, hash_spec, range_spec
from repro.catalog.overrides import StatsCorrections, StatsOverrides
from repro.catalog.stats import ColumnStats, Histogram, TableStats
from repro.catalog.table import TableSchema
from repro.catalog.index import Index, IndexColumn
from repro.catalog.catalog import Catalog

__all__ = [
    "Column",
    "ColumnStats",
    "Histogram",
    "TableStats",
    "TableSchema",
    "Index",
    "IndexColumn",
    "Catalog",
    "PartitionSpec",
    "StatsCorrections",
    "StatsOverrides",
    "hash_spec",
    "range_spec",
]
