"""Table and column statistics for cardinality estimation.

The cost model uses the classic System-R style estimates: row counts,
per-column distinct-value counts (NDV), min/max for range selectivity,
and null counts. Statistics are gathered by scanning loaded data
(:meth:`TableStats.collect`) or supplied synthetically by generators.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Sequence

from repro.sqltypes import is_null, sort_key


class Histogram:
    """Equi-depth histogram over one column's sort-key images.

    ``boundaries`` are bucket upper edges over a sorted sample: bucket
    ``i`` holds the values in ``(boundaries[i-1], boundaries[i]]`` and
    each bucket holds ~1/buckets of the rows. Range selectivity
    interpolates linearly within the boundary bucket, which handles
    skew far better than the min/max uniform assumption.
    """

    __slots__ = ("boundaries",)

    def __init__(self, boundaries: Sequence[float]):
        self.boundaries = list(boundaries)

    @classmethod
    def from_values(
        cls, values: Sequence[Any], buckets: int = 32
    ) -> Optional["Histogram"]:
        numeric = []
        for value in values:
            try:
                numeric.append(_numeric(value))
            except TypeError:
                return None
        if not numeric:
            return None
        numeric.sort()
        count = len(numeric)
        buckets = max(1, min(buckets, count))
        boundaries = [numeric[0]]
        for bucket in range(1, buckets + 1):
            index = min(count - 1, (bucket * count) // buckets - 1)
            boundaries.append(numeric[max(0, index)])
        return cls(boundaries)

    def fraction_below(self, value: Any) -> float:
        """Estimated fraction of rows with column value <= ``value``."""
        try:
            target = _numeric(value)
        except TypeError:
            return 0.5
        edges = self.boundaries
        if target < edges[0]:
            return 0.0
        if target >= edges[-1]:
            return 1.0
        buckets = len(edges) - 1
        # Index just past the last edge <= target: every bucket whose
        # upper edge is <= target is fully counted (duplicate edges mean
        # several buckets hold the same heavy value).
        position = bisect.bisect_right(edges, target)
        full_buckets = max(0, position - 1)
        lower, upper = edges[position - 1], edges[position]
        within = (
            (target - lower) / (upper - lower) if upper > lower else 0.0
        )
        return min(1.0, (full_buckets + within) / buckets)

    def selectivity_between(self, low: Any, high: Any) -> float:
        """Fraction of rows in [low, high]; None bounds are open ends."""
        below_high = 1.0 if high is None else self.fraction_below(high)
        below_low = 0.0 if low is None else self.fraction_below(low)
        return min(1.0, max(0.0, below_high - below_low))


@dataclass
class ColumnStats:
    """Statistics for a single column."""

    ndv: int = 1
    low: Any = None
    high: Any = None
    null_count: int = 0
    histogram: Optional[Histogram] = None

    def not_null_fraction(self, row_count: int) -> float:
        """Fraction of rows where this column is NOT NULL."""
        if row_count <= 0 or self.null_count <= 0:
            return 1.0
        return max(0.0, 1.0 - self.null_count / row_count)

    def selectivity_equal(self, row_count: int) -> float:
        """Estimated selectivity of ``col = constant``.

        ``col = const`` can never match a NULL, so the uniform 1/NDV
        estimate over non-null values is scaled by the non-null
        fraction of the table.
        """
        if self.ndv <= 0:
            return 1.0
        return self.not_null_fraction(row_count) / self.ndv

    def selectivity_range(
        self, low: Any, high: Any, row_count: Optional[int] = None
    ) -> float:
        """Estimated selectivity of a (half-)open range over this column.

        Prefers the equi-depth histogram when one was collected; falls
        back to linear interpolation between min and max, and finally to
        1/3 (the System R default) when nothing is usable. The histogram
        and min/max only see non-null values, so when ``row_count`` is
        supplied the fraction is discounted by the non-null share —
        NULLs satisfy no range predicate.
        """
        if self.histogram is not None:
            fraction = self.histogram.selectivity_between(low, high)
            if row_count is not None:
                fraction *= self.not_null_fraction(row_count)
            return fraction
        default = 1.0 / 3.0
        if self.low is None or self.high is None:
            return default
        try:
            span = _numeric(self.high) - _numeric(self.low)
        except TypeError:
            return default
        if span <= 0:
            return default
        start = _numeric(self.low if low is None else low)
        end = _numeric(self.high if high is None else high)
        fraction = min(1.0, max(0.0, (end - start) / span))
        if row_count is not None:
            fraction *= self.not_null_fraction(row_count)
        return fraction


def _numeric(value: Any) -> float:
    """Map a value onto the real line for range-selectivity arithmetic."""
    import datetime
    import decimal

    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, decimal.Decimal):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    if isinstance(value, str):
        # Crude but monotone: first characters as a base-256 fraction.
        total = 0.0
        for index, char in enumerate(value[:8]):
            total += ord(char) / (256.0 ** (index + 1))
        return total
    raise TypeError(f"no numeric image for {value!r}")


@dataclass
class TableStats:
    """Statistics for a whole table."""

    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    pages: int = 1
    # Row-level reservoir sample (whole tuples, in ``sample_columns``
    # order): the basis for *joint* NDV estimation over column groups,
    # which per-column NDVs cannot provide when columns correlate.
    sample_columns: Sequence[str] = ()
    sample_rows: Sequence[Sequence[Any]] = ()

    SAMPLE_SIZE = 2000
    HISTOGRAM_BUCKETS = 32

    @classmethod
    def collect(
        cls,
        column_names: Sequence[str],
        rows: Iterable[Sequence[Any]],
        page_rows: int = 64,
    ) -> "TableStats":
        """Scan ``rows`` once and compute exact NDV/min/max plus an
        equi-depth histogram over a reservoir sample per column."""
        import random

        distinct: Dict[str, set] = {name: set() for name in column_names}
        samples: Dict[str, List[Any]] = {name: [] for name in column_names}
        reservoir_rng = random.Random(0xC0FFEE)
        row_rng = random.Random(0xBEEF)
        row_sample: List[Tuple[Any, ...]] = []
        stats = cls(
            columns={name: ColumnStats() for name in column_names},
            sample_columns=tuple(column_names),
        )
        for row in rows:
            stats.row_count += 1
            if len(row_sample) < cls.SAMPLE_SIZE:
                row_sample.append(tuple(row))
            else:
                slot = row_rng.randrange(stats.row_count)
                if slot < cls.SAMPLE_SIZE:
                    row_sample[slot] = tuple(row)
            for name, value in zip(column_names, row):
                column = stats.columns[name]
                if is_null(value):
                    column.null_count += 1
                    continue
                distinct[name].add(value)
                if column.low is None or sort_key(value) < sort_key(column.low):
                    column.low = value
                if column.high is None or sort_key(value) > sort_key(column.high):
                    column.high = value
                sample = samples[name]
                if len(sample) < cls.SAMPLE_SIZE:
                    sample.append(value)
                else:
                    slot = reservoir_rng.randrange(stats.row_count)
                    if slot < cls.SAMPLE_SIZE:
                        sample[slot] = value
        for name in column_names:
            stats.columns[name].ndv = max(1, len(distinct[name]))
            if samples[name]:
                stats.columns[name].histogram = Histogram.from_values(
                    samples[name], cls.HISTOGRAM_BUCKETS
                )
        stats.pages = max(1, (stats.row_count + page_rows - 1) // page_rows)
        stats.sample_rows = tuple(row_sample)
        return stats

    def joint_ndv(self, column_names: Sequence[str]) -> Optional[float]:
        """Estimated distinct count of the *tuple* of ``column_names``.

        Counts distinct combinations in the row sample; when the sample
        is the whole table the count is exact, otherwise it scales up
        linearly. Either way the estimate is capped by the per-column
        NDV product (which is itself an upper bound) and the row count,
        so it can only tighten the naive independence estimate —
        correlated prefixes (e.g. nation -> region) stop multiplying.
        Returns ``None`` when no sample exists or a column is unknown.
        """
        if not self.sample_rows or not column_names:
            return None
        positions = []
        for name in column_names:
            try:
                positions.append(self.sample_columns.index(name))
            except ValueError:
                return None
        from collections import Counter

        frequency = Counter(
            tuple(row[position] for position in positions)
            for row in self.sample_rows
        )
        distinct = len(frequency)
        size = len(self.sample_rows)
        if size >= self.row_count:
            estimate = float(distinct)
        else:
            # Chao's estimator: singletons signal unseen combinations,
            # repeated combinations signal a saturated domain. Linear
            # scale-up would turn 100 values seen 20x each into "there
            # must be more"; this does not.
            singletons = sum(1 for count in frequency.values() if count == 1)
            doubletons = sum(1 for count in frequency.values() if count == 2)
            estimate = distinct + (singletons * singletons) / (
                2.0 * max(1, doubletons)
            )
        cap = 1.0
        for name in column_names:
            cap *= float(max(1, self.column(name).ndv))
        return max(1.0, min(estimate, cap, float(max(1, self.row_count))))

    def column(self, name: str) -> ColumnStats:
        return self.columns.get(name, ColumnStats(ndv=max(1, self.row_count)))
