"""Partition specifications: how a table's rows divide into partitions.

A :class:`PartitionSpec` declares either **hash** partitioning (rows
route by a stable hash of the partition columns modulo the partition
count) or **range** partitioning (``boundaries`` are upper-*exclusive*
edges over the partition columns' sort-key images; ``n`` boundaries make
``n + 1`` partitions, in boundary order). The spec lives on the
:class:`~repro.catalog.table.TableSchema` and is consulted by storage
(row routing, partition pruning) and by the optimizer (the partitioning
stream property).

Hashing must be stable across processes — Python's built-in ``hash`` is
salted per interpreter for strings — so routing uses CRC-32 over the
canonical ``sort_key`` encodings. Determinism matters: tests pin page
counts and plan shapes that depend on which partition each row landed
in.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from repro.errors import CatalogError
from repro.sqltypes import sort_key

HASH = "hash"
RANGE = "range"


def _stable_hash(values: Sequence[Any]) -> int:
    """Process-independent hash of a tuple of column values."""
    encoded = repr(tuple(sort_key(value) for value in values))
    return zlib.crc32(encoded.encode("utf-8"))


@dataclass(frozen=True)
class PartitionSpec:
    """Declared partitioning of a base table.

    Attributes:
        kind: ``"hash"`` or ``"range"``.
        columns: partition-key column names (must exist in the table).
        partitions: partition count (hash only; range derives it from
            the boundary list).
        boundaries: range only — strictly increasing upper-exclusive
            edges; a row goes to the first partition whose boundary its
            key sorts below, or to the last partition. Each boundary is
            one value when there is a single partition column, else a
            tuple of values.
    """

    kind: str
    columns: Tuple[str, ...]
    partitions: int = 0
    boundaries: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "boundaries", tuple(self.boundaries))
        if self.kind not in (HASH, RANGE):
            raise CatalogError(f"unknown partitioning kind {self.kind!r}")
        if not self.columns:
            raise CatalogError("partitioning needs at least one column")
        if self.kind == HASH:
            if self.partitions < 2:
                raise CatalogError("hash partitioning needs >= 2 partitions")
            if self.boundaries:
                raise CatalogError("hash partitioning takes no boundaries")
        else:
            if not self.boundaries:
                raise CatalogError("range partitioning needs boundaries")
            encoded = [self._boundary_key(b) for b in self.boundaries]
            if any(
                encoded[i] >= encoded[i + 1] for i in range(len(encoded) - 1)
            ):
                raise CatalogError(
                    "range partition boundaries must be strictly increasing"
                )
            object.__setattr__(self, "partitions", len(self.boundaries) + 1)

    def _boundary_key(self, boundary: Any) -> Tuple[Any, ...]:
        values = (
            boundary if isinstance(boundary, tuple) else (boundary,)
        )
        if len(values) != len(self.columns):
            raise CatalogError(
                f"boundary {boundary!r} arity != partition columns "
                f"{self.columns}"
            )
        return tuple(sort_key(value) for value in values)

    @property
    def partition_count(self) -> int:
        return self.partitions

    def route(self, values: Sequence[Any]) -> int:
        """Partition index for one row's partition-column values."""
        if self.kind == HASH:
            return _stable_hash(values) % self.partitions
        key = tuple(sort_key(value) for value in values)
        # Linear walk: boundary lists are tiny (a handful of edges).
        for index, boundary in enumerate(self.boundaries):
            if key < self._boundary_key(boundary):
                return index
        return self.partitions - 1

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------

    def prune_equal(self, values: Sequence[Any]) -> Tuple[int, ...]:
        """Partitions that can hold rows with the partition key equal to
        ``values`` (always exactly one)."""
        return (self.route(values),)

    def prune_range(
        self, low: Any, high: Any, high_inclusive: bool = True
    ) -> Tuple[int, ...]:
        """Range kind only: partitions intersecting ``[low, high]`` on
        the *leading* partition column (None bounds are open ends).

        An exclusive ``high`` that lands exactly on a boundary drops the
        partition that boundary opens (its rows all sort >= ``high``).
        Conservative for multi-column specs: only the leading column is
        compared, which can keep a boundary partition that a full-tuple
        comparison would drop — never the reverse.
        """
        if self.kind != RANGE:
            return tuple(range(self.partitions))
        first = 0
        last = self.partitions - 1
        if low is not None:
            low_key = sort_key(low)
            while first < last and self._leading_edge(first) <= low_key:
                first += 1
        if high is not None:
            high_key = sort_key(high)
            index = 0
            while index < last and (
                self._leading_edge(index) <= high_key
                if high_inclusive
                else self._leading_edge(index) < high_key
            ):
                index += 1
            last = index
        if first > last:
            return ()
        return tuple(range(first, last + 1))

    def _leading_edge(self, index: int) -> Any:
        """Sort-key image of partition ``index``'s upper edge, leading
        column only."""
        boundary = self.boundaries[index]
        value = boundary[0] if isinstance(boundary, tuple) else boundary
        return sort_key(value)

    def describe(self) -> str:
        inner = ", ".join(self.columns)
        return f"{self.kind}({inner}) x{self.partitions}"


def hash_spec(columns: Sequence[str], partitions: int) -> PartitionSpec:
    return PartitionSpec(HASH, tuple(columns), partitions=partitions)


def range_spec(
    columns: Sequence[str], boundaries: Sequence[Any]
) -> PartitionSpec:
    return PartitionSpec(RANGE, tuple(columns), boundaries=tuple(boundaries))
