"""The catalog: a registry of tables and indexes."""

from __future__ import annotations

import itertools
from typing import Dict, List

from repro.catalog.index import Index
from repro.catalog.overrides import StatsCorrections, StatsOverrides
from repro.catalog.table import TableSchema
from repro.errors import CatalogError

# Process-wide catalog identity allocator. ``next()`` on an
# ``itertools.count`` is atomic under the GIL, so concurrent Database
# construction cannot mint duplicate identities; unlike ``id(self)``
# the tokens are never recycled after garbage collection, which is
# what makes them safe to embed in plan-cache keys.
_IDENTITIES = itertools.count(1)


class Catalog:
    """Registry of table schemas and their indexes.

    Two monotonic counters support plan-cache invalidation
    (:mod:`repro.service`): ``version`` ticks on every DDL change
    (create/drop of a table or index) and ``stats_version`` ticks on
    statistics refreshes (see :meth:`note_stats_refresh`; the storage
    layer's analyze entry points call it). A cached plan embeds both in
    its key, so any change makes every older entry unreachable.

    ``identity`` is a process-unique token minted at construction. It
    is the third leg of the plan-cache key: version counters only order
    changes *within* one catalog, so two databases whose counters
    happen to coincide would otherwise share cache entries — and a plan
    resolved against the wrong schema returns wrong rows, not an error.
    """

    def __init__(self):
        self._tables: Dict[str, TableSchema] = {}
        self._indexes: Dict[str, Index] = {}
        self.identity = next(_IDENTITIES)
        self.version = 0
        self.stats_version = 0
        # Workload-feedback corrections. Living on the instance makes
        # them scoped to this identity by construction; application
        # goes through apply_feedback so stats_version always moves.
        self.stats_overrides = StatsOverrides()

    def note_stats_refresh(self) -> None:
        """Record that table statistics changed (plans may now differ)."""
        self.stats_version += 1

    def apply_feedback(self, corrections: StatsCorrections) -> int:
        """Merge workload-feedback corrections into the override store.

        Returns the number of entries that landed. A non-empty batch
        bumps ``stats_version`` exactly like an ``analyze_*`` refresh,
        so every cached plan priced against the older estimates is
        invalidated through the normal machinery rather than replayed.
        """
        merged = self.stats_overrides.merge(corrections)
        if merged:
            self.note_stats_refresh()
        return merged

    def clear_feedback(self) -> int:
        """Drop all feedback overrides (and invalidate affected plans)."""
        cleared = self.stats_overrides.clear()
        if cleared:
            self.note_stats_refresh()
        return cleared

    def create_table(self, schema: TableSchema) -> TableSchema:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name} already exists")
        self._tables[key] = schema
        self.version += 1
        return schema

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table {name}")
        del self._tables[key]
        for index_name in [
            index.name
            for index in self._indexes.values()
            if index.table_name.lower() == key
        ]:
            del self._indexes[index_name.lower()]
        self.version += 1

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[TableSchema]:
        return list(self._tables.values())

    def create_index(self, index: Index) -> Index:
        if index.name.lower() in self._indexes:
            raise CatalogError(f"index {index.name} already exists")
        table = self.table(index.table_name)
        for column_name in index.key_names:
            if not table.has_column(column_name):
                raise CatalogError(
                    f"index {index.name} references missing column "
                    f"{index.table_name}.{column_name}"
                )
        self._indexes[index.name.lower()] = index
        self.version += 1
        return index

    def drop_index(self, name: str) -> None:
        if name.lower() not in self._indexes:
            raise CatalogError(f"no index {name}")
        del self._indexes[name.lower()]
        self.version += 1

    def index(self, name: str) -> Index:
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"no index {name}") from None

    def indexes_on(self, table_name: str) -> List[Index]:
        wanted = table_name.lower()
        return [
            index
            for index in self._indexes.values()
            if index.table_name.lower() == wanted
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Catalog({len(self._tables)} tables, "
            f"{len(self._indexes)} indexes)"
        )
