"""Table schemas: column layout plus declared keys."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.column import Column
from repro.catalog.partition import PartitionSpec
from repro.catalog.stats import TableStats
from repro.errors import CatalogError


class TableSchema:
    """A base table's definition.

    Keys (the primary key and any unique constraints) matter to order
    optimization: each key ``K`` contributes the FD ``K -> all columns``
    to streams scanning the table (Section 4.1).
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
        unique_keys: Sequence[Sequence[str]] = (),
        partitioning: Optional[PartitionSpec] = None,
    ):
        if not columns:
            raise CatalogError(f"table {name} needs at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, Column] = {}
        for column in self.columns:
            if column.name in self._by_name:
                raise CatalogError(
                    f"duplicate column {column.name} in table {name}"
                )
            self._by_name[column.name] = column
        self.primary_key: Tuple[str, ...] = tuple(primary_key)
        self.unique_keys: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(key) for key in unique_keys
        )
        for key in (self.primary_key,) + self.unique_keys:
            for column_name in key:
                if column_name not in self._by_name:
                    raise CatalogError(
                        f"key column {column_name} not in table {name}"
                    )
        self.partitioning = partitioning
        if partitioning is not None:
            for column_name in partitioning.columns:
                if column_name not in self._by_name:
                    raise CatalogError(
                        f"partition column {column_name} not in table {name}"
                    )
        self.stats = TableStats()

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(
                f"no column {name} in table {self.name}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def position(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise CatalogError(f"no column {name} in table {self.name}")

    def keys(self) -> List[Tuple[str, ...]]:
        """Every declared key (primary first), without duplicates."""
        found: List[Tuple[str, ...]] = []
        if self.primary_key:
            found.append(self.primary_key)
        for key in self.unique_keys:
            if key not in found:
                found.append(key)
        return found

    def row_width(self) -> int:
        """Estimated record width in bytes (for paging and cost)."""
        return sum(column.datatype.width for column in self.columns) + 4

    def validate_row(self, row: Sequence) -> Tuple:
        """Type-check and coerce one row against this schema."""
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row arity {len(row)} != {len(self.columns)} "
                f"for table {self.name}"
            )
        coerced = []
        for column, value in zip(self.columns, row):
            checked = column.datatype.validate(value)
            if checked is None and not column.nullable:
                raise CatalogError(
                    f"NULL in NOT NULL column {self.name}.{column.name}"
                )
            coerced.append(checked)
        return tuple(coerced)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TableSchema({self.name})"
