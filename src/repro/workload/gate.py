"""The plan-regression gate.

Feedback corrections change estimates, estimates change plans — and a
changed plan is a hypothesis, not an improvement. The gate compares
each statement's re-optimized execution against its incumbent and
admits the new plan only when it did not get worse: a regression is a
*changed* plan fingerprint **and** worse replayed cost, on either the
simulated-I/O axis (deterministic, tight tolerance) or the wall-clock
axis (noisy, so a generous tolerance plus an absolute floor keep
scheduler jitter from condemning good plans).

A regressed statement keeps its incumbent: the gate's caller re-pins
the old plan under the new ``stats_version`` and logs the decision.
Feedback can therefore never make a cached workload slower — the worst
case is a logged no-op.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GateDecision:
    """The gate's verdict for one statement."""

    statement: str
    plan_changed: bool
    regressed: bool
    incumbent_ms: float
    challenger_ms: float
    incumbent_sim_io_ms: float
    challenger_sim_io_ms: float

    @property
    def admitted(self) -> bool:
        return not self.regressed


class RegressionGate:
    """Compares an incumbent run against a re-optimized challenger.

    ``io_tolerance`` multiplies simulated I/O (deterministic — a small
    slack absorbs rounding); ``latency_tolerance`` multiplies wall
    time, with ``latency_floor_ms`` exempting statements too fast for
    wall clocks to mean anything.
    """

    def __init__(
        self,
        io_tolerance: float = 1.02,
        io_floor_ms: float = 0.5,
        latency_tolerance: float = 2.0,
        latency_floor_ms: float = 5.0,
    ):
        self.io_tolerance = io_tolerance
        self.io_floor_ms = io_floor_ms
        self.latency_tolerance = latency_tolerance
        self.latency_floor_ms = latency_floor_ms

    def evaluate(self, incumbent, challenger) -> GateDecision:
        """Judge one statement; runs carry ``plan_fingerprint`` /
        ``elapsed_ms`` / ``simulated_io_ms`` (see
        :class:`repro.workload.fleet.StatementRun`)."""
        changed = challenger.plan_fingerprint != incumbent.plan_fingerprint
        io_worse = challenger.simulated_io_ms > max(
            incumbent.simulated_io_ms * self.io_tolerance,
            incumbent.simulated_io_ms + self.io_floor_ms,
        )
        wall_worse = (
            challenger.elapsed_ms
            > max(
                incumbent.elapsed_ms * self.latency_tolerance,
                self.latency_floor_ms,
            )
        )
        regressed = changed and (io_worse or wall_worse)
        return GateDecision(
            statement=getattr(
                incumbent.statement, "name", str(incumbent.statement)
            ),
            plan_changed=changed,
            regressed=regressed,
            incumbent_ms=incumbent.elapsed_ms,
            challenger_ms=challenger.elapsed_ms,
            incumbent_sim_io_ms=incumbent.simulated_io_ms,
            challenger_sim_io_ms=challenger.simulated_io_ms,
        )
