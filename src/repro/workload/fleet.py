"""Fleet replay with feedback-driven re-optimization.

:class:`FleetRunner` drives a list of statements through a
:class:`~repro.service.QueryService` and closes the workload loop:

1. **replay** — run every statement, collecting rows, latency,
   simulated I/O, the plan fingerprint, and per-node estimate-vs-actual
   observations;
2. **correct** — distill the observations into
   :class:`~repro.catalog.StatsCorrections` and apply them through
   ``Catalog.apply_feedback`` (which bumps ``stats_version``, so the
   plan cache's invalidation machinery does the re-planning);
3. **re-replay** — the same fleet now plans against corrected
   statistics;
4. **gate** — every statement whose plan changed *and* got slower
   keeps its incumbent (re-pinned under the new ``stats_version``) and
   lands in the service's regression log; regressed statements are
   re-run so the final round reflects what the cache will serve.

Correctness invariant: feedback changes *estimates*, never results —
every round's rows must be byte-identical (``FeedbackReport.mismatches``
checks; the verify layer runs it under all three engines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.catalog import StatsCorrections
from repro.cost.model import CostModel
from repro.executor.feedback import NodeObservation
from repro.optimizer import OptimizerConfig, Plan
from repro.service import PlanRegression, QueryService
from repro.storage import Database
from repro.workload.feedback import derive_corrections
from repro.workload.gate import GateDecision, RegressionGate
from repro.workload.qerror import QErrorSummary, summarize


@dataclass(frozen=True)
class FleetStatement:
    """One statement of the fleet (``name`` labels its class)."""

    name: str
    sql: str


@dataclass
class StatementRun:
    """One statement's execution within a round."""

    statement: FleetStatement
    rows: List[tuple]
    elapsed_ms: float
    simulated_io_ms: float
    plan_fingerprint: str
    plan: Plan
    observations: List[NodeObservation] = field(default_factory=list)
    cache_status: Optional[str] = None


@dataclass
class RoundResult:
    """One full pass over the fleet."""

    runs: List[StatementRun]

    def observations(self) -> List[NodeObservation]:
        collected: List[NodeObservation] = []
        for run in self.runs:
            collected.extend(run.observations)
        return collected

    def qerror(self) -> QErrorSummary:
        return summarize(self.observations())

    def total_simulated_io_ms(self) -> float:
        return sum(run.simulated_io_ms for run in self.runs)


@dataclass
class FeedbackReport:
    """Everything one feedback round produced."""

    baseline: RoundResult
    reoptimized: RoundResult
    final: RoundResult
    corrections: StatsCorrections
    applied: int
    decisions: List[GateDecision]

    @property
    def regressions(self) -> List[GateDecision]:
        return [d for d in self.decisions if d.regressed]

    @property
    def plan_changes(self) -> List[GateDecision]:
        return [d for d in self.decisions if d.plan_changed]

    def mismatches(self) -> List[str]:
        """Statements whose rows differ across rounds (must be empty)."""
        bad: List[str] = []
        for before, middle, after in zip(
            self.baseline.runs, self.reoptimized.runs, self.final.runs
        ):
            if before.rows != middle.rows or before.rows != after.rows:
                bad.append(before.statement.name)
        return bad


class FleetRunner:
    """Replay a statement fleet and run the feedback loop over it."""

    def __init__(
        self,
        database: Database,
        fleet: List[FleetStatement],
        config: Optional[OptimizerConfig] = None,
        cost_model: Optional[CostModel] = None,
        mode: Optional[str] = None,
        workers: int = 2,
        cache_size: int = 256,
        gate: Optional[RegressionGate] = None,
    ):
        self.database = database
        self.fleet = list(fleet)
        self.gate = gate or RegressionGate()
        self.service = QueryService(
            database,
            config=config,
            cost_model=cost_model,
            workers=workers,
            cache_size=cache_size,
            mode=mode,
            queue_depth=max(64, len(self.fleet)),
            collect_observations=True,
        )

    # ------------------------------------------------------------------

    def _run_statement(self, statement: FleetStatement) -> StatementRun:
        result = self.service.query(statement.sql)
        return StatementRun(
            statement=statement,
            rows=result.rows,
            elapsed_ms=result.elapsed_seconds * 1000.0,
            simulated_io_ms=result.simulated_io_ms,
            plan_fingerprint=result.plan.fingerprint(),
            plan=result.plan,
            observations=list(result.observations or ()),
            cache_status=result.cache_status,
        )

    def replay(self) -> RoundResult:
        """One sequential pass over the whole fleet."""
        return RoundResult([self._run_statement(s) for s in self.fleet])

    def run_feedback_round(
        self,
        corrections: Optional[StatsCorrections] = None,
        min_q_error: float = 1.5,
    ) -> FeedbackReport:
        """Replay, correct, re-plan, gate — one turn of the loop.

        ``corrections`` overrides the derived batch (tests use this to
        inject deliberately bad feedback and watch the gate hold).
        """
        baseline = self.replay()
        if corrections is None:
            corrections = derive_corrections(
                baseline.observations(), min_q_error=min_q_error
            )
        applied = self.database.catalog.apply_feedback(corrections)
        reoptimized = self.replay()
        decisions: List[GateDecision] = []
        final_runs: List[StatementRun] = []
        for before, after in zip(baseline.runs, reoptimized.runs):
            decision = self.gate.evaluate(before, after)
            decisions.append(decision)
            if decision.regressed:
                # Keep the incumbent: re-key it under the corrected
                # stats_version and log the rejection, then re-run so
                # the final round shows what the cache now serves.
                self.service.pin_plan(before.statement.sql, before.plan)
                self.service.note_plan_regression(
                    PlanRegression(
                        statement=before.statement.name,
                        incumbent_fingerprint=before.plan_fingerprint,
                        challenger_fingerprint=after.plan_fingerprint,
                        incumbent_ms=before.elapsed_ms,
                        challenger_ms=after.elapsed_ms,
                        incumbent_sim_io_ms=before.simulated_io_ms,
                        challenger_sim_io_ms=after.simulated_io_ms,
                        action="incumbent-retained",
                    )
                )
                final_runs.append(self._run_statement(before.statement))
            else:
                final_runs.append(after)
        return FeedbackReport(
            baseline=baseline,
            reoptimized=reoptimized,
            final=RoundResult(final_runs),
            corrections=corrections,
            applied=applied,
            decisions=decisions,
        )

    # ------------------------------------------------------------------

    def close(self) -> None:
        self.service.close()

    def __enter__(self) -> "FleetRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
