"""Per-operator q-error aggregation.

The q-error of one plan node is ``max(est/act, act/est)`` (both floored
at one row — :func:`repro.executor.feedback.q_error`). Summaries
aggregate with the geometric mean, the standard for multiplicative
errors: a 10x underestimate and a 10x overestimate average to 10x, not
to "roughly fine".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.executor.feedback import NodeObservation


@dataclass
class QErrorSummary:
    """Aggregate q-error over a batch of node observations."""

    count: int = 0
    geomean: float = 1.0
    mean: float = 1.0
    p95: float = 1.0
    worst: float = 1.0
    by_kind: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[dict]:
        """Flat per-kind rows for reports (sorted worst first)."""
        return [
            {"operator": kind, "q_error_geomean": round(value, 3)}
            for kind, value in sorted(
                self.by_kind.items(), key=lambda item: -item[1]
            )
        ]


def summarize(observations: Iterable[NodeObservation]) -> QErrorSummary:
    """Aggregate q-errors overall and per operator kind."""
    errors: List[float] = []
    kind_errors: Dict[str, List[float]] = {}
    for observation in observations:
        errors.append(observation.q_error)
        kind_errors.setdefault(observation.kind, []).append(
            observation.q_error
        )
    if not errors:
        return QErrorSummary()
    ordered = sorted(errors)
    index = min(len(ordered) - 1, int(0.95 * (len(ordered) - 1)))
    return QErrorSummary(
        count=len(errors),
        geomean=_geomean(errors),
        mean=sum(errors) / len(errors),
        p95=ordered[index],
        worst=ordered[-1],
        by_kind={
            kind: _geomean(values) for kind, values in kind_errors.items()
        },
    )


def _geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))
