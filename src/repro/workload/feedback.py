"""Distill node observations into statistics corrections.

Two kinds of runtime evidence become corrections:

* **FILTER selectivities** — a FILTER node's ``actual / input`` rows is
  the true selectivity of its (parameterized) conjunction. Repeated
  observations of one fingerprint are folded row-weighted (total kept
  over total seen), which makes heavy bindings dominate exactly as they
  dominate the workload. The override is value-independent by
  construction: plans are cached and re-bound, so the estimate has to
  summarize the whole statement class.
* **Distinct counts** — a GROUP BY / DISTINCT node over one base
  table's columns observed N groups, so the (joint) NDV of those
  columns is at least N. The correction takes the max across
  observations; filtered inputs make it a lower bound, which is why it
  only *grows* the estimate's evidence, never invents precision.

Only misestimates above ``min_q_error`` become corrections — rewriting
estimates that were already right just churns ``stats_version`` and
invalidates cached plans for nothing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.catalog import StatsCorrections
from repro.executor.feedback import NodeObservation

_GROUP_KINDS = {
    "GROUP_SORTED",
    "GROUP_HASH",
    "DISTINCT_SORTED",
    "DISTINCT_HASH",
}


def derive_corrections(
    observations: Iterable[NodeObservation],
    min_q_error: float = 1.5,
    min_input_rows: int = 8,
) -> StatsCorrections:
    """Fold a replay's observations into one correction batch."""
    corrections = StatsCorrections()
    # fingerprint -> (total rows kept, total rows seen, worst q-error)
    filters: Dict[str, Tuple[float, float, float]] = {}
    # (table, columns) -> (max observed groups, worst q-error)
    groups: Dict[Tuple[str, Tuple[str, ...]], Tuple[float, float]] = {}
    for observation in observations:
        if (
            observation.predicate_fingerprint is not None
            and observation.input_rows >= min_input_rows
        ):
            kept, seen, worst = filters.get(
                observation.predicate_fingerprint, (0.0, 0.0, 1.0)
            )
            filters[observation.predicate_fingerprint] = (
                kept + observation.actual_rows,
                seen + observation.input_rows,
                max(worst, observation.q_error),
            )
        if (
            observation.ndv_target is not None
            and observation.kind in _GROUP_KINDS
            and observation.actual_rows > 0
        ):
            best, worst = groups.get(observation.ndv_target, (0.0, 1.0))
            groups[observation.ndv_target] = (
                max(best, float(observation.actual_rows)),
                max(worst, observation.q_error),
            )
    for fingerprint, (kept, seen, worst) in filters.items():
        if worst < min_q_error or seen <= 0:
            continue
        corrections.add_selectivity(fingerprint, kept / seen)
    for (table, columns), (distinct, worst) in groups.items():
        if worst < min_q_error:
            continue
        corrections.add_joint_ndv(table, columns, distinct)
        if len(columns) == 1:
            corrections.add_ndv(table, columns[0], distinct)
    return corrections
