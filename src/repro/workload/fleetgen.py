"""Deterministic skewed database + statement fleet for the workload loop.

The schema is built to make static estimation wrong in the ways the
paper-era System-R model is classically wrong:

* ``events.kind`` is heavily skewed (one hot value holds ~60% of the
  rows) — the uniform 1/NDV equality estimate misses the hot value by
  an order of magnitude and overestimates every cold one;
* ``events.amount`` and ``users.score`` are NULL-heavy — pre-fix, the
  estimator ignored ``null_count`` entirely; post-fix the static
  discount helps, and feedback sharpens the rest;
* ``users.region``/``users.segment`` are correlated — the independence
  product overstates their joint NDV.

Every statement carries a total ORDER BY over a unique key (or the
full distinct/group key set), so result rows are deterministic and the
byte-identical pre/post-feedback comparison is meaningful. Literals
rotate per round; auto-parameterization folds all rotations of one
class onto a single fingerprint, exactly the granularity at which
feedback overrides apply.

This generator deliberately builds its own tiny schema rather than
reusing :mod:`repro.tpcd`: the ``workload`` layer sits *below* tpcd in
the import order (tools/check_imports.py), and the fleet needs skew
that the uniform TPC-D generator will not produce.
"""

from __future__ import annotations

import random
from typing import List

from repro.catalog import Column, Index, TableSchema
from repro.sqltypes import INTEGER
from repro.storage import Database
from repro.workload.fleet import FleetStatement

HOT_KIND = 0
COLD_KINDS = list(range(1, 30))


def build_skewed_database(
    seed: int = 7,
    users: int = 400,
    events: int = 6000,
) -> Database:
    """A two-table database with skew, NULLs, and correlation."""
    rng = random.Random(seed)
    database = Database()

    user_rows = []
    for user_id in range(1, users + 1):
        region = rng.randrange(6)
        # segment tracks region (correlated): the independence product
        # says 6 regions x ~13 segments = 78 pairs; reality is ~12.
        segment = region * 2 + (1 if rng.random() < 0.15 else 0)
        score = None if rng.random() < 0.5 else rng.randrange(100)
        user_rows.append((user_id, region, segment, score))
    database.create_table(
        TableSchema(
            "users",
            [
                Column("id", INTEGER, nullable=False),
                Column("region", INTEGER, nullable=False),
                Column("segment", INTEGER, nullable=False),
                Column("score", INTEGER),
            ],
            primary_key=("id",),
        ),
        rows=user_rows,
    )

    event_rows = []
    for event_id in range(1, events + 1):
        kind = HOT_KIND if rng.random() < 0.6 else rng.choice(COLD_KINDS)
        day = rng.randrange(360)
        amount = None if rng.random() < 0.4 else rng.randrange(1000)
        user_id = rng.randrange(1, users + 1)
        event_rows.append((event_id, user_id, kind, day, amount))
    database.create_table(
        TableSchema(
            "events",
            [
                Column("id", INTEGER, nullable=False),
                Column("user_id", INTEGER, nullable=False),
                Column("kind", INTEGER, nullable=False),
                Column("day", INTEGER, nullable=False),
                Column("amount", INTEGER),
            ],
            primary_key=("id",),
        ),
        rows=event_rows,
    )

    database.create_index(Index.on("users_pk", "users", ["id"], unique=True))
    database.create_index(
        Index.on("events_pk", "events", ["id"], unique=True)
    )
    database.create_index(Index.on("events_kind", "events", ["kind"]))
    database.create_index(Index.on("events_day", "events", ["day"]))
    database.analyze_all()
    return database


def build_skewed_fleet(
    rounds: int = 15, seed: int = 11
) -> List[FleetStatement]:
    """``rounds`` x 8 statement classes, literals rotating per round."""
    rng = random.Random(seed)
    fleet: List[FleetStatement] = []
    for round_index in range(rounds):
        cold = rng.choice(COLD_KINDS)
        hot_day = 280 + rng.randrange(60)
        amount_cut = 700 + rng.randrange(250)
        score_cut = 40 + rng.randrange(40)
        group_day = 90 + rng.randrange(180)
        join_kind = rng.choice(COLD_KINDS)
        fleet.extend(
            [
                FleetStatement(
                    "cold_kind_eq",
                    "select id, user_id from events "
                    f"where kind = {cold} order by id",
                ),
                FleetStatement(
                    "hot_kind_day",
                    f"select id from events where kind = {HOT_KIND} "
                    f"and day >= {hot_day} order by id",
                ),
                FleetStatement(
                    "amount_range",
                    "select id, amount from events "
                    f"where amount > {amount_cut} order by id",
                ),
                FleetStatement(
                    "score_range",
                    "select id, region from users "
                    f"where score >= {score_cut} order by id",
                ),
                FleetStatement(
                    "distinct_pair",
                    "select distinct region, segment from users "
                    "order by region, segment",
                ),
                FleetStatement(
                    "group_pair",
                    "select region, segment, count(*) as n from users "
                    "group by region, segment order by region, segment",
                ),
                FleetStatement(
                    "group_kind",
                    "select kind, count(*) as n from events "
                    f"where day < {group_day} "
                    "group by kind order by kind",
                ),
                FleetStatement(
                    "join_cold_kind",
                    "select events.id, users.region from events, users "
                    "where events.user_id = users.id "
                    f"and events.kind = {join_kind} order by events.id",
                ),
            ]
        )
    return fleet
