"""Workload mode: fleet replay, cardinality feedback, regression gating.

The layer that closes the loop the estimator cannot close alone:
replay a statement fleet through the query service, join every plan
node's estimated cardinality against the rows its operator actually
produced (:mod:`repro.executor.feedback`), distill the misestimates
into :class:`~repro.catalog.StatsCorrections`, apply them through
``Catalog.apply_feedback`` (stats_version bump → plan-cache
invalidation → re-planning), and let a regression gate reject any
re-optimized plan that replayed worse than its incumbent.

Layering: above ``service`` (it drives a QueryService), below
``tpcd``/``verify``/``bench`` — which is why the skewed proving-ground
fleet (:mod:`repro.workload.fleetgen`) builds its own schema instead
of borrowing TPC-D.
"""

from repro.workload.feedback import derive_corrections
from repro.workload.fleet import (
    FeedbackReport,
    FleetRunner,
    FleetStatement,
    RoundResult,
    StatementRun,
)
from repro.workload.fleetgen import build_skewed_database, build_skewed_fleet
from repro.workload.gate import GateDecision, RegressionGate
from repro.workload.qerror import QErrorSummary, summarize

__all__ = [
    "FeedbackReport",
    "FleetRunner",
    "FleetStatement",
    "GateDecision",
    "QErrorSummary",
    "RegressionGate",
    "RoundResult",
    "StatementRun",
    "build_skewed_database",
    "build_skewed_fleet",
    "derive_corrections",
    "summarize",
]
