"""SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import ParseError

KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "group",
    "by",
    "having",
    "order",
    "asc",
    "desc",
    "and",
    "or",
    "not",
    "as",
    "in",
    "between",
    "is",
    "null",
    "case",
    "when",
    "then",
    "else",
    "end",
    "join",
    "inner",
    "left",
    "outer",
    "on",
    "union",
    "all",
    "fetch",
    "first",
    "rows",
    "row",
    "only",
}


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAM = "param"  # host variable, :name
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}:{self.text}"


_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),."


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises ParseError with position on bad input."""
    tokens: List[Token] = []
    line, column = 1, 1
    index = 0
    length = len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if text.startswith("--", index):
            while index < length and text[index] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            lowered = word.lower()
            kind = (
                TokenKind.KEYWORD if lowered in KEYWORDS else TokenKind.IDENT
            )
            spelled = lowered if kind is TokenKind.KEYWORD else word
            tokens.append(Token(kind, spelled, start_line, start_column))
            advance(end - index)
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            end = index
            saw_dot = False
            while end < length and (
                text[end].isdigit() or (text[end] == "." and not saw_dot)
            ):
                if text[end] == ".":
                    # A dot not followed by a digit is a qualifier dot.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    saw_dot = True
                end += 1
            tokens.append(
                Token(TokenKind.NUMBER, text[index:end], start_line, start_column)
            )
            advance(end - index)
            continue
        if char == ":":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == index + 1:
                raise ParseError("':' must introduce a host variable", line, column)
            tokens.append(
                Token(
                    TokenKind.PARAM,
                    text[index + 1 : end],
                    start_line,
                    start_column,
                )
            )
            advance(end - index)
            continue
        if char == "'":
            end = index + 1
            pieces: List[str] = []
            while True:
                if end >= length:
                    raise ParseError(
                        "unterminated string literal", start_line, start_column
                    )
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        pieces.append("'")
                        end += 2
                        continue
                    break
                pieces.append(text[end])
                end += 1
            tokens.append(
                Token(
                    TokenKind.STRING, "".join(pieces), start_line, start_column
                )
            )
            advance(end + 1 - index)
            continue
        matched = False
        for operator in _OPERATORS:
            if text.startswith(operator, index):
                tokens.append(
                    Token(TokenKind.OPERATOR, operator, start_line, start_column)
                )
                advance(len(operator))
                matched = True
                break
        if matched:
            continue
        if char in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, char, start_line, start_column))
            advance(1)
            continue
        raise ParseError(f"unexpected character {char!r}", line, column)
    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
